"""Table I: partitioning-approach comparison, backed by measurements.

The paper's Table I argues that prior low-power approaches either duplicate
weights (sequence parallelism) or rely on pipelining (which cannot reduce
the latency of a single real-time request).  The ablation runs all
approaches on the same simulated 8-chip Siracusa platform and checks that
the paper's scheme is the only one that both avoids duplication and
actually reduces single-request latency.
"""

from __future__ import annotations

from repro.experiments.table1 import render_table1, run_table1


def test_table1_baseline_comparison(run_once):
    result = run_once(run_table1)
    print()
    print(render_table1(result))

    single, replicated, pipeline, ours = result.measured

    # Weight duplication: only the sequence-parallel baseline replicates.
    assert replicated.weights_replicated
    assert not pipeline.weights_replicated
    assert not ours.weights_replicated

    # Per-chip weight memory: ours is the only approach that shrinks it.
    assert ours.weight_bytes_per_chip < single.weight_bytes_per_chip / 4
    assert replicated.weight_bytes_per_chip == single.weight_bytes_per_chip

    # Single-request latency: pipelining and weight replication cannot beat
    # the single chip for autoregressive decoding; our scheme does, by a
    # wide margin.
    assert replicated.block_cycles > 0.9 * single.block_cycles
    assert pipeline.block_cycles > 0.9 * single.block_cycles
    assert ours.block_cycles < single.block_cycles / 8
    assert result.speedup_over_best_baseline() > 8

    # Off-chip traffic: replication cannot reduce the off-chip weight
    # traffic (in autoregressive mode only one of its chips even has work),
    # while ours keeps the total equal to a single chip's and removes it
    # from the critical path.
    assert replicated.l3_bytes_per_block >= 0.9 * ours.l3_bytes_per_block
    assert replicated.weight_bytes_per_chip >= 8 * ours.weight_bytes_per_chip
