"""Micro-benchmarks of the library's own components.

These measure the tooling itself (partitioner, scheduler, event-driven
simulator, numerical verification) rather than the modelled hardware, so
regressions in the reproduction's performance are caught early.  Unlike the
figure benchmarks these use several rounds, since the functions are cheap.
"""

from __future__ import annotations

from repro import autoregressive, encoder, mobilebert, partition_block, tinyllama_42m
from repro.core.scheduler import BlockScheduler
from repro.hw.presets import siracusa_platform
from repro.numerics import verify_partition_equivalence
from repro.sim.simulator import MultiChipSimulator


def test_partitioner_throughput(benchmark):
    config = tinyllama_42m()
    result = benchmark(partition_block, config, 8)
    assert result.num_chips == 8


def test_scheduler_throughput(benchmark):
    platform = siracusa_platform(8)
    scheduler = BlockScheduler(platform=platform)
    workload = autoregressive(tinyllama_42m(), 128)
    program = benchmark(scheduler.build, workload)
    assert len(program.schedules) == 8


def test_simulator_throughput(benchmark):
    platform = siracusa_platform(8)
    scheduler = BlockScheduler(platform=platform)
    program = scheduler.build(autoregressive(tinyllama_42m(), 128))

    def simulate():
        return MultiChipSimulator(program=program).run()

    result = benchmark(simulate)
    assert result.total_cycles > 0


def test_simulator_throughput_large_sequence(benchmark):
    platform = siracusa_platform(4)
    scheduler = BlockScheduler(platform=platform)
    program = scheduler.build(encoder(mobilebert(), 268))

    def simulate():
        return MultiChipSimulator(program=program).run()

    result = benchmark(simulate)
    assert result.total_cycles > 0


def test_numerical_verification_throughput(benchmark):
    config = tinyllama_42m()
    report = benchmark.pedantic(
        verify_partition_equivalence,
        kwargs={"config": config, "num_chips": 8, "rows": 4},
        rounds=1,
        iterations=1,
    )
    assert report.is_equivalent(1e-9)
