"""Ablations of the design choices called out in DESIGN.md.

These benchmarks quantify the modelling and design decisions behind the
paper's results:

* the prefetch-accounting policy (how much of the super-linear speedup
  rests on hiding the double-buffered weight prefetch),
* the hierarchical (groups-of-4) reduction versus a flat all-to-one reduce,
* the chip-to-chip link bandwidth,
* the FFN flavour (the paper's two-matrix description versus the gated
  SwiGLU variant used by the actual llama2.c checkpoint).
"""

from __future__ import annotations

from repro import (
    MultiChipPlatform,
    PrefetchAccounting,
    autoregressive,
    encoder,
    evaluate_block,
    mobilebert,
    siracusa_chip,
    siracusa_platform,
    tinyllama_42m,
    tinyllama_gated,
)
from repro.core.collectives import (
    all_to_one_reduce,
    estimate_plan_cycles,
    hierarchical_all_reduce,
)
from repro.hw.interconnect import ChipToChipLink
from repro.units import gigabytes_per_second


def test_ablation_prefetch_accounting(run_once):
    """How much of the 8-chip speedup depends on hiding the prefetch."""
    workload = autoregressive(tinyllama_42m(), 128)
    single = evaluate_block(workload, siracusa_platform(1))

    def run_policies():
        return {
            policy: evaluate_block(
                workload, siracusa_platform(8), prefetch_accounting=policy
            )
            for policy in PrefetchAccounting
        }

    reports = run_once(run_policies)
    print()
    print("Prefetch accounting ablation (TinyLlama autoregressive, 8 chips):")
    for policy, report in reports.items():
        gain = single.block_cycles / report.block_cycles
        print(f"  {policy.value:<9}: {report.block_cycles:>12,.0f} cycles "
              f"(speedup {gain:5.1f}x)")

    hidden = reports[PrefetchAccounting.HIDDEN]
    overlap = reports[PrefetchAccounting.OVERLAP]
    blocking = reports[PrefetchAccounting.BLOCKING]
    # Hidden (the paper's accounting) is fastest, blocking slowest.
    assert hidden.block_cycles < overlap.block_cycles <= blocking.block_cycles
    # Even the most conservative accounting keeps the 8-chip system
    # clearly (super-linearly is not required) ahead of the single chip.
    assert single.block_cycles / blocking.block_cycles > 6
    # The L3 energy is identical across policies: accounting only moves
    # runtime, not traffic.
    assert hidden.total_l3_bytes == overlap.total_l3_bytes == blocking.total_l3_bytes


def test_ablation_hierarchical_vs_flat_reduce(run_once):
    """Groups-of-4 reduction versus a flat all-to-one reduction."""
    platform = siracusa_platform(64)
    payload = 512  # one autoregressive partial output row (E bytes, int8)

    def estimate():
        hierarchical = hierarchical_all_reduce(platform, payload)
        flat = all_to_one_reduce(platform, payload)
        return (
            estimate_plan_cycles(hierarchical, platform),
            estimate_plan_cycles(flat, platform),
        )

    hierarchical_cycles, flat_cycles = run_once(estimate)
    print()
    print(f"All-reduce of {payload} B on 64 chips: hierarchical "
          f"{hierarchical_cycles:,.0f} cycles vs flat {flat_cycles:,.0f} cycles")
    # The hierarchical scheme is the scalable one (the reason the paper
    # groups chips by four); the flat reduce serialises 63 messages at the
    # root and loses badly at 64 chips.
    assert hierarchical_cycles < flat_cycles / 3


def test_ablation_link_bandwidth(run_once):
    """Sensitivity of the MobileBERT 4-chip speedup to the C2C bandwidth."""
    workload = encoder(mobilebert(), 268)
    single = evaluate_block(workload, siracusa_platform(1))

    def run_links():
        results = {}
        for gbps in (0.125, 0.5, 2.0):
            link = ChipToChipLink(
                name=f"MIPI-{gbps}",
                bandwidth_bytes_per_s=gigabytes_per_second(gbps),
            )
            platform = MultiChipPlatform(
                chip=siracusa_chip(), num_chips=4, link=link, group_size=4
            )
            results[gbps] = evaluate_block(workload, platform)
        return results

    results = run_once(run_links)
    print()
    print("Link-bandwidth ablation (MobileBERT, 4 chips):")
    for gbps, report in results.items():
        gain = single.block_cycles / report.block_cycles
        print(f"  {gbps:>6.3f} GB/s: speedup {gain:4.2f}x")
    # Faster links help monotonically; the paper's 0.5 GB/s operating point
    # is already enough for a ~4x-or-better speedup.
    assert results[0.125].block_cycles > results[0.5].block_cycles > results[2.0].block_cycles
    assert single.block_cycles / results[0.5].block_cycles > 3.5


def test_ablation_ffn_flavour(run_once):
    """The paper's two-matrix FFN versus the gated llama2.c FFN."""
    def run_both():
        reports = {}
        for config in (tinyllama_42m(), tinyllama_gated()):
            workload = autoregressive(config, 128)
            reports[config.name] = {
                1: evaluate_block(workload, siracusa_platform(1)),
                8: evaluate_block(workload, siracusa_platform(8)),
            }
        return reports

    reports = run_once(run_both)
    print()
    print("FFN flavour ablation (TinyLlama autoregressive):")
    for name, by_chips in reports.items():
        gain = by_chips[1].block_cycles / by_chips[8].block_cycles
        print(f"  {name:<28}: 8-chip speedup {gain:5.1f}x")
    # The qualitative result (clearly super-linear 8-chip speedup) holds for
    # both FFN flavours, i.e. it does not depend on the two-matrix reading
    # of the paper's model description.
    for by_chips in reports.values():
        assert by_chips[1].block_cycles / by_chips[8].block_cycles > 8
