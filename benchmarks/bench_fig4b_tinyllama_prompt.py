"""Figure 4(b): TinyLlama prompt mode, 1-8 chips.

Paper result: prompt mode is computation-dominated, so removing off-chip
transfers helps less than in autoregressive mode, yet the 8-chip system is
still super-linear (9.9x).
"""

from __future__ import annotations

from repro.analysis.tables import runtime_breakdown_table
from repro.core.schedule import RuntimeCategory
from repro.experiments.fig4 import run_fig4a, run_fig4b


def test_fig4b_runtime_breakdown(run_once):
    sweep = run_once(run_fig4b)
    print()
    print("Fig. 4(b) TinyLlama prompt mode")
    print(runtime_breakdown_table(sweep))

    speedups = sweep.speedups()
    breakdowns = sweep.breakdowns()

    # Prompt mode is computation-dominated on every chip count (Sec. V-B).
    for num_chips, breakdown in breakdowns.items():
        assert breakdown[RuntimeCategory.COMPUTE] > breakdown[RuntimeCategory.DMA_L3_L2]

    # The 8-chip system is super-linear, in the neighbourhood of 9.9x, but
    # clearly less super-linear than the memory-bound autoregressive mode.
    assert speedups[8] > 8
    assert 8.0 < speedups[8] < 16.0
    autoregressive_speedups = run_fig4a().speedups()
    assert autoregressive_speedups[8] > speedups[8]
