"""Figure 5: energy versus runtime for all three workloads.

Paper result: for TinyLlama the 8-chip energy stays in the same range as
the single chip (the weights still cross the off-chip interface once per
block) while the runtime collapses; for the scaled-up model the energy
drops further once all weights fit on-chip (32/64 chips); for MobileBERT
the 4-chip energy is slightly higher than the single-chip energy.
"""

from __future__ import annotations

from repro.experiments.fig5 import render_fig5, run_fig5


def test_fig5_energy_runtime(run_once):
    result = run_once(run_fig5)
    print()
    print(render_fig5(result))

    # TinyLlama autoregressive: runtime collapses, energy stays in range
    # (paper: ~0.7 mJ at 1 chip vs 0.64 mJ at 8 chips).
    autoregressive = result.autoregressive
    one = autoregressive.report_for(1)
    eight = autoregressive.report_for(8)
    assert eight.block_cycles < one.block_cycles / 8
    assert 0.7 < eight.block_energy_joules / one.block_energy_joules < 1.3
    assert 0.3e-3 < eight.block_energy_joules < 1.0e-3

    # Scaled-up model: once every weight is resident (32/64 chips) the
    # energy per block drops below the double-buffered 16-chip point.
    scaled = result.autoregressive_scaled
    assert (
        scaled.report_for(32).block_energy_joules
        < scaled.report_for(16).block_energy_joules
    )
    assert scaled.report_for(32).total_l3_bytes == 0
    assert scaled.report_for(16).total_l3_bytes > 0

    # MobileBERT: slight energy increase at 4 chips.
    mobilebert = result.mobilebert
    assert (
        mobilebert.report_for(4).block_energy_joules
        > mobilebert.report_for(1).block_energy_joules
    )
