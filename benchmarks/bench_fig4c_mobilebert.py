"""Figure 4(c): MobileBERT encoder, 1-4 chips.

Paper result: partitioning on 4 chips suppresses the off-chip transfers and
yields a super-linear 4.7x speedup, at the cost of a slight increase in
per-inference energy (smaller kernels utilise the cluster less well).
"""

from __future__ import annotations

from repro.analysis.tables import energy_runtime_table, runtime_breakdown_table
from repro.experiments.fig4 import run_fig4c


def test_fig4c_runtime_and_energy(run_once):
    sweep = run_once(run_fig4c)
    print()
    print("Fig. 4(c) MobileBERT")
    print(runtime_breakdown_table(sweep))
    print(energy_runtime_table(sweep))

    speedups = sweep.speedups()
    energies = sweep.energies_joules()

    # Super-linear speedup at 4 chips, in the neighbourhood of 4.7x.
    assert speedups[4] > 4.0
    assert 4.0 < speedups[4] < 5.5
    # The 4-chip system runs with on-chip weights, the single chip does not.
    assert sweep.report_for(4).runs_from_on_chip_memory
    assert not sweep.report_for(1).runs_from_on_chip_memory
    # Off-chip traffic drops by an order of magnitude at 4 chips.
    assert sweep.report_for(1).total_l3_bytes > 4 * sweep.report_for(4).total_l3_bytes
    # ... but the energy per block slightly increases (utilisation loss).
    assert energies[4] > energies[1]
    assert energies[4] < energies[1] * 1.25
