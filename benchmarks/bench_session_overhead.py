"""Micro-benchmark: the Session wrapper must stay close to free.

The unified API routes every evaluation through
:meth:`repro.api.Session.run` (strategy lookup, option plumbing, result
wrapping).  This benchmark measures that wrapper against a direct
:func:`repro.analysis.evaluate.evaluate_block` call on the paper's main
workload and asserts two properties:

* with memoisation off, the wrapper adds **< 5 %** wall-clock overhead
  (median of several timed batches, to absorb scheduler noise);
* with memoisation on, a repeated evaluation is at least **5x** faster
  than re-running the engine, i.e. the content-hash lookup actually pays.
"""

from __future__ import annotations

import time
from statistics import median

from repro.analysis.evaluate import evaluate_block
from repro.api import Session
from repro.graph.workload import autoregressive
from repro.hw.presets import siracusa_platform
from repro.models.tinyllama import tinyllama_42m

#: Evaluations per timed batch.
BATCH = 8

#: Timed batches per contender; the median batch time is compared.
REPEATS = 7

#: Maximum tolerated wrapper overhead (fraction of the direct runtime).
MAX_OVERHEAD = 0.05


def _median_batch_seconds(call) -> float:
    """Median wall-clock time of ``REPEATS`` batches of ``BATCH`` calls."""
    times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        for _ in range(BATCH):
            call()
        times.append(time.perf_counter() - start)
    return median(times)


def test_session_wrapper_overhead(run_once):
    workload = autoregressive(tinyllama_42m(), 128)
    platform = siracusa_platform(8)
    session = Session(memoize=False)

    # Warm both paths (imports, first-touch allocations) before timing.
    evaluate_block(workload, platform)
    session.run(workload, platform=platform)

    def measure():
        direct = _median_batch_seconds(lambda: evaluate_block(workload, platform))
        wrapped = _median_batch_seconds(
            lambda: session.run(workload, platform=platform)
        )
        return direct, wrapped

    direct, wrapped = run_once(measure)
    overhead = wrapped / direct - 1.0
    print(
        f"\ndirect: {direct / BATCH * 1e3:.3f} ms/eval, "
        f"session: {wrapped / BATCH * 1e3:.3f} ms/eval, "
        f"overhead: {overhead * 100:+.2f}%"
    )
    assert overhead < MAX_OVERHEAD, (
        f"Session.run adds {overhead * 100:.2f}% over evaluate_block "
        f"(budget: {MAX_OVERHEAD * 100:.0f}%)"
    )


def test_session_memoisation_beats_reevaluation(run_once):
    workload = autoregressive(tinyllama_42m(), 128)
    platform = siracusa_platform(8)
    session = Session()
    session.run(workload, platform=platform)  # populate the cache

    def measure():
        direct = _median_batch_seconds(lambda: evaluate_block(workload, platform))
        cached = _median_batch_seconds(
            lambda: session.run(workload, platform=platform)
        )
        return direct, cached

    direct, cached = run_once(measure)
    speedup = direct / cached
    print(
        f"\nengine: {direct / BATCH * 1e3:.3f} ms/eval, "
        f"memoised: {cached / BATCH * 1e6:.1f} us/eval, "
        f"speedup: {speedup:.1f}x"
    )
    assert session.cache_info().hits >= BATCH * REPEATS
    assert speedup > 5, f"memoised hit only {speedup:.1f}x faster than the engine"
