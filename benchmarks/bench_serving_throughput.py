"""Benchmark: the serving simulator must stay far faster than real time.

The serving loop is what every capacity study, policy comparison, and CI
smoke run spins; its value depends on simulating minutes of traffic in
well under a second.  This benchmark serves a 5-minute Poisson trace
(~600 requests, ~19k generated tokens) through each shipped policy and
asserts two properties:

* the simulator sustains at least ``MIN_SPEEDUP`` simulated seconds per
  wall-clock second (cost-model evaluations included, memoisation on);
* every policy drains the identical request set — same request count and
  token totals — so the policies differ only in *ordering*, never in the
  amount of work served.
"""

from __future__ import annotations

import time

from repro.api import Session
from repro.models.tinyllama import tinyllama_42m
from repro.serving import PoissonTrace, list_policies

#: Virtual seconds of traffic the benchmark serves per policy.
TRACE_DURATION_S = 300.0

#: Required ratio of simulated time to wall-clock time.
MIN_SPEEDUP = 100.0


def test_serving_simulator_outruns_real_time(run_once):
    config = tinyllama_42m()
    trace = PoissonTrace(rate_rps=2.0, duration_s=TRACE_DURATION_S)
    session = Session()
    policies = list_policies()

    # Warm the phase-cost cache so the measured section times the event
    # loop, not the first-touch block evaluations.
    session.serve(config, trace, policy="fifo", chips=8, seed=0)

    def measure():
        reports = {}
        start = time.perf_counter()
        for policy in policies:
            reports[policy] = session.serve(
                config, trace, policy=policy, chips=8, seed=0
            )
        return time.perf_counter() - start, reports

    elapsed, reports = run_once(measure)
    simulated = sum(report.metrics.makespan_s for report in reports.values())
    speedup = simulated / elapsed

    first = reports[policies[0]]
    for policy, report in reports.items():
        assert report.metrics.requests == first.metrics.requests, policy
        assert report.result.generated_tokens == first.result.generated_tokens
        assert report.result.prompt_tokens == first.result.prompt_tokens

    print(
        f"\n{len(policies)} policies x {first.metrics.requests} requests "
        f"({first.result.generated_tokens} tokens): {elapsed * 1e3:.1f} ms "
        f"wall, {speedup:,.0f}x real time"
    )
    assert speedup > MIN_SPEEDUP, (
        f"simulator ran only {speedup:.0f}x real time "
        f"(budget: {MIN_SPEEDUP:.0f}x)"
    )
