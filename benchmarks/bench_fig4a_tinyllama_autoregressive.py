"""Figure 4(a): TinyLlama autoregressive mode, 1-8 chips.

Paper result: runtime dominated by L3 DMA for 1-4 chips; with 8 chips the
block runs from on-chip memory and the speedup becomes super-linear
(26.1x).  The benchmark regenerates the runtime-breakdown rows and asserts
that shape.
"""

from __future__ import annotations

from repro.analysis.tables import runtime_breakdown_table
from repro.core.schedule import RuntimeCategory
from repro.experiments.fig4 import run_fig4a


def test_fig4a_runtime_breakdown(run_once):
    sweep = run_once(run_fig4a)
    print()
    print("Fig. 4(a) TinyLlama autoregressive mode")
    print(runtime_breakdown_table(sweep))

    speedups = sweep.speedups()
    breakdowns = sweep.breakdowns()

    # Paper shape: 1-4 chips are dominated by off-chip (L3) DMA ...
    for num_chips in (1, 2, 4):
        breakdown = breakdowns[num_chips]
        assert breakdown[RuntimeCategory.DMA_L3_L2] > breakdown[RuntimeCategory.COMPUTE]
        assert speedups[num_chips] <= num_chips * 1.15
    # ... and the 8-chip system runs from on-chip memory with a clearly
    # super-linear speedup in the neighbourhood of the paper's 26.1x.
    eight = sweep.report_for(8)
    assert eight.runs_from_on_chip_memory
    assert breakdowns[8][RuntimeCategory.DMA_L3_L2] == 0.0
    assert speedups[8] > 8
    assert 15.0 < speedups[8] < 45.0
