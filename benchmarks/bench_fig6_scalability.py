"""Figure 6: scalability of the scaled-up TinyLlama on 1-64 chips.

Paper result: autoregressive mode scales quasi-linearly up to 64 chips
(60.1x), with super-linear points where a block (8-16 chips) or the whole
model (32-64 chips) becomes on-chip resident; prompt mode scales linearly
up to 16 chips and then shows diminishing returns.
"""

from __future__ import annotations

from repro.experiments.fig6 import render_fig6, run_fig6


def test_fig6_scalability(run_once):
    result = run_once(run_fig6)
    print()
    print(render_fig6(result))

    autoregressive = result.autoregressive.speedups()
    prompt = result.prompt.speedups()

    # Autoregressive: speedup grows monotonically with the chip count and
    # lands in the neighbourhood of the paper's 60.1x at 64 chips.
    counts = sorted(autoregressive)
    for previous, current in zip(counts, counts[1:]):
        assert autoregressive[current] > autoregressive[previous]
    assert 45.0 < autoregressive[64] < 80.0
    # Super-linear once a block fits on-chip (8-32 chips).
    for num_chips in (8, 16, 32):
        assert autoregressive[num_chips] > num_chips

    # Prompt mode: close to linear up to 16 chips, diminishing afterwards.
    assert prompt[16] > 0.7 * 16
    efficiency_16 = prompt[16] / 16
    efficiency_64 = prompt[64] / 64
    assert efficiency_64 < 0.6 * efficiency_16
    # Autoregressive scales better than prompt at the largest system size.
    assert autoregressive[64] > prompt[64]

    # Residency transitions explain the curve: double-buffered at 8/16,
    # everything resident at 32/64.
    from repro.core.placement import WeightResidency

    residency = {
        report.num_chips: report.residencies()[0]
        for report in result.autoregressive.reports
    }
    assert residency[8] is WeightResidency.DOUBLE_BUFFERED
    assert residency[16] is WeightResidency.DOUBLE_BUFFERED
    assert residency[32] is WeightResidency.ALL_RESIDENT
    assert residency[64] is WeightResidency.ALL_RESIDENT
