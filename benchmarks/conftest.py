"""Shared configuration for the benchmark harness.

Every benchmark regenerates one figure or table of the paper.  The
underlying experiments are deterministic analytical simulations, so a
single round per benchmark is enough; the value of the harness is the
printed series (compared against the paper in EXPERIMENTS.md) and the
shape assertions, not statistical timing.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark and return its result."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
