"""Benchmark: design-space exploration must amortise through the cache.

A tuning run's cost is dominated by unique simulator evaluations, so the
DSE layer's value depends on two properties this benchmark asserts:

* repeated tuning runs over the same space reuse the session's
  memoisation cache — the second searcher pays (almost) nothing for
  points the first already simulated, and no run ever simulates more
  unique configurations than the space holds;
* a full three-searcher tour of a 24-point space stays interactive
  (a few seconds of wall clock), which is what makes ``repro tune``
  usable as an ad-hoc deployment-sizing tool.
"""

from __future__ import annotations

import time

from repro.api import Session
from repro.dse import ChoiceAxis, FloatAxis, SearchSpace, dominates, pareto_front
from repro.graph.workload import autoregressive
from repro.models.tinyllama import tinyllama_42m

#: Evaluation budget granted to every searcher.
BUDGET = 24

#: Wall-clock budget for the whole three-searcher tour.
MAX_SECONDS = 30.0


def _space() -> SearchSpace:
    return SearchSpace(
        axes=(
            ChoiceAxis("chips", (1, 2, 4, 8)),
            FloatAxis("link_gbps", 0.25, 1.0, levels=(0.25, 0.5, 1.0)),
            ChoiceAxis("l2_kib", (2048, 4096)),
            ChoiceAxis("strategy", ("paper",)),
        )
    )


def test_tuning_runs_share_the_session_cache(run_once):
    session = Session()
    workload = autoregressive(tinyllama_42m(), 128)
    space = _space()
    space_size = space.size
    assert space_size is not None

    def measure():
        start = time.perf_counter()
        results = {
            searcher: session.tune(
                workload,
                space,
                searcher=searcher,
                budget=BUDGET,
                seed=0,
                objectives=("latency", "hw_cost"),
            )
            for searcher in ("grid", "random", "anneal")
        }
        return time.perf_counter() - start, results

    elapsed, results = run_once(measure)

    # The cache never simulates more unique configurations than the space
    # holds, no matter how many searchers revisit it.
    cache = session.cache_info()
    assert cache.misses <= space_size
    assert cache.hits > 0, "the second and third searcher should hit the cache"

    # Every searcher's front is genuinely non-dominated.
    for name, result in results.items():
        front = pareto_front(result.candidates, result.objectives)
        assert set(result.front) == set(front), name
        assert result.front, name

    # The exhaustive grid front dominates the sampled ones: a sampled-front
    # point that is not on the true front must be dominated by some grid
    # candidate (the grid saw every design, including that one).
    grid_front_points = {c.point for c in results["grid"].front}
    objectives = results["grid"].objectives
    for name in ("random", "anneal"):
        for candidate in results[name].front:
            if candidate.point not in grid_front_points:
                assert any(
                    dominates(other, candidate, objectives)
                    for other in results["grid"].candidates
                    if other.feasible and other.point != candidate.point
                ), (name, candidate.point)

    print(
        f"\n3 searchers x budget {BUDGET} over {space_size} designs: "
        f"{elapsed * 1e3:.1f} ms wall, cache {cache.hits} hits / "
        f"{cache.misses} misses"
    )
    assert elapsed < MAX_SECONDS, (
        f"tuning tour took {elapsed:.1f} s (budget: {MAX_SECONDS:.0f} s)"
    )


def test_parallel_tune_is_byte_identical_and_interactive(run_once):
    """4-worker tune: same bytes as serial, still interactive wall clock.

    The throughput claim (parallel evaluations/s vs the serial baseline)
    lives in ``run_all.py`` where both sides run in fresh processes; this
    test pins the correctness half — worker fan-out must not change a
    single byte of the result — plus a generous wall-clock ceiling.
    """
    import json

    from repro.analysis.export import tune_result_to_dict

    workload = autoregressive(tinyllama_42m(), 128)
    space = _space()

    def tour():
        documents = {}
        start = time.perf_counter()
        for workers in (None, 4):
            session = Session()  # fresh cache per drive: same work both times
            result = session.tune(
                workload,
                space,
                searcher="random",
                budget=BUDGET,
                seed=0,
                objectives=("latency", "hw_cost"),
                parallel=workers,
            )
            documents[workers] = json.dumps(
                tune_result_to_dict(result, include_cache=False),
                sort_keys=True,
            )
        return time.perf_counter() - start, documents

    elapsed, documents = run_once(tour)
    assert documents[None] == documents[4], (
        "parallel tune changed the result document"
    )
    print(f"\nserial + 4-worker tune, budget {BUDGET}: {elapsed * 1e3:.1f} ms")
    assert elapsed < MAX_SECONDS
