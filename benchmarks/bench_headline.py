"""Headline numbers: abstract of the paper versus our measurements.

Paper: 8-chip TinyLlama autoregressive inference at 0.64 mJ and 0.54 ms
with a 26.1x super-linear speedup and a 27.2x EDP improvement; 9.9x for
prompt mode; 4.7x for MobileBERT on 4 chips; 60.1x and 1.3x lower energy
for the scaled-up model on 64 chips.
"""

from __future__ import annotations

from repro.experiments.headline import render_headline, run_headline


def test_headline_numbers(run_once):
    result = run_once(run_headline)
    print()
    print(render_headline(result))

    def measured(name: str) -> float:
        return result.metric(name).measured_value

    # Speedups: super-linear where the paper claims super-linear, and within
    # a factor ~1.5 of the reported magnitudes.
    assert measured("tinyllama_autoregressive_speedup_8_chips") > 8
    assert 15 < measured("tinyllama_autoregressive_speedup_8_chips") < 45
    assert measured("tinyllama_prompt_speedup_8_chips") > 8
    assert measured("mobilebert_speedup_4_chips") > 4
    assert 40 < measured("scaled_tinyllama_speedup_64_chips") < 90

    # Energy and latency of the 8-chip system land in the paper's range.
    assert 0.3e-3 < measured("tinyllama_autoregressive_energy_8_chips") < 1.0e-3
    assert 0.2e-3 < measured("tinyllama_autoregressive_latency_8_chips") < 1.0e-3

    # EDP improvement within ~30% of the paper's 27.2x.
    assert 18 < measured("tinyllama_autoregressive_edp_improvement_8_chips") < 40

    # Scaled-up model consumes less energy per block than the single chip.
    assert measured("scaled_tinyllama_energy_reduction_64_chips") > 1.0
