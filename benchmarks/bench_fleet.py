#!/usr/bin/env python
"""Benchmark: the fleet simulator must absorb a day of traffic in minutes.

The fleet event loop is what every capacity study spins: a day-long
diurnal trace across heterogeneous platform replicas, routed, admitted,
and (optionally) autoscaled.  Its value depends on streaming millions of
requests without materialising them — arrivals are pulled lazily from
the generator and latency percentiles switch to streaming histograms
above the record threshold, so memory stays bounded however long the
trace runs.

Full mode serves one simulated day at a 13 req/s diurnal mean with two
spike bursts (~1.1M requests) over the four shipped platform presets and
reports sustained requests per wall-clock second.  Smoke mode shrinks
the horizon to 30 virtual minutes for CI.

The fault variant (``--faults``) replays the same trace through a seeded
random crash layer plus retry/hedging/shedding, measuring how much of
the event-loop throughput the resilience machinery costs — the fault
path has its own regression floor in ``run_all.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py            # full, ~1 min
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke --faults
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: One replica of each shipped preset family, two of the paper platform.
FLEET_PLATFORMS = (
    "siracusa-mipi:8x2",
    "siracusa-fast-link:8",
    "siracusa-big-l2:8",
    "siracusa-low-power:8",
)

#: Full mode: a simulated day at a 13 req/s diurnal mean (~1.1M requests).
FULL_RATE_RPS = 13.0
FULL_DURATION_S = 86_400.0

#: Smoke mode: 30 virtual minutes for CI.
SMOKE_RATE_RPS = 4.0
SMOKE_DURATION_S = 1_800.0


def run(mode: str = "full", faulted: bool = False) -> dict:
    """Serve the diurnal day (or the smoke slice) and report throughput.

    With ``faulted`` the same trace runs through a seeded random crash
    layer (one expected failure per replica every sixteenth of the
    horizon, five-minute mean repair) plus retries, hedging, and
    graceful degradation, so the reported rate prices the resilience
    machinery under sustained churn.
    """
    from repro.api import Session
    from repro.fleet import FaultModel, RetryPolicy
    from repro.models.tinyllama import tinyllama_42m
    from repro.serving import DiurnalTrace

    smoke = mode == "smoke"
    rate = SMOKE_RATE_RPS if smoke else FULL_RATE_RPS
    duration = SMOKE_DURATION_S if smoke else FULL_DURATION_S
    trace = DiurnalTrace(
        rate_rps=rate,
        duration_s=duration,
        amplitude=0.6,
        period_s=duration,
        # Two morning-rush style bursts: +rate req/s for ten minutes.
        spikes=(
            (duration * 0.30, 600.0, rate),
            (duration * 0.65, 600.0, rate),
        ),
    )
    faults = retry = None
    if faulted:
        faults = FaultModel(
            crash_mtbf_s=duration / 16.0,
            crash_mttr_s=min(300.0, duration / 8.0),
            horizon_s=duration,
            seed=0,
            shed_below=0.9,
        )
        retry = RetryPolicy(
            max_retries=3, backoff_s=0.5, timeout_s=60.0, hedge_after_s=5.0
        )
    session = Session()
    config = tinyllama_42m()
    # Warm the per-preset cost models so the timed section measures the
    # event loop, not the first-touch block evaluations.
    session.serve_fleet(
        config,
        DiurnalTrace(rate_rps=rate, duration_s=60.0),
        platforms=FLEET_PLATFORMS,
        router="least_loaded",
        seed=0,
    )
    start = time.perf_counter()
    report = session.serve_fleet(
        config,
        trace,
        platforms=FLEET_PLATFORMS,
        router="least_loaded",
        seed=0,
        faults=faults,
        retry=retry,
    )
    wall = time.perf_counter() - start
    result = report.result
    metrics = {
        "mode": mode,
        "faulted": faulted,
        "wall_s": wall,
        "replicas": len(result.replicas),
        "requests": result.arrived,
        "completed": result.completed,
        "generated_tokens": result.generated_tokens,
        "simulated_s": result.makespan_s,
        "requests_per_s": result.arrived / wall,
        "realtime_speedup": result.makespan_s / wall,
        "approximate_percentiles": result.approximate,
        "p99_ttft_s": result.ttft.p99,
    }
    if result.resilience is not None:
        stats = result.resilience
        metrics.update(
            crashes=stats.crashes,
            retries=stats.retries,
            shed=stats.shed,
            hedges=stats.hedges,
            goodput_rps=stats.goodput_rps,
            unavailable_s=stats.unavailable_s,
        )
    return metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: 30 virtual minutes instead of a full day",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="inject a seeded random crash layer plus retries and shedding",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the metrics as one JSON line instead of the summary",
    )
    args = parser.parse_args(argv)
    metrics = run("smoke" if args.smoke else "full", faulted=args.faults)
    if args.json:
        print(json.dumps(metrics, sort_keys=True))
        return 0
    label = metrics["mode"] + ("+faults" if metrics["faulted"] else "")
    print(
        f"fleet bench ({label}): {metrics['requests']:,} requests "
        f"on {metrics['replicas']} replicas in {metrics['wall_s']:.2f} s "
        f"wall ({metrics['requests_per_s']:,.0f} req/s, "
        f"{metrics['realtime_speedup']:,.0f}x real time, "
        f"p99 TTFT {metrics['p99_ttft_s'] * 1e3:.1f} ms)"
    )
    if metrics["faulted"]:
        print(
            f"  faults: {metrics['crashes']} crash(es), "
            f"{metrics['retries']} retried, {metrics['shed']} shed, "
            f"{metrics['hedges']} hedged, "
            f"{metrics['unavailable_s']:.1f} s total outage"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
