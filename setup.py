"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that editable installs keep working on environments whose packaging
toolchain predates PEP 660 (for example offline machines without the
``wheel`` package).
"""

from setuptools import setup

setup()
