"""Model zoo: the workloads evaluated in the paper."""

from .mobilebert import (
    MOBILEBERT_SEQ_LEN,
    mobilebert,
)
from .registry import get_model, list_models, register_model
from .tinyllama import (
    TINYLLAMA_AUTOREGRESSIVE_SEQ_LEN,
    TINYLLAMA_PROMPT_SEQ_LEN,
    TINYLLAMA_SCALED_NUM_HEADS,
    tinyllama_42m,
    tinyllama_gated,
    tinyllama_scaled,
)

__all__ = [
    "MOBILEBERT_SEQ_LEN",
    "TINYLLAMA_AUTOREGRESSIVE_SEQ_LEN",
    "TINYLLAMA_PROMPT_SEQ_LEN",
    "TINYLLAMA_SCALED_NUM_HEADS",
    "get_model",
    "list_models",
    "mobilebert",
    "register_model",
    "tinyllama_42m",
    "tinyllama_gated",
    "tinyllama_scaled",
]
