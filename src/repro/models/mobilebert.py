"""MobileBERT encoder configuration.

The paper evaluates the MobileBERT encoder with "an embedding dimension and
intermediate size of 512, 4 attention heads, and a sequence length of 268".
MobileBERT is an encoder-only model with the standard two-matrix
feed-forward block and LayerNorm, and it has 24 layers.
"""

from __future__ import annotations

from ..graph.ops import ActivationKind, NormKind
from ..graph.transformer import FfnKind, TransformerConfig

#: Embedding dimension reported in the paper's setup.
MOBILEBERT_EMBED_DIM = 512

#: FFN intermediate dimension reported in the paper's setup.
MOBILEBERT_FFN_DIM = 512

#: Number of attention heads of MobileBERT.
MOBILEBERT_NUM_HEADS = 4

#: Number of encoder layers of MobileBERT.
MOBILEBERT_NUM_LAYERS = 24

#: WordPiece vocabulary size of MobileBERT.
MOBILEBERT_VOCAB_SIZE = 30522

#: Sequence length used by the paper.
MOBILEBERT_SEQ_LEN = 268


def mobilebert() -> TransformerConfig:
    """Return the MobileBERT encoder configuration used in the paper."""
    return TransformerConfig(
        name="mobilebert",
        embed_dim=MOBILEBERT_EMBED_DIM,
        ffn_dim=MOBILEBERT_FFN_DIM,
        num_heads=MOBILEBERT_NUM_HEADS,
        num_layers=MOBILEBERT_NUM_LAYERS,
        vocab_size=MOBILEBERT_VOCAB_SIZE,
        ffn_kind=FfnKind.STANDARD,
        norm_kind=NormKind.LAYERNORM,
        activation=ActivationKind.GELU,
        tie_embeddings=True,
    )
