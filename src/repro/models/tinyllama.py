"""TinyLlama-42M model configurations.

The paper deploys the 42-million-parameter TinyLlama decoder from the
``llama2.c`` family ("We take the TinyLlama model from an open-source
implementation with an embedding dimension E of 512, an intermediate size of
2048, and 8 layers, matching the configuration of the model released
initially").  The paper describes the fully-connected stage as two linear
layers of shape ``E x F`` and ``F x E`` (Sec. II-A), which together with
E=512, F=2048, 8 layers, and a 32000-entry vocabulary gives the reported
~42 M parameters, so this configuration uses the standard two-matrix FFN.
Llama-style RMSNorm and SiLU are kept.  One block's ~3 MiB of int8 weights
exceed a single Siracusa chip's 2 MiB L2 memory, which drives the paper's
off-chip-traffic story.  A gated (SwiGLU) variant is available through
:func:`tinyllama_gated` for ablations.

For the scalability study (Sec. V-C) the paper increases the head count
from 8 to 64 while leaving every other parameter unchanged;
:func:`tinyllama_scaled` reproduces that configuration.
"""

from __future__ import annotations

from ..graph.ops import ActivationKind, NormKind
from ..graph.transformer import FfnKind, TransformerConfig

#: Embedding dimension of TinyLlama-42M.
TINYLLAMA_EMBED_DIM = 512

#: FFN intermediate dimension of TinyLlama-42M as used in the paper.
TINYLLAMA_FFN_DIM = 2048

#: Number of attention heads of the original TinyLlama-42M.
TINYLLAMA_NUM_HEADS = 8

#: Number of Transformer blocks of TinyLlama-42M.
TINYLLAMA_NUM_LAYERS = 8

#: Vocabulary size of the llama2.c tokenizer.
TINYLLAMA_VOCAB_SIZE = 32000

#: Context length used by the paper for autoregressive mode.
TINYLLAMA_AUTOREGRESSIVE_SEQ_LEN = 128

#: Prompt length used by the paper for prompt mode.
TINYLLAMA_PROMPT_SEQ_LEN = 16

#: Head count of the scaled-up model of the scalability study.
TINYLLAMA_SCALED_NUM_HEADS = 64


def tinyllama_42m() -> TransformerConfig:
    """Return the TinyLlama-42M configuration used in the paper."""
    return TransformerConfig(
        name="tinyllama-42m",
        embed_dim=TINYLLAMA_EMBED_DIM,
        ffn_dim=TINYLLAMA_FFN_DIM,
        num_heads=TINYLLAMA_NUM_HEADS,
        num_layers=TINYLLAMA_NUM_LAYERS,
        vocab_size=TINYLLAMA_VOCAB_SIZE,
        ffn_kind=FfnKind.STANDARD,
        norm_kind=NormKind.RMSNORM,
        activation=ActivationKind.SILU,
        tie_embeddings=True,
    )


def tinyllama_gated(ffn_dim: int = 1376) -> TransformerConfig:
    """Return a gated-FFN (SwiGLU) TinyLlama variant for ablations.

    The llama2.c "stories42M" checkpoint actually uses a gated FFN with an
    intermediate size of 1376, which lands at the same ~42 M parameters as
    the paper's two-matrix description.  The partitioning scheme applies
    unchanged (the third matrix is sliced along ``F`` like the others), so
    this variant is used to show that the results do not depend on the FFN
    flavour.
    """
    return TransformerConfig(
        name=f"tinyllama-42m-gated-{ffn_dim}",
        embed_dim=TINYLLAMA_EMBED_DIM,
        ffn_dim=ffn_dim,
        num_heads=TINYLLAMA_NUM_HEADS,
        num_layers=TINYLLAMA_NUM_LAYERS,
        vocab_size=TINYLLAMA_VOCAB_SIZE,
        ffn_kind=FfnKind.GATED,
        norm_kind=NormKind.RMSNORM,
        activation=ActivationKind.SILU,
        tie_embeddings=True,
    )


def tinyllama_scaled(num_heads: int = TINYLLAMA_SCALED_NUM_HEADS) -> TransformerConfig:
    """Return the scaled-up TinyLlama used for the 2-64 chip study.

    Only the head count changes; the total projection width, FFN size, and
    layer count stay identical to :func:`tinyllama_42m`, matching the paper's
    "we leave all other model parameters unchanged".
    """
    return tinyllama_42m().scaled_heads(num_heads, name=f"tinyllama-42m-{num_heads}h")
