"""Model registry.

The registry maps short names to configuration factories so that examples,
benchmarks, and command-line sweeps can select models by name.  Factories
(rather than pre-built configurations) are registered so that every lookup
returns a fresh, independent configuration object.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigurationError
from ..graph.transformer import TransformerConfig
from .mobilebert import mobilebert
from .tinyllama import tinyllama_42m, tinyllama_gated, tinyllama_scaled

_FACTORIES: Dict[str, Callable[[], TransformerConfig]] = {}


def register_model(name: str, factory: Callable[[], TransformerConfig]) -> None:
    """Register a model factory under ``name``.

    Raises:
        ConfigurationError: If the name is already registered.
    """
    key = name.strip().lower()
    if not key:
        raise ConfigurationError("model name must be non-empty")
    if key in _FACTORIES:
        raise ConfigurationError(f"model {name!r} is already registered")
    _FACTORIES[key] = factory


def get_model(name: str) -> TransformerConfig:
    """Build the configuration registered under ``name``.

    Raises:
        ConfigurationError: If no model with that name is registered.
    """
    key = name.strip().lower()
    if key not in _FACTORIES:
        known = ", ".join(sorted(_FACTORIES))
        raise ConfigurationError(f"unknown model {name!r}; known models: {known}")
    return _FACTORIES[key]()


def list_models() -> List[str]:
    """Return the sorted names of all registered models."""
    return sorted(_FACTORIES)


def _register_zoo() -> None:
    """Register the declarative model zoo (see :mod:`repro.arch.zoo`).

    Each entry is registered as a *factory over a factory*: the lambda
    rebuilds the :class:`~repro.arch.ArchSpec` and lowers it on every
    lookup, so parametric families can never share configuration objects
    between variants (the regression suite checks this freshness).
    """
    from ..arch.zoo import ZOO, build_zoo_model

    for name in ZOO:
        register_model(name, lambda name=name: build_zoo_model(name))


register_model("tinyllama-42m", tinyllama_42m)
register_model("tinyllama", tinyllama_42m)  # convenience alias
register_model("tinyllama-42m-64h", tinyllama_scaled)
register_model("tinyllama-42m-gated", tinyllama_gated)
register_model("mobilebert", mobilebert)
_register_zoo()
