"""Analytical energy modelling (the paper's Sec. V-A equation)."""

from .model import EnergyBreakdown, EnergyModel, EnergyReport, energy_of

__all__ = ["EnergyBreakdown", "EnergyModel", "EnergyReport", "energy_of"]
