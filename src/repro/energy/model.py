"""Analytical energy model.

Implements the paper's total-energy equation (Sec. V-A):

    E_total = N_C2C * E_C2C
            + sum_j ( P * T_comp,j
                      + N_L3<->L2,j * E_L3<->L2
                      + N_L2<->L1,j * E_L2<->L1 )

where ``P`` is the average cluster power (8 cores x 13 mW), ``T_comp,j`` is
the computation time of chip ``j``, the ``N`` terms are transfer byte
counts, and the ``E`` terms are the per-byte transfer energies (100 pJ/B
for chip-to-chip and L3, 2 pJ/B for L2).  All inputs come from the
simulation trace, mirroring how the paper feeds GVSoC measurements into its
analytical model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import AnalysisError
from ..hw.platform import MultiChipPlatform
from ..sim.trace import SimulationResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one chip (or of the whole system), split by source.

    All values are in joules.
    """

    compute: float
    l2_l1: float
    l3_l2: float
    chip_to_chip: float

    def __post_init__(self) -> None:
        for name in ("compute", "l2_l1", "l3_l2", "chip_to_chip"):
            if getattr(self, name) < 0:
                raise AnalysisError(f"energy component {name} cannot be negative")

    @property
    def total(self) -> float:
        """Total energy in joules."""
        return self.compute + self.l2_l1 + self.l3_l2 + self.chip_to_chip

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            compute=self.compute + other.compute,
            l2_l1=self.l2_l1 + other.l2_l1,
            l3_l2=self.l3_l2 + other.l3_l2,
            chip_to_chip=self.chip_to_chip + other.chip_to_chip,
        )


@dataclass(frozen=True)
class EnergyReport:
    """System energy of one simulated block.

    Attributes:
        per_chip: Energy breakdown of each chip (chip-to-chip energy is
            charged to the sending chip).
        total: System-level breakdown (sum over chips).
        runtime_seconds: Block runtime, kept here so the report can compute
            the energy-delay product on its own.
    """

    per_chip: Dict[int, EnergyBreakdown]
    total: EnergyBreakdown
    runtime_seconds: float

    # ------------------------------------------------------------------
    # Compact pickling
    # ------------------------------------------------------------------
    # One breakdown per chip is persisted for every cached evaluation;
    # flattening them to a float row per chip keeps the pickle small, and
    # the objects are only materialised when ``per_chip`` is read.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        per_chip = state.pop("per_chip", None)
        if per_chip is not None:
            state["_packed_per_chip"] = tuple(
                (chip_id, b.compute, b.l2_l1, b.l3_l2, b.chip_to_chip)
                for chip_id, b in per_chip.items()
            )
        return state

    def __getattr__(self, name: str):
        if name == "per_chip":
            packed = self.__dict__.get("_packed_per_chip")
            if packed is not None:
                per_chip = {}
                for chip_id, compute, l2_l1, l3_l2, chip_to_chip in packed:
                    breakdown = EnergyBreakdown.__new__(EnergyBreakdown)
                    breakdown.__dict__.update(
                        compute=compute, l2_l1=l2_l1, l3_l2=l3_l2,
                        chip_to_chip=chip_to_chip,
                    )
                    per_chip[chip_id] = breakdown
                object.__setattr__(self, "per_chip", per_chip)
                return per_chip
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def total_joules(self) -> float:
        """Total system energy in joules."""
        return self.total.total

    @property
    def energy_delay_product(self) -> float:
        """Energy-delay product in joule-seconds."""
        return self.total_joules * self.runtime_seconds


class EnergyModel:
    """Computes system energy from a simulation trace."""

    def __init__(self, platform: MultiChipPlatform) -> None:
        self._platform = platform

    def from_simulation(self, result: SimulationResult) -> EnergyReport:
        """Apply the paper's energy equation to a simulation result."""
        if result.program.platform is not self._platform:
            # The model only needs parameters, not identity, but mixing
            # platforms is almost always a bug in calling code.
            if result.program.platform.chip != self._platform.chip:
                raise AnalysisError(
                    "simulation result was produced on a different chip model "
                    "than the one this energy model was built for"
                )
        chip = self._platform.chip
        cluster = chip.cluster
        link = self._platform.link
        l2_energy = chip.l2.access_energy_pj_per_byte * 1e-12
        l3_energy = chip.l3.access_energy_pj_per_byte * 1e-12

        per_chip: Dict[int, EnergyBreakdown] = {}
        for chip_id, trace in result.chip_traces.items():
            compute_seconds = trace.compute_cycles / cluster.frequency_hz
            per_chip[chip_id] = EnergyBreakdown(
                compute=cluster.power_w * compute_seconds,
                l2_l1=trace.l2_l1_bytes * l2_energy,
                l3_l2=trace.l3_l2_bytes * l3_energy,
                chip_to_chip=link.transfer_energy_joules(int(trace.c2c_bytes_sent)),
            )

        total = EnergyBreakdown(compute=0.0, l2_l1=0.0, l3_l2=0.0, chip_to_chip=0.0)
        for breakdown in per_chip.values():
            total = total + breakdown
        return EnergyReport(
            per_chip=per_chip,
            total=total,
            runtime_seconds=result.runtime_seconds,
        )


def energy_of(result: SimulationResult) -> EnergyReport:
    """Convenience wrapper: energy of a simulation on its own platform."""
    return EnergyModel(result.program.platform).from_simulation(result)
