"""Lowering declarative architectures into the graph representation.

:func:`build_model` turns a validated :class:`~repro.arch.spec.ArchSpec`
into a plain :class:`~repro.graph.transformer.TransformerConfig` — the
same type the hand-coded paper models produce — so generated
architectures flow through partitioning, scheduling, simulation,
Session, DSE, serving, and fleet without those layers changing.

The graph layer models one homogeneous stack of blocks, so the factory
merges an architecture's block groups per role and requires the merged
groups to agree on every architectural choice (an
:class:`~repro.errors.ArchitectureError` otherwise).  Encoder/decoder
architectures lower to their *decoder* stack by default, with
``cross_attention=True`` so every block carries the second
(encoder-memory) attention stage; pass ``stack="encoder"`` to obtain the
encoder stack as a separate config.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ArchitectureError, ConfigurationError, SpecError
from ..graph.dtypes import DType, dtype_from_name
from ..graph.ops import ActivationKind, NormKind, total_macs
from ..graph.transformer import (
    FfnKind,
    InferenceMode,
    TransformerConfig,
    build_block_operators,
)
from ..graph.workload import Workload
from .spec import ArchSpec, BlockGroupSpec

__all__ = [
    "build_model",
    "model_macs",
    "resolve_activation",
    "resolve_dtype",
    "resolve_norm",
]

_NORMS = {kind.value: kind for kind in NormKind}
_ACTIVATIONS = {kind.value: kind for kind in ActivationKind}
_FFN_MATRICES = {
    "dense": FfnKind.STANDARD,
    "gated": FfnKind.GATED,
    "moe": FfnKind.STANDARD,
    "moe-gated": FfnKind.GATED,
}


def _fail(path: Optional[str], field: str, message: str) -> ArchitectureError:
    where = f"{path}" if path else field
    return ArchitectureError(f"{where}: {message}")


def resolve_norm(name: str, *, path: Optional[str] = None) -> NormKind:
    """Look up a normalisation flavour by name."""
    kind = _NORMS.get(name)
    if kind is None:
        raise _fail(
            path,
            "norm",
            f"unknown norm {name!r}; choices: " + ", ".join(sorted(_NORMS)),
        )
    return kind


def resolve_activation(name: str, *, path: Optional[str] = None) -> ActivationKind:
    """Look up an activation flavour by name."""
    kind = _ACTIVATIONS.get(name)
    if kind is None:
        raise _fail(
            path,
            "activation",
            f"unknown activation {name!r}; choices: "
            + ", ".join(sorted(_ACTIVATIONS)),
        )
    return kind


def resolve_dtype(name: str, *, path: Optional[str] = None) -> DType:
    """Look up a dtype by registry name."""
    try:
        return dtype_from_name(name)
    except KeyError as error:
        raise _fail(path, "dtype", str(error.args[0])) from None


def _resolved_choices(spec: ArchSpec, group: BlockGroupSpec) -> Dict[str, object]:
    """The architectural choices one group pins for the merged stack."""
    return {
        "num_heads": group.num_heads,
        "head_dim": group.head_dim,
        "ffn_dim": group.ffn_dim,
        "kv_heads": group.resolved_kv_heads(),
        "ffn_kind": _FFN_MATRICES[group.ffn],
        "num_experts": group.num_experts if group.is_moe else 1,
        "moe_top_k": group.moe_top_k if group.is_moe else 1,
        "norm_kind": resolve_norm(group.norm),
        "activation": resolve_activation(group.activation),
        "weight_dtype": resolve_dtype(group.weight_dtype or spec.weight_dtype),
        "act_dtype": resolve_dtype(group.act_dtype or spec.act_dtype),
    }


def _merge_groups(
    spec: ArchSpec, groups: List[BlockGroupSpec], role: str
) -> Dict[str, object]:
    """Merge same-role groups into one homogeneous stack description."""
    merged = _resolved_choices(spec, groups[0])
    for group in groups[1:]:
        choices = _resolved_choices(spec, group)
        for field, value in choices.items():
            if value != merged[field]:
                raise ArchitectureError(
                    f"architecture {spec.name!r}: the {role} stack is "
                    f"heterogeneous in {field} ({merged[field]!r} vs "
                    f"{value!r}); the block cost model requires identical "
                    "blocks within a stack"
                )
    merged["num_layers"] = sum(group.repeat for group in groups)
    return merged


def build_model(spec: ArchSpec, *, stack: str = "auto") -> TransformerConfig:
    """Lower an architecture description into a model configuration.

    Args:
        spec: The architecture to lower.
        stack: Which stack to build: ``"decoder"``, ``"encoder"``, or
            ``"auto"`` (the decoder when one exists, else the encoder).
            For encoder/decoder architectures the decoder config carries
            ``cross_attention=True``; the encoder stack is available as a
            separate config named ``"<name>.encoder"``.

    Raises:
        ArchitectureError: If the spec violates a structural constraint
            or cannot be expressed by the graph layer.
    """
    for index, group in enumerate(spec.blocks):
        try:
            group.validate(f"arch {spec.name!r} blocks[{index}]")
        except SpecError as error:
            raise ArchitectureError(str(error)) from None
    roles = {group.role for group in spec.blocks}
    if stack == "auto":
        stack = "decoder" if "decoder" in roles else "encoder"
    if stack not in ("decoder", "encoder"):
        raise ArchitectureError(
            f"unknown stack {stack!r}; choices: auto, decoder, encoder"
        )
    if stack not in roles:
        raise ArchitectureError(
            f"architecture {spec.name!r} has no {stack} block groups"
        )
    groups = [group for group in spec.blocks if group.role == stack]
    merged = _merge_groups(spec, groups, stack)
    cross_attention = stack == "decoder" and "encoder" in roles
    name = spec.name if stack != "encoder" or "decoder" not in roles else (
        f"{spec.name}.encoder"
    )
    kv_cache_dtype = (
        resolve_dtype(spec.kv_cache_dtype)
        if spec.kv_cache_dtype is not None
        else None
    )
    try:
        return TransformerConfig(
            name=name,
            embed_dim=spec.embed_dim,
            ffn_dim=merged["ffn_dim"],
            num_heads=merged["num_heads"],
            num_layers=merged["num_layers"],
            head_dim=merged["head_dim"],
            vocab_size=spec.vocab_size,
            ffn_kind=merged["ffn_kind"],
            norm_kind=merged["norm_kind"],
            activation=merged["activation"],
            weight_dtype=merged["weight_dtype"],
            act_dtype=merged["act_dtype"],
            tie_embeddings=spec.tie_embeddings,
            kv_heads=merged["kv_heads"],
            num_experts=merged["num_experts"],
            moe_top_k=merged["moe_top_k"],
            attention_window=spec.attention_window,
            kv_cache_dtype=kv_cache_dtype,
            cross_attention=cross_attention,
        )
    except ConfigurationError as error:
        raise ArchitectureError(
            f"architecture {spec.name!r} cannot be lowered: {error}"
        ) from None


def model_macs(
    config: TransformerConfig,
    *,
    mode: InferenceMode = InferenceMode.AUTOREGRESSIVE,
    seq_len: int = 128,
) -> int:
    """Multiply-accumulate count of one full forward pass (all layers).

    A convenience for architecture comparisons and the property suite;
    per-block operator costs come from the same
    :func:`~repro.graph.transformer.build_block_operators` the schedulers
    use, so this can never drift from the cost model.
    """
    workload = Workload(config=config, mode=mode, seq_len=seq_len)
    operators = build_block_operators(
        config,
        query_rows=workload.query_rows,
        kv_rows=workload.new_kv_rows,
        attended_positions=workload.attended_positions,
        cross_attended_positions=workload.cross_attended_positions,
    )
    return total_macs(operators.all_operators) * config.num_layers
