"""Declarative architecture factory and model zoo.

``repro.arch`` turns model architectures into *data*: an
:class:`ArchSpec` (stacked :class:`BlockGroupSpec` groups choosing
MHA/GQA/MQA attention, dense/gated/MoE FFNs, norm/activation/dtype
flavours, long-context KV-cache variants) lowers through
:func:`build_model` into the same
:class:`~repro.graph.transformer.TransformerConfig` the hand-coded paper
models use, so generated models flow through ``Session.run/sweep/tune/
serve/serve_fleet`` and the DSE unchanged.  See ``docs/MODELS.md``.

Importing this package registers the ``arch`` and ``block_group`` spec
kinds with :func:`repro.spec.spec_from_dict` (the spec layer also
imports it lazily on first sight of those kinds, so documents decode
without callers importing anything).
"""

from .factory import build_model, model_macs
from .spec import ATTENTION_KINDS, FFN_KINDS, ROLES, ArchSpec, BlockGroupSpec
from .zoo import (
    ZOO,
    build_zoo_model,
    encdec_small,
    gqa_1b,
    gqa_moe_tiny,
    longctx_4k,
    moe_8x,
    mqa_270m,
)

__all__ = [
    "ATTENTION_KINDS",
    "FFN_KINDS",
    "ROLES",
    "ArchSpec",
    "BlockGroupSpec",
    "ZOO",
    "build_model",
    "build_zoo_model",
    "encdec_small",
    "gqa_1b",
    "gqa_moe_tiny",
    "longctx_4k",
    "model_macs",
    "moe_8x",
    "mqa_270m",
]
