"""Parametric model zoo built from committed architecture descriptions.

Each factory returns a fresh :class:`~repro.arch.spec.ArchSpec`; the zoo
table :data:`ZOO` maps registry names to those factories, and
:mod:`repro.models.registry` registers ``build_model(factory())`` under
each name so every lookup produces an independent configuration object.
The canonical JSON form of every zoo entry is committed under
``examples/specs/arch/`` and sync-tested byte-for-byte against these
factories, so the declarative documents and the code cannot drift.

The families stress every new architecture dimension:

* ``gqa-1b`` — a TinyLlama-1.1B-shaped GQA decoder (32 query heads over
  4 KV heads); its ~1.1 GiB of int8 block weights force the streamed
  regime on every realistic chip count.
* ``mqa-270m`` — a mid-size multi-query decoder (single shared KV head).
* ``moe-8x`` — the paper's TinyLlama-42M widened into 8 experts with
  top-2 routing; expert placement becomes the FFN partition dimension.
* ``longctx-4k`` — TinyLlama-42M decoding at a 4096-token context
  through a 1024-position sliding window with an int8 KV-cache.
* ``gqa-moe-tiny`` — a small GQA + gated-MoE decoder combining both new
  partition dimensions; CI-sized on purpose.
* ``encdec-small`` — a MobileBERT-sized encoder/decoder pair whose
  decoder blocks carry a cross-attention stage.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..graph.transformer import TransformerConfig
from .factory import build_model
from .spec import ArchSpec, BlockGroupSpec

__all__ = [
    "ZOO",
    "build_zoo_model",
    "encdec_small",
    "gqa_1b",
    "gqa_moe_tiny",
    "longctx_4k",
    "moe_8x",
    "mqa_270m",
]

#: Sliding-window span of the long-context family (positions cached).
LONGCTX_WINDOW = 1024

#: Context length the long-context family is evaluated at.
LONGCTX_SEQ_LEN = 4096


def gqa_1b(kv_heads: int = 4) -> ArchSpec:
    """TinyLlama-1.1B-shaped grouped-query decoder."""
    return ArchSpec(
        name="gqa-1b" if kv_heads == 4 else f"gqa-1b-kv{kv_heads}",
        embed_dim=2048,
        blocks=(
            BlockGroupSpec(
                repeat=22,
                num_heads=32,
                ffn_dim=5632,
                attention="gqa",
                kv_heads=kv_heads,
                ffn="gated",
                norm="rmsnorm",
                activation="silu",
            ),
        ),
    )


def mqa_270m() -> ArchSpec:
    """Mid-size multi-query decoder (one shared KV head)."""
    return ArchSpec(
        name="mqa-270m",
        embed_dim=1024,
        blocks=(
            BlockGroupSpec(
                repeat=22,
                num_heads=16,
                ffn_dim=2816,
                attention="mqa",
                ffn="gated",
                norm="rmsnorm",
                activation="silu",
            ),
        ),
    )


def moe_8x(num_experts: int = 8, moe_top_k: int = 2) -> ArchSpec:
    """TinyLlama-42M widened into a mixture of experts."""
    suffix = "" if (num_experts, moe_top_k) == (8, 2) else (
        f"-{num_experts}e{moe_top_k}k"
    )
    return ArchSpec(
        name=f"moe-8x{suffix}",
        embed_dim=512,
        blocks=(
            BlockGroupSpec(
                repeat=8,
                num_heads=8,
                ffn_dim=2048,
                ffn="moe",
                num_experts=num_experts,
                moe_top_k=moe_top_k,
                norm="rmsnorm",
                activation="silu",
            ),
        ),
    )


def longctx_4k(attention_window: int = LONGCTX_WINDOW) -> ArchSpec:
    """TinyLlama-42M with a sliding attention window for long contexts."""
    suffix = "" if attention_window == LONGCTX_WINDOW else f"-w{attention_window}"
    return ArchSpec(
        name=f"longctx-4k{suffix}",
        embed_dim=512,
        blocks=(
            BlockGroupSpec(
                repeat=8,
                num_heads=8,
                ffn_dim=2048,
                norm="rmsnorm",
                activation="silu",
            ),
        ),
        kv_cache_dtype="int8",
        attention_window=attention_window,
    )


def gqa_moe_tiny() -> ArchSpec:
    """Small decoder combining GQA and a gated MoE (CI-sized)."""
    return ArchSpec(
        name="gqa-moe-tiny",
        embed_dim=512,
        blocks=(
            BlockGroupSpec(
                repeat=6,
                num_heads=8,
                ffn_dim=1024,
                attention="gqa",
                kv_heads=2,
                ffn="moe-gated",
                num_experts=4,
                moe_top_k=2,
                norm="rmsnorm",
                activation="silu",
            ),
        ),
    )


def encdec_small() -> ArchSpec:
    """Small encoder/decoder pair; the decoder carries cross-attention."""
    return ArchSpec(
        name="encdec-small",
        embed_dim=512,
        blocks=(
            BlockGroupSpec(role="encoder", repeat=6, num_heads=8, ffn_dim=2048),
            BlockGroupSpec(role="decoder", repeat=6, num_heads=8, ffn_dim=2048),
        ),
    )


#: Registry names to spec factories; the order here is the docs order.
ZOO: Dict[str, Callable[[], ArchSpec]] = {
    "gqa-1b": gqa_1b,
    "mqa-270m": mqa_270m,
    "moe-8x": moe_8x,
    "longctx-4k": longctx_4k,
    "gqa-moe-tiny": gqa_moe_tiny,
    "encdec-small": encdec_small,
}


def build_zoo_model(name: str) -> TransformerConfig:
    """Build a fresh configuration for one zoo entry."""
    return build_model(ZOO[name]())
