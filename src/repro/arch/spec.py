"""Declarative architecture descriptions.

An :class:`ArchSpec` describes a Transformer model *as data*: a stack of
:class:`BlockGroupSpec` groups (each ``repeat``-ed some number of times)
over shared embedding parameters.  Groups choose an attention kind
(``mha`` / ``gqa`` / ``mqa``), an FFN kind (``dense`` / ``gated`` /
``moe`` / ``moe-gated``), normalisation and activation flavours, and may
override the model-level weight/activation dtypes.  Model-level knobs
cover the vocabulary, embedding tying, a sliding ``attention_window`` for
long-context decode, and a (possibly quantised) ``kv_cache_dtype``.

Both spec classes are frozen dataclasses on the :mod:`repro.spec`
machinery, so they share its contract: sparse canonical ``to_dict()`` /
``to_json()`` (only non-default fields, sorted keys, schema tag,
byte-deterministic), hand-typed ``from_dict`` through the path-tracking
:class:`~repro.spec.base.Fields` reader, and ``validate(path=...)`` with
precise document paths.  :func:`repro.arch.factory.build_model` lowers a
validated spec into a plain :class:`~repro.graph.transformer.TransformerConfig`,
which is why generated models flow through Session, DSE, serving, and
fleet with zero changes to those layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..errors import ArchitectureError, ReproError, SpecError
from ..spec.base import Fields, SpecBase, spec_error
from ..spec.specs import _register

__all__ = [
    "ATTENTION_KINDS",
    "FFN_KINDS",
    "ROLES",
    "ArchSpec",
    "BlockGroupSpec",
]

#: Attention flavours a block group may declare.
ATTENTION_KINDS = ("mha", "gqa", "mqa")

#: FFN flavours a block group may declare.  ``moe`` routes each token to
#: ``moe_top_k`` of ``num_experts`` standard (two-matrix) experts;
#: ``moe-gated`` uses gated (SwiGLU-style, three-matrix) experts.
FFN_KINDS = ("dense", "gated", "moe", "moe-gated")

#: Stack roles a block group may belong to.
ROLES = ("decoder", "encoder")


def _choice(path: str, field: str, value: str, choices: Tuple[str, ...]) -> None:
    if value not in choices:
        raise spec_error(
            f"{path}.{field}",
            f"unknown {field} {value!r}; choices: " + ", ".join(choices),
        )


@_register
@dataclass(frozen=True)
class BlockGroupSpec(SpecBase):
    """A run of identical Transformer blocks within an architecture.

    Attributes:
        role: Stack the group belongs to (``decoder`` or ``encoder``).
        repeat: Number of consecutive blocks this group contributes.
        num_heads: Query attention heads per block.
        ffn_dim: FFN intermediate width (per expert, for MoE groups).
        head_dim: Per-head projection width; defaults to
            ``embed_dim // num_heads`` of the enclosing architecture.
        attention: ``mha`` (KV head per query head), ``gqa`` (grouped KV
            heads, set ``kv_heads``), or ``mqa`` (a single shared KV head).
        kv_heads: KV head count for ``gqa`` groups.  Must divide
            ``num_heads``; ``kv_heads == num_heads`` is exactly MHA.
            Forbidden for ``mha``/``mqa`` (implied there).
        ffn: FFN flavour (see :data:`FFN_KINDS`).
        num_experts: Expert count for MoE groups (>= 2; forbidden otherwise).
        moe_top_k: Experts each token activates (MoE groups only).
        norm: Normalisation flavour (``layernorm`` or ``rmsnorm``).
        activation: FFN non-linearity (``gelu``, ``silu``, or ``relu``).
        weight_dtype: Optional per-group override of the model weight dtype.
        act_dtype: Optional per-group override of the activation dtype.
    """

    kind = "block_group"

    role: str = "decoder"
    repeat: int = 1
    num_heads: int = 8
    ffn_dim: int = 2048
    head_dim: Optional[int] = None
    attention: str = "mha"
    kv_heads: Optional[int] = None
    ffn: str = "dense"
    num_experts: Optional[int] = None
    moe_top_k: int = 2
    norm: str = "layernorm"
    activation: str = "gelu"
    weight_dtype: Optional[str] = None
    act_dtype: Optional[str] = None

    @property
    def is_moe(self) -> bool:
        """Whether the group's FFN is a mixture of experts."""
        return self.ffn in ("moe", "moe-gated")

    def resolved_kv_heads(self) -> int:
        """The KV head count implied by the attention kind."""
        if self.attention == "mqa":
            return 1
        if self.attention == "gqa":
            return self.kv_heads if self.kv_heads is not None else self.num_heads
        return self.num_heads

    def validate(self, path: str = "$") -> None:
        """Check the group's structural constraints with precise paths."""
        _choice(path, "role", self.role, ROLES)
        _choice(path, "attention", self.attention, ATTENTION_KINDS)
        _choice(path, "ffn", self.ffn, FFN_KINDS)
        if self.repeat <= 0:
            raise spec_error(f"{path}.repeat", "expected a positive integer")
        if self.num_heads <= 0:
            raise spec_error(f"{path}.num_heads", "expected a positive integer")
        if self.ffn_dim <= 0:
            raise spec_error(f"{path}.ffn_dim", "expected a positive integer")
        if self.head_dim is not None and self.head_dim <= 0:
            raise spec_error(f"{path}.head_dim", "expected a positive integer")
        if self.attention == "gqa":
            if self.kv_heads is None:
                raise spec_error(
                    f"{path}.kv_heads", "required for 'gqa' attention"
                )
            if self.kv_heads <= 0 or self.num_heads % self.kv_heads != 0:
                raise spec_error(
                    f"{path}.kv_heads",
                    f"{self.kv_heads} must be positive and divide "
                    f"num_heads {self.num_heads} evenly",
                )
        elif self.kv_heads is not None:
            raise spec_error(
                f"{path}.kv_heads",
                f"implied by {self.attention!r} attention; only 'gqa' "
                "groups set it explicitly",
            )
        if self.is_moe:
            if self.num_experts is None:
                raise spec_error(
                    f"{path}.num_experts", f"required for {self.ffn!r} FFNs"
                )
            if self.num_experts < 2:
                raise spec_error(
                    f"{path}.num_experts", "expected at least 2 experts"
                )
            if not 1 <= self.moe_top_k <= self.num_experts:
                raise spec_error(
                    f"{path}.moe_top_k",
                    f"{self.moe_top_k} must lie in [1, "
                    f"num_experts={self.num_experts}]",
                )
        elif self.num_experts is not None:
            raise spec_error(
                f"{path}.num_experts",
                f"only meaningful for MoE FFNs, not {self.ffn!r}",
            )
        from .factory import resolve_activation, resolve_dtype, resolve_norm

        try:
            resolve_norm(self.norm, path=f"{path}.norm")
            resolve_activation(self.activation, path=f"{path}.activation")
            for field_name in ("weight_dtype", "act_dtype"):
                value = getattr(self, field_name)
                if value is not None:
                    resolve_dtype(value, path=f"{path}.{field_name}")
        except ArchitectureError as error:
            # The resolvers' messages already lead with the precise path.
            raise SpecError(str(error)) from None

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "BlockGroupSpec":
        reader = Fields(data, path, cls.kind)
        spec = cls(
            role=reader.str_("role", "decoder"),
            repeat=reader.int_("repeat", 1),
            num_heads=reader.int_("num_heads", 8),
            ffn_dim=reader.int_("ffn_dim", 2048),
            head_dim=reader.opt_int("head_dim"),
            attention=reader.str_("attention", "mha"),
            kv_heads=reader.opt_int("kv_heads"),
            ffn=reader.str_("ffn", "dense"),
            num_experts=reader.opt_int("num_experts"),
            moe_top_k=reader.int_("moe_top_k", 2),
            norm=reader.str_("norm", "layernorm"),
            activation=reader.str_("activation", "gelu"),
            weight_dtype=reader.opt_str("weight_dtype"),
            act_dtype=reader.opt_str("act_dtype"),
        )
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class ArchSpec(SpecBase):
    """A complete declarative model architecture.

    Attributes:
        name: Model name used in reports and registries.
        embed_dim: Embedding dimension shared by every block group.
        blocks: The block groups, in stack order.
        vocab_size: Vocabulary size (parameter counting only).
        tie_embeddings: Whether input/output embeddings share storage.
        weight_dtype: Default weight dtype name (per-group overridable).
        act_dtype: Default activation dtype name (per-group overridable).
        kv_cache_dtype: Optional quantised KV-cache dtype name.
        attention_window: Optional sliding-window span for long-context
            decode (caps attended positions and the KV-cache size).
    """

    kind = "arch"

    name: str = "custom"
    embed_dim: int = 512
    blocks: Tuple[BlockGroupSpec, ...] = (BlockGroupSpec(),)
    vocab_size: int = 32000
    tie_embeddings: bool = True
    weight_dtype: str = "int8"
    act_dtype: str = "int8"
    kv_cache_dtype: Optional[str] = None
    attention_window: Optional[int] = None

    def validate(self, path: str = "$") -> None:
        """Check the architecture, including that it lowers to a model."""
        if not self.name or not isinstance(self.name, str):
            raise spec_error(f"{path}.name", "expected a non-empty string")
        if self.embed_dim <= 0:
            raise spec_error(f"{path}.embed_dim", "expected a positive integer")
        if self.vocab_size <= 0:
            raise spec_error(f"{path}.vocab_size", "expected a positive integer")
        if self.attention_window is not None and self.attention_window <= 0:
            raise spec_error(
                f"{path}.attention_window", "expected a positive integer"
            )
        if not self.blocks:
            raise spec_error(f"{path}.blocks", "expected at least one block group")
        for index, group in enumerate(self.blocks):
            if not isinstance(group, BlockGroupSpec):
                raise spec_error(
                    f"{path}.blocks[{index}]", "expected a block_group spec"
                )
            group.validate(f"{path}.blocks[{index}]")
        from .factory import resolve_dtype

        try:
            resolve_dtype(self.weight_dtype, path=f"{path}.weight_dtype")
            resolve_dtype(self.act_dtype, path=f"{path}.act_dtype")
            if self.kv_cache_dtype is not None:
                resolve_dtype(
                    self.kv_cache_dtype, path=f"{path}.kv_cache_dtype"
                )
        except ArchitectureError as error:
            raise SpecError(str(error)) from None
        try:
            self.build()
        except ArchitectureError as error:
            raise spec_error(path, str(error)) from None
        except ReproError as error:
            raise spec_error(path, str(error)) from None

    def build(self):
        """Lower this architecture into a :class:`TransformerConfig`."""
        from .factory import build_model

        return build_model(self)

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "ArchSpec":
        reader = Fields(data, path, cls.kind)
        raw_blocks = reader.seq("blocks", None)
        if raw_blocks is None:
            blocks: Tuple[BlockGroupSpec, ...] = (BlockGroupSpec(),)
        else:
            blocks = tuple(
                BlockGroupSpec.from_dict(item, f"{path}.blocks[{index}]")
                for index, item in enumerate(raw_blocks)
            )
        spec = cls(
            name=reader.str_("name", "custom"),
            embed_dim=reader.int_("embed_dim", 512),
            blocks=blocks,
            vocab_size=reader.int_("vocab_size", 32000),
            tie_embeddings=reader.bool_("tie_embeddings", True),
            weight_dtype=reader.str_("weight_dtype", "int8"),
            act_dtype=reader.str_("act_dtype", "int8"),
            kv_cache_dtype=reader.opt_str("kv_cache_dtype"),
            attention_window=reader.opt_int("attention_window"),
        )
        reader.finish()
        return spec
