"""Single-chip baseline (the reference every speedup is normalised to)."""

from __future__ import annotations

from ..analysis.evaluate import evaluate_block
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from .types import BaselineResult


def evaluate_single_chip(
    workload: Workload, platform: MultiChipPlatform
) -> BaselineResult:
    """Evaluate the workload on a single chip of the given platform."""
    single = platform.with_num_chips(1)
    report = evaluate_block(workload, single)
    plan = report.program.memory_plan(0)
    return BaselineResult(
        approach="Single chip",
        num_chips=1,
        block_cycles=report.block_cycles,
        block_energy_joules=report.block_energy_joules,
        l3_bytes_per_block=report.total_l3_bytes,
        weight_bytes_per_chip=plan.block_weight_bytes,
        weights_replicated=False,
        synchronisations_per_block=0,
        uses_pipelining=False,
        notes="all weights and traffic on one chip",
    )
