"""Pipeline-parallel baseline.

This models the PipeEdge / Hermes family of approaches (Table I of the
paper): the Transformer *layers* are distributed across chips, each chip
executing a contiguous stage of the model.  Weights are not replicated, and
each chip's share of the model may even fit on-chip — but for a real-time,
single-user request the stages execute one after another, so the latency
of one token is essentially the single-chip latency plus the inter-stage
activation transfers.  Pipelining only pays off with a batch of independent
requests to keep all stages busy, which the paper argues is unavailable in
smart-glasses scenarios.
"""

from __future__ import annotations

import math
from dataclasses import replace

from ..core.footprint import chip_footprint
from ..core.partition import partition_block
from ..core.placement import plan_memory
from ..core.scheduler import BlockScheduler
from ..energy.model import EnergyModel
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from ..sim.simulator import simulate_block
from .types import BaselineResult


def evaluate_pipeline_parallel(
    workload: Workload, platform: MultiChipPlatform
) -> BaselineResult:
    """Analytically evaluate a layer-wise pipeline across the platform.

    Each stage is modelled as a single-chip execution of its layers: the
    block program is built for a one-chip platform whose weight-residency
    decision sees only the stage's share of the model (a chip holding
    ``L/N`` layers may keep them all resident, which is the one advantage
    pipelining shares with the paper's scheme).  The per-token latency is
    the sum of all stage latencies plus the inter-stage activation
    transfers; the per-block figure reported is that latency divided by the
    layer count, to stay comparable with the other approaches.
    """
    config = workload.config
    num_chips = platform.num_chips
    layers_per_stage = max(1, math.ceil(config.num_layers / num_chips))
    num_stages = math.ceil(config.num_layers / layers_per_stage)

    # A single-chip platform for per-stage execution, with the residency
    # decision based on the stage's (smaller) share of the model.
    stage_platform = platform.with_num_chips(1)
    stage_config = replace(config, num_layers=layers_per_stage)
    stage_workload = Workload(
        config=stage_config, mode=workload.mode, seq_len=workload.seq_len
    )
    scheduler = BlockScheduler(platform=stage_platform)
    program = scheduler.build(stage_workload)
    simulation = simulate_block(program)
    energy = EnergyModel(stage_platform).from_simulation(simulation)

    block_cycles = simulation.total_cycles
    block_energy = energy.total_joules

    # Inter-stage activation transfer: the S x E activations move once per
    # stage boundary per token.
    act_bytes = workload.query_rows * config.embed_dim * config.act_dtype.size_bytes
    transfer_cycles = platform.link.transfer_cycles(act_bytes, platform.frequency_hz)
    transfer_energy = platform.link.transfer_energy_joules(act_bytes)
    num_boundaries = max(0, num_stages - 1)

    inference_cycles = (
        config.num_layers * block_cycles + num_boundaries * transfer_cycles
    )
    inference_energy = (
        config.num_layers * block_energy + num_boundaries * transfer_energy
    )

    plan = program.memory_plan(0)
    footprint = chip_footprint(
        stage_config, stage_workload, partition_block(stage_config, 1).chips[0]
    )
    plan = plan_memory(platform.chip, footprint)

    return BaselineResult(
        approach="Pipeline parallel (layer split)",
        num_chips=num_chips,
        block_cycles=inference_cycles / config.num_layers,
        block_energy_joules=inference_energy / config.num_layers,
        l3_bytes_per_block=simulation.total_l3_l2_bytes,
        weight_bytes_per_chip=plan.block_weight_bytes * layers_per_stage,
        weights_replicated=False,
        synchronisations_per_block=0,
        uses_pipelining=True,
        notes=(
            f"{layers_per_stage} layer(s) per stage; single-request latency "
            "gains come only from weight residency, not from parallel compute"
        ),
    )
