"""Shared result type for the partitioning-approach comparison (Table I)."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError


@dataclass(frozen=True)
class BaselineResult:
    """Summary of one partitioning approach on one workload and platform.

    The fields are the quantities Table I of the paper compares (weight
    duplication, platform scale) plus the measurable outcomes our ablation
    adds on top (latency, energy, off-chip traffic).

    Attributes:
        approach: Human-readable approach name.
        num_chips: Number of chips used.
        block_cycles: Average latency of one Transformer block in cycles.
        block_energy_joules: Average energy of one Transformer block.
        l3_bytes_per_block: Off-chip traffic per block, summed over chips.
        weight_bytes_per_chip: Block weight bytes each chip must store.
        weights_replicated: Whether weights are duplicated across chips.
        synchronisations_per_block: Inter-chip synchronisation points per
            block (0 for a single chip).
        uses_pipelining: Whether the approach relies on pipeline parallelism
            (and therefore on batching to reach full utilisation).
        notes: Free-form remarks shown in the comparison table.
    """

    approach: str
    num_chips: int
    block_cycles: float
    block_energy_joules: float
    l3_bytes_per_block: float
    weight_bytes_per_chip: int
    weights_replicated: bool
    synchronisations_per_block: int
    uses_pipelining: bool = False
    notes: str = ""

    def __post_init__(self) -> None:
        if self.num_chips <= 0:
            raise AnalysisError("num_chips must be positive")
        if self.block_cycles <= 0:
            raise AnalysisError("block_cycles must be positive")
        if self.block_energy_joules < 0 or self.l3_bytes_per_block < 0:
            raise AnalysisError("energy and traffic cannot be negative")
        if self.weight_bytes_per_chip < 0:
            raise AnalysisError("weight bytes cannot be negative")

    @property
    def energy_delay_product(self) -> float:
        """EDP proxy in joule-cycles (frequency-independent comparison)."""
        return self.block_energy_joules * self.block_cycles

    def speedup_over(self, other: "BaselineResult") -> float:
        """Runtime speedup of this approach over another."""
        return other.block_cycles / self.block_cycles
