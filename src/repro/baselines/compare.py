"""Head-to-head comparison of the partitioning approaches (Table I ablation).

The paper's Table I is a qualitative comparison of prior work; this module
backs it with a quantitative ablation in which every approach runs on the
same Siracusa-like platform, the same workload, and the same cost models,
so the differences come only from the partitioning strategy.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..analysis.tables import format_table
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from ..units import format_bytes, format_energy
from .types import BaselineResult


def compare_approaches(
    workload: Workload, platform: MultiChipPlatform
) -> List[BaselineResult]:
    """Evaluate all approaches on the same workload and platform.

    Legacy shim over :meth:`repro.api.Session.compare`: the ablation runs
    through the strategy registry and is projected back onto the seed's
    :class:`BaselineResult` schema.  Returns the results ordered as:
    single chip, weight-replicated sequence parallelism, pipeline
    parallelism, and the paper's tensor-parallel scheme.
    """
    from ..api.session import Session

    comparison = Session(platform=platform).compare(workload)
    return [result.to_baseline_result() for result in comparison.results]


def comparison_rows(results: Sequence) -> List[List[str]]:
    """Render comparison results as table rows (one per approach).

    Accepts both the legacy :class:`BaselineResult` and the unified
    :class:`repro.api.EvalResult` — the rendered columns exist on both.
    """
    baseline = results[0]
    rows: List[List[str]] = []
    for result in results:
        rows.append(
            [
                result.approach,
                str(result.num_chips),
                "yes" if result.weights_replicated else "no",
                "yes" if result.uses_pipelining else "no",
                str(result.synchronisations_per_block),
                format_bytes(result.weight_bytes_per_chip),
                f"{result.block_cycles:,.0f}",
                f"{result.speedup_over(baseline):.2f}x",
                format_energy(result.block_energy_joules),
                format_bytes(result.l3_bytes_per_block),
            ]
        )
    return rows


def render_comparison(results: Sequence) -> str:
    """Plain-text Table-I-style comparison with measured columns."""
    headers = [
        "Approach",
        "Chips",
        "Weight dup.",
        "Pipelining",
        "Syncs/block",
        "Weights/chip",
        "Cycles/block",
        "Speedup",
        "Energy/block",
        "L3/block",
    ]
    return format_table(headers, comparison_rows(results))


def qualitative_table() -> Dict[str, Dict[str, str]]:
    """The literal content of the paper's Table I (qualitative comparison)."""
    return {
        "DeepThings [20]": {
            "Model": "CNN",
            "Scale": "Low-Power",
            "Platform": "Raspberry Pi",
            "Pipelining": "No",
            "Weight Duplication": "Yes",
        },
        "Efficiently Scaling Transformer Inference [13]": {
            "Model": "Transformer",
            "Scale": "Datacenter",
            "Platform": "TPU",
            "Pipelining": "No",
            "Weight Duplication": "No",
        },
        "DeepSpeed Inference [12]": {
            "Model": "Transformer",
            "Scale": "Datacenter",
            "Platform": "GPU",
            "Pipelining": "Yes",
            "Weight Duplication": "No",
        },
        "When the Edge Meets Transformers [21]": {
            "Model": "Transformer",
            "Scale": "Low-Power",
            "Platform": "CPU",
            "Pipelining": "No",
            "Weight Duplication": "Yes",
        },
        "Hermes [22]": {
            "Model": "Transformer",
            "Scale": "Low-Power",
            "Platform": "CPU",
            "Pipelining": "Yes",
            "Weight Duplication": "No",
        },
        "Ours": {
            "Model": "Transformer",
            "Scale": "Extreme Edge",
            "Platform": "Siracusa (MCU)",
            "Pipelining": "No",
            "Weight Duplication": "No",
        },
    }
