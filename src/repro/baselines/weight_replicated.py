"""Weight-replicated (sequence-parallel) baseline.

This models the approach of prior low-power distributed-Transformer work
such as "When the Edge Meets Transformers" (Table I of the paper): the
sequence dimension is split across chips, so every chip processes a share
of the rows but must hold a **full copy of the block weights**.  Two
consequences follow, and they are exactly what the paper criticises:

* the per-chip weight footprint does not shrink with the chip count, so
  the weights keep living in off-chip memory and the L3 traffic is paid by
  *every* chip;
* the attention needs the keys and values of all rows, so the chips must
  all-gather their freshly-projected K/V slices (and the layer output)
  every block.

In autoregressive mode there is only one query row, so the scheme cannot
spread work at all — all chips except one idle, which the result reflects.
"""

from __future__ import annotations

import math

from ..core.footprint import ChipFootprint, activation_footprint
from ..core.partition import partition_block
from ..core.placement import WeightResidency, plan_memory
from ..graph.transformer import BlockSlice, build_block_operators, full_block_slice
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from ..kernels.library import KernelLibrary
from .types import BaselineResult


def evaluate_weight_replicated(
    workload: Workload, platform: MultiChipPlatform
) -> BaselineResult:
    """Analytically evaluate the weight-replicated sequence-parallel scheme."""
    config = workload.config
    num_chips = platform.num_chips
    library = KernelLibrary(cluster=platform.chip.cluster)

    rows_total = workload.query_rows
    rows_per_chip = max(1, math.ceil(rows_total / num_chips))
    active_chips = min(num_chips, rows_total)

    operators = build_block_operators(
        config,
        query_rows=rows_per_chip,
        kv_rows=rows_per_chip,
        attended_positions=workload.attended_positions,
        slice_=BlockSlice(
            num_heads=config.num_heads,
            ffn_cols=config.ffn_dim,
            holds_norms=True,
            holds_residual=True,
        ),
    )
    cost = library.total_cost(operators.all_operators, name="replicated_block")

    # Memory plan with the FULL block weights on every chip: this is the
    # point of the comparison — replication keeps the weights off-chip.
    single_chip_partition = partition_block(config, 1)
    footprint = ChipFootprint(
        chip_id=0,
        block_weight_bytes=full_block_weight_bytes(config),
        model_weight_bytes=full_block_weight_bytes(config) * config.num_layers,
        kv_cache_bytes=(
            single_chip_partition.chips[0]
            .kv_cache(config, workload)
            .total_bytes
            if workload.uses_kv_cache
            else 0
        ),
        activations=activation_footprint(
            config, workload, single_chip_partition.chips[0]
        ),
    )
    plan = plan_memory(platform.chip, footprint)

    dma = platform.chip.dma
    compute_cycles = cost.compute_cycles
    l2_l1_cycles = dma.l2_l1.transfer_cycles(int(cost.l2_l1_bytes))
    if plan.residency is WeightResidency.STREAMED:
        l3_bytes_per_chip = cost.streamed_weight_bytes
        l3_cycles = dma.l3_l2.transfer_cycles(
            int(l3_bytes_per_chip), max(1, math.ceil(l3_bytes_per_chip / 65536))
        )
        block_cycles = compute_cycles + l3_cycles + l2_l1_cycles
    elif plan.residency is WeightResidency.SINGLE_BUFFERED:
        l3_bytes_per_chip = plan.block_weight_bytes
        l3_cycles = dma.l3_l2.transfer_cycles(
            int(l3_bytes_per_chip), max(1, math.ceil(l3_bytes_per_chip / 65536))
        )
        block_cycles = max(compute_cycles, l2_l1_cycles) + l3_cycles
    else:
        l3_bytes_per_chip = plan.l3_weight_bytes_per_block
        block_cycles = max(compute_cycles, l2_l1_cycles)

    # All-gather of the new K/V rows and of the per-chip output rows: every
    # chip must end up with the full S x E output and the full K/V.
    c2c_bytes_total = 0
    c2c_cycles = 0.0
    if num_chips > 1 and rows_total > 1:
        act = config.act_dtype.size_bytes
        gathered_rows = rows_total - rows_per_chip
        per_chip_received = 3 * gathered_rows * config.embed_dim * act
        c2c_bytes_total = per_chip_received * active_chips
        c2c_cycles = platform.link.transfer_cycles(
            per_chip_received, platform.frequency_hz
        ) + platform.link.latency_cycles * (active_chips - 1)
        block_cycles += c2c_cycles

    # Energy: the paper's equation, with every active chip paying the full
    # replicated L3 traffic.
    cluster = platform.chip.cluster
    compute_energy = (
        active_chips * cluster.power_w * compute_cycles / cluster.frequency_hz
    )
    l2_energy = (
        active_chips
        * cost.l2_l1_bytes
        * platform.chip.l2.access_energy_pj_per_byte
        * 1e-12
    )
    l3_bytes_total = active_chips * l3_bytes_per_chip
    l3_energy = l3_bytes_total * platform.chip.l3.access_energy_pj_per_byte * 1e-12
    c2c_energy = platform.link.transfer_energy_joules(int(c2c_bytes_total))

    return BaselineResult(
        approach="Sequence parallel, replicated weights",
        num_chips=num_chips,
        block_cycles=block_cycles,
        block_energy_joules=compute_energy + l2_energy + l3_energy + c2c_energy,
        l3_bytes_per_block=l3_bytes_total,
        weight_bytes_per_chip=full_block_weight_bytes(config),
        weights_replicated=True,
        synchronisations_per_block=2 if num_chips > 1 else 0,
        uses_pipelining=False,
        notes=(
            "rows split across chips; full weights on every chip; "
            "K/V and outputs all-gathered"
        ),
    )


def full_block_weight_bytes(config) -> int:
    """Weight bytes of one un-partitioned block."""
    from ..graph.transformer import slice_weight_bytes

    return slice_weight_bytes(config, full_block_slice(config))
