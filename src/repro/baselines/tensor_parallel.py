"""The paper's approach, wrapped as a comparable baseline entry."""

from __future__ import annotations

from ..analysis.evaluate import evaluate_block
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from .types import BaselineResult


def evaluate_tensor_parallel(
    workload: Workload, platform: MultiChipPlatform
) -> BaselineResult:
    """Evaluate the paper's tensor-parallel scheme on ``platform``.

    This is a thin adapter over :func:`repro.analysis.evaluate_block` that
    reshapes the result into the comparison-table format, so the ablation
    in Table I compares all approaches through the same simulator and
    energy model.
    """
    report = evaluate_block(workload, platform)
    weight_bytes_per_chip = max(
        plan.block_weight_bytes for plan in report.program.memory_plans.values()
    )
    syncs = 0 if platform.num_chips == 1 else 2
    return BaselineResult(
        approach="Ours (tensor parallel, scattered weights)",
        num_chips=platform.num_chips,
        block_cycles=report.block_cycles,
        block_energy_joules=report.block_energy_joules,
        l3_bytes_per_block=report.total_l3_bytes,
        weight_bytes_per_chip=weight_bytes_per_chip,
        weights_replicated=False,
        synchronisations_per_block=syncs,
        uses_pipelining=False,
        notes="head-split MHSA, F-split FFN, hierarchical all-reduce",
    )
