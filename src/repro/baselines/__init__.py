"""Baseline partitioning approaches used for the Table I ablation."""

from .compare import (
    compare_approaches,
    comparison_rows,
    qualitative_table,
    render_comparison,
)
from .pipeline_parallel import evaluate_pipeline_parallel
from .single_chip import evaluate_single_chip
from .tensor_parallel import evaluate_tensor_parallel
from .types import BaselineResult
from .weight_replicated import evaluate_weight_replicated

__all__ = [
    "BaselineResult",
    "compare_approaches",
    "comparison_rows",
    "evaluate_pipeline_parallel",
    "evaluate_single_chip",
    "evaluate_tensor_parallel",
    "evaluate_weight_replicated",
    "qualitative_table",
    "render_comparison",
]
