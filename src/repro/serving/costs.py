"""Per-request phase costs derived from Session-memoised block evaluations.

The serving simulator advances virtual time in two kinds of steps: a
*prefill* pass over a request's prompt and a single-token *decode* step at
a given KV-cache context length.  Both are full-model costs (all layers)
obtained from the same per-block engine the figures use, via
:meth:`repro.api.Session.run` — so serving numbers are, by construction,
consistent with the paper's steady-state numbers.

Running the engine for every distinct prompt/context length would dominate
the simulation, so lengths are snapped to a geometric grid (piecewise-
constant interpolation, like :func:`repro.analysis.generation` uses for
single replies) and the handful of grid evaluations are memoised three
times over: once here per grid point, once in the session by content
hash (shared across policies, seeds, and repeated ``serve`` calls), and
— when the session carries a persistent cache (:mod:`repro.api.cache`,
the CLI default) — once on disk, so a second serving study in a fresh
process reuses the whole grid without running the engine at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..errors import ConfigurationError
from ..graph.transformer import TransformerConfig
from ..graph.workload import autoregressive, prompt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.session import Session
    from ..hw.platform import MultiChipPlatform

__all__ = ["PhaseCost", "RequestCostModel"]


@dataclass(frozen=True)
class PhaseCost:
    """Wall-clock and energy cost of one service phase (full model)."""

    seconds: float
    energy_joules: float

    def __add__(self, other: "PhaseCost") -> "PhaseCost":
        return PhaseCost(
            seconds=self.seconds + other.seconds,
            energy_joules=self.energy_joules + other.energy_joules,
        )


ZERO_COST = PhaseCost(seconds=0.0, energy_joules=0.0)


class RequestCostModel:
    """Bucketed prefill/decode costs of one model on one platform.

    Args:
        session: The evaluating session (its memoisation is what makes
            repeated serving runs cheap).
        config: The served model.
        chips: Chip count, resolved through the session's platform factory.
        platform: Explicit platform (overrides ``chips``).
        strategy: Registered partitioning strategy evaluating the blocks.
        grid_factor: Ratio between adjacent length-grid points; lengths are
            snapped to the nearest grid point (1.0 < factor; smaller is
            more accurate but runs the engine more often).
        max_context: Hard cap on modelled context lengths (the model's
            serving window); longer requests are rejected at lookup time.
    """

    def __init__(
        self,
        session: "Session",
        config: TransformerConfig,
        *,
        chips: Optional[int] = None,
        platform: Optional["MultiChipPlatform"] = None,
        strategy: Optional[str] = None,
        grid_factor: float = math.sqrt(2.0),
        max_context: int = 1024,
    ) -> None:
        from ..api.strategies import PAPER_STRATEGY

        if grid_factor <= 1.0:
            raise ConfigurationError("grid_factor must be greater than 1")
        if max_context < 2:
            raise ConfigurationError("max_context must be at least 2")
        self.session = session
        self.config = config
        self.platform = session.resolve_platform(chips, platform)
        self.strategy = strategy if strategy is not None else PAPER_STRATEGY
        self.grid_factor = grid_factor
        self.max_context = max_context
        self._buckets: Dict[int, int] = {}
        self._prefill: Dict[int, PhaseCost] = {}
        self._decode: Dict[int, PhaseCost] = {}

    # ------------------------------------------------------------------
    # Length grid
    # ------------------------------------------------------------------
    def bucket(self, tokens: int) -> int:
        """Snap a length to the geometric grid (capped at ``max_context``)."""
        if tokens <= 0:
            raise ConfigurationError("token count must be positive")
        if tokens > self.max_context:
            raise ConfigurationError(
                f"context of {tokens} tokens exceeds the serving window "
                f"({self.max_context}); shorten the trace's lengths or raise "
                "max_context"
            )
        cached = self._buckets.get(tokens)
        if cached is not None:
            return cached
        step = math.log(tokens) / math.log(self.grid_factor)
        snapped = min(
            self.max_context, max(1, round(self.grid_factor ** round(step)))
        )
        self._buckets[tokens] = snapped
        return snapped

    # ------------------------------------------------------------------
    # Phase costs
    # ------------------------------------------------------------------
    def _cost_of(self, workload) -> PhaseCost:
        result = self.session.run(
            workload, self.strategy, platform=self.platform
        )
        return PhaseCost(
            seconds=result.inference_runtime_seconds,
            energy_joules=result.inference_energy_joules,
        )

    def prefill_cost(self, prompt_tokens: int) -> PhaseCost:
        """Full-model cost of the prefill pass over ``prompt_tokens``."""
        bucket = self.bucket(prompt_tokens)
        cached = self._prefill.get(bucket)
        if cached is None:
            cached = self._cost_of(prompt(self.config, bucket))
            self._prefill[bucket] = cached
        return cached

    def decode_cost(self, context_length: int) -> PhaseCost:
        """Full-model cost of one decode step at ``context_length``."""
        bucket = self.bucket(context_length)
        cached = self._decode.get(bucket)
        if cached is None:
            cached = self._cost_of(autoregressive(self.config, bucket))
            self._decode[bucket] = cached
        return cached

    @property
    def evaluations(self) -> int:
        """Distinct engine evaluations performed through this model."""
        return len(self._prefill) + len(self._decode)
