"""Tail-latency, throughput, and SLO analytics of serving simulations.

Aggregates a raw :class:`~repro.serving.simulator.ServingResult` into the
numbers a capacity planner cares about: TTFT/TPOT/end-to-end latency
percentiles, request and token throughput, queue-depth and utilisation
timelines, energy per request, and SLO-attainment curves.  The aggregate
plus its provenance (model, platform, policy, seed) is the
:class:`ServingReport`, whose :meth:`~ServingReport.to_json` form is the
machine-readable output of ``repro serve --json`` — deterministic down to
the byte for equal seeds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from .request import RequestRecord
from .simulator import ServingResult

__all__ = [
    "DEFAULT_SLO_TTFT_TARGETS_S",
    "LatencySummary",
    "ServingMetrics",
    "ServingReport",
    "attainment_curve",
    "percentile",
    "slo_attainment",
    "utilisation_timeline",
]

#: Default TTFT targets (seconds) of the SLO-attainment curve.
DEFAULT_SLO_TTFT_TARGETS_S: Tuple[float, ...] = (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches numpy's default (``linear``) method; implemented locally so the
    serving analytics carry no array dependency.
    """
    if not values:
        raise AnalysisError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise AnalysisError(f"percentile {q} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


@dataclass(frozen=True)
class LatencySummary:
    """Five-number summary of one latency distribution (seconds)."""

    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "LatencySummary":
        """Summarise a non-empty value sequence."""
        return cls(
            mean=sum(values) / len(values),
            p50=percentile(values, 50),
            p95=percentile(values, 95),
            p99=percentile(values, 99),
            max=max(values),
        )

    @classmethod
    def zero(cls) -> "LatencySummary":
        """The all-zero summary (used when a distribution is empty)."""
        return cls(mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0)

    def to_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


# ----------------------------------------------------------------------
# SLOs
# ----------------------------------------------------------------------
def slo_attainment(
    records: Sequence[RequestRecord],
    *,
    ttft_s: Optional[float] = None,
    e2e_s: Optional[float] = None,
) -> float:
    """Fraction of requests meeting every given target (1.0 if no target)."""
    if not records:
        raise AnalysisError("cannot compute SLO attainment of no requests")
    met = 0
    for record in records:
        if ttft_s is not None and record.ttft_s > ttft_s:
            continue
        if e2e_s is not None and record.e2e_s > e2e_s:
            continue
        met += 1
    return met / len(records)


def attainment_curve(
    records: Sequence[RequestRecord],
    targets: Sequence[float] = DEFAULT_SLO_TTFT_TARGETS_S,
) -> Tuple[Tuple[float, float], ...]:
    """TTFT SLO-attainment at each target: ``((target_s, fraction), ...)``."""
    return tuple(
        (target, slo_attainment(records, ttft_s=target)) for target in targets
    )


# ----------------------------------------------------------------------
# Timelines
# ----------------------------------------------------------------------
def utilisation_timeline(
    result: ServingResult, *, bins: int = 20
) -> Tuple[Tuple[float, float], ...]:
    """Windowed engine utilisation: ``((window_end_s, busy_fraction), ...)``."""
    if bins < 1:
        raise AnalysisError("bins must be at least 1")
    if result.makespan_s <= 0:
        return ()
    width = result.makespan_s / bins
    timeline = []
    for index in range(bins):
        window_start = index * width
        window_end = window_start + width
        busy = 0.0
        for start, end in result.busy_intervals:
            overlap = min(end, window_end) - max(start, window_start)
            if overlap > 0:
                busy += overlap
        timeline.append((window_end, busy / width))
    return tuple(timeline)


def _time_weighted_depth(result: ServingResult) -> Tuple[float, int]:
    """(time-weighted mean, peak) of the queue-depth timeline."""
    samples = result.queue_samples
    if not samples or result.makespan_s <= 0:
        return 0.0, 0
    area = 0.0
    for (time_s, depth), (next_time_s, _) in zip(samples, samples[1:]):
        area += depth * (next_time_s - time_s)
    last_time, last_depth = samples[-1]
    area += last_depth * (result.makespan_s - last_time)
    return area / result.makespan_s, max(depth for _, depth in samples)


# ----------------------------------------------------------------------
# The aggregate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServingMetrics:
    """Aggregated analytics of one serving simulation.

    Attributes:
        requests: Completed request count.
        makespan_s: Virtual time of the last completion.
        throughput_rps: Completed requests per virtual second.
        throughput_tps: Generated (output) tokens per virtual second.
        queue_wait: Queueing-delay summary.
        ttft: Time-to-first-token summary.
        tpot: Time-per-output-token summary (over multi-token replies).
        e2e: End-to-end latency summary.
        utilisation: Fraction of the makespan the engine was busy.
        mean_queue_depth: Time-weighted mean of requests in the system.
        peak_queue_depth: Maximum requests simultaneously in the system.
        energy_per_request_joules: Mean energy per request.
        total_energy_joules: Energy over all requests.
        slo_curve: TTFT SLO-attainment curve ``((target_s, fraction), ...)``.
    """

    requests: int
    makespan_s: float
    throughput_rps: float
    throughput_tps: float
    queue_wait: LatencySummary
    ttft: LatencySummary
    tpot: LatencySummary
    e2e: LatencySummary
    utilisation: float
    mean_queue_depth: float
    peak_queue_depth: int
    energy_per_request_joules: float
    total_energy_joules: float
    slo_curve: Tuple[Tuple[float, float], ...]

    @classmethod
    def from_result(
        cls,
        result: ServingResult,
        *,
        slo_targets: Sequence[float] = DEFAULT_SLO_TTFT_TARGETS_S,
    ) -> "ServingMetrics":
        """Aggregate one simulation outcome."""
        records = result.records
        if not records:
            raise AnalysisError("the simulation completed no requests")
        tpot_values = [
            record.tpot_s for record in records if record.request.output_tokens > 1
        ]
        mean_depth, peak_depth = _time_weighted_depth(result)
        total_energy = sum(record.energy_joules for record in records)
        makespan = result.makespan_s
        return cls(
            requests=len(records),
            makespan_s=makespan,
            throughput_rps=len(records) / makespan if makespan > 0 else 0.0,
            throughput_tps=(
                result.generated_tokens / makespan if makespan > 0 else 0.0
            ),
            queue_wait=LatencySummary.of([r.queue_wait_s for r in records]),
            ttft=LatencySummary.of([r.ttft_s for r in records]),
            tpot=(
                LatencySummary.of(tpot_values)
                if tpot_values
                else LatencySummary.zero()
            ),
            e2e=LatencySummary.of([r.e2e_s for r in records]),
            utilisation=result.utilisation,
            mean_queue_depth=mean_depth,
            peak_queue_depth=peak_depth,
            energy_per_request_joules=total_energy / len(records),
            total_energy_joules=total_energy,
            slo_curve=attainment_curve(records, slo_targets),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {
            "requests": self.requests,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "throughput_tps": self.throughput_tps,
            "queue_wait_s": self.queue_wait.to_dict(),
            "ttft_s": self.ttft.to_dict(),
            "tpot_s": self.tpot.to_dict(),
            "e2e_s": self.e2e.to_dict(),
            "utilisation": self.utilisation,
            "mean_queue_depth": self.mean_queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "energy_per_request_joules": self.energy_per_request_joules,
            "total_energy_joules": self.total_energy_joules,
            "slo_curve": [
                {"ttft_target_s": target, "attainment": fraction}
                for target, fraction in self.slo_curve
            ],
        }


@dataclass(frozen=True)
class ServingReport:
    """A serving simulation plus its provenance — the ``serve`` deliverable.

    Attributes:
        model: Name of the served model configuration.
        num_chips: Chip count of the platform.
        strategy: Partitioning strategy that produced the phase costs.
        policy: Scheduling policy that ran.
        seed: Trace seed.
        result: The raw simulation outcome.
        metrics: The aggregated analytics.
    """

    model: str
    num_chips: int
    strategy: str
    policy: str
    seed: int
    result: ServingResult
    metrics: ServingMetrics

    def to_dict(
        self, *, include_records: bool = True, cache=None
    ) -> Dict[str, Any]:
        """JSON-serialisable form (the ``repro serve --json`` document).

        Pass the evaluating session's
        :meth:`~repro.api.Session.cache_info` as ``cache`` to make the
        phase-cost memoisation reuse observable in the output.
        """
        document: Dict[str, Any] = {
            "model": self.model,
            "num_chips": self.num_chips,
            "strategy": self.strategy,
            "policy": self.policy,
            "seed": self.seed,
            "metrics": self.metrics.to_dict(),
        }
        if cache is not None:
            document["cache"] = cache.to_dict()
        if include_records:
            ordered = sorted(
                self.result.records, key=lambda r: r.request.request_id
            )
            document["records"] = [record.to_dict() for record in ordered]
        return document

    def to_json(
        self, *, indent: int = 2, include_records: bool = True, cache=None
    ) -> str:
        """Deterministic JSON document (sorted keys, stable float reprs)."""
        return json.dumps(
            self.to_dict(include_records=include_records, cache=cache),
            indent=indent,
            sort_keys=True,
        )

    def render(self) -> str:
        """Plain-text summary of the headline serving numbers."""
        metrics = self.metrics
        lines: List[str] = [
            (
                f"Served {metrics.requests} requests of {self.model} on "
                f"{self.num_chips} chip(s) "
                f"[strategy={self.strategy}, policy={self.policy}, "
                f"seed={self.seed}]"
            ),
            (
                f"  makespan    : {metrics.makespan_s:.2f} s  "
                f"(utilisation {metrics.utilisation * 100:.1f}%)"
            ),
            (
                f"  throughput  : {metrics.throughput_rps:.3f} req/s, "
                f"{metrics.throughput_tps:.2f} tok/s"
            ),
            _latency_line("queue wait", metrics.queue_wait),
            _latency_line("TTFT", metrics.ttft),
            _latency_line("TPOT", metrics.tpot),
            _latency_line("e2e", metrics.e2e),
            (
                f"  queue depth : mean {metrics.mean_queue_depth:.2f}, "
                f"peak {metrics.peak_queue_depth}"
            ),
            (
                f"  energy      : "
                f"{metrics.energy_per_request_joules * 1e3:.3f} mJ/request "
                f"({metrics.total_energy_joules:.3f} J total)"
            ),
            "  SLO (TTFT)  : "
            + ", ".join(
                f"<{target:g}s: {fraction * 100:.1f}%"
                for target, fraction in metrics.slo_curve
            ),
        ]
        return "\n".join(lines)


def _latency_line(label: str, summary: LatencySummary) -> str:
    return (
        f"  {label:<11} : p50 {summary.p50 * 1e3:.1f} ms, "
        f"p95 {summary.p95 * 1e3:.1f} ms, p99 {summary.p99 * 1e3:.1f} ms, "
        f"max {summary.max * 1e3:.1f} ms"
    )
