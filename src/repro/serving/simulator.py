"""Discrete-event, request-level serving simulator.

:class:`ServingSimulator` advances virtual time over a request stream:
requests arrive (open loop) or are issued by thinking clients (closed
loop), wait in the queue, and are served by the multi-chip platform, which
the simulator models as one serial engine whose phase costs come from the
Session-memoised :class:`~repro.serving.costs.RequestCostModel` — no block
is ever re-simulated per token.

The engine is non-preemptive within a *service grant*: at every decision
point the scheduling policy picks a request, and the simulator runs either
its prefill pass or up to ``policy.decode_quantum`` decode steps (all
remaining steps when the quantum is ``None``) before the next decision.
Arrivals during a grant are admitted with their true timestamps, so queue
waits and queue-depth timelines are exact.

Everything is deterministic: traces are seeded, costs are analytical, and
policies tie-break on request ids, so two runs with equal inputs produce
identical :class:`ServingResult` objects.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..errors import SimulationError
from .costs import RequestCostModel
from .policies import SchedulingPolicy, get_policy
from .request import ActiveRequest, RequestPhase, RequestRecord
from .traces import RequestSource

__all__ = ["ServingResult", "ServingSimulator"]


@dataclass(frozen=True)
class ServingResult:
    """Raw outcome of one serving simulation (before metric aggregation).

    Attributes:
        policy: Canonical name of the scheduling policy that ran.
        records: One :class:`RequestRecord` per request, in completion
            order (every admitted request is drained).
        makespan_s: Virtual time at which the last request finished.
        busy_s: Total virtual time the engine spent serving.
        queue_samples: ``(time, in-system count)`` at every admission and
            completion — the queue-depth timeline.
        busy_intervals: Merged ``(start, end)`` intervals of engine
            activity — the utilisation timeline.
    """

    policy: str
    records: Tuple[RequestRecord, ...]
    makespan_s: float
    busy_s: float
    queue_samples: Tuple[Tuple[float, int], ...]
    busy_intervals: Tuple[Tuple[float, float], ...]

    @property
    def num_requests(self) -> int:
        """Number of completed requests."""
        return len(self.records)

    @property
    def utilisation(self) -> float:
        """Fraction of the makespan the engine spent serving."""
        if self.makespan_s <= 0:
            return 0.0
        return self.busy_s / self.makespan_s

    @property
    def generated_tokens(self) -> int:
        """Output tokens emitted across all requests."""
        return sum(record.request.output_tokens for record in self.records)

    @property
    def prompt_tokens(self) -> int:
        """Prompt tokens ingested across all requests."""
        return sum(record.request.prompt_tokens for record in self.records)


class ServingSimulator:
    """Serves a request stream with one policy on one cost model.

    Args:
        costs: Phase-cost model (any object with ``prefill_cost`` /
            ``decode_cost``; normally a :class:`RequestCostModel`).
        policy: Registered policy name (or a policy instance).
    """

    def __init__(
        self,
        costs: RequestCostModel,
        policy: Union[str, SchedulingPolicy] = "fifo",
    ) -> None:
        self.costs = costs
        self.policy = get_policy(policy) if isinstance(policy, str) else policy

    def run(self, source: RequestSource) -> ServingResult:
        """Drain the request stream and return the per-request records."""
        arrivals: List[Tuple[float, int, object]] = [
            (request.arrival_s, request.request_id, request)
            for request in source.initial
        ]
        heapq.heapify(arrivals)

        active: Dict[int, ActiveRequest] = {}
        records: List[RequestRecord] = []
        queue_samples: List[Tuple[float, int]] = []
        busy_intervals: List[Tuple[float, float]] = []
        now = 0.0
        busy_s = 0.0

        def admit_until(time_s: float) -> None:
            """Admit every arrival with ``arrival_s <= time_s``."""
            while arrivals and arrivals[0][0] <= time_s:
                _, _, request = heapq.heappop(arrivals)
                if request.request_id in active:
                    raise SimulationError(
                        f"duplicate request id {request.request_id} admitted"
                    )
                active[request.request_id] = ActiveRequest(request=request)
                queue_samples.append((request.arrival_s, len(active)))

        while True:
            admit_until(now)
            if not active:
                if not arrivals:
                    break
                now = max(now, arrivals[0][0])
                continue

            ready = [active[request_id] for request_id in sorted(active)]
            chosen = self.policy.select(ready, now)
            if chosen.request.request_id not in active:
                raise SimulationError(
                    f"policy {self.policy.name!r} selected a request that is "
                    "not in the ready set"
                )

            grant = self._serve(chosen, now)
            busy_s += grant
            if busy_intervals and busy_intervals[-1][1] == now:
                busy_intervals[-1] = (busy_intervals[-1][0], now + grant)
            else:
                busy_intervals.append((now, now + grant))
            now += grant
            # Admit arrivals that landed during the grant before recording
            # the completion, so the queue-depth timeline stays in time
            # order and counts the in-service request at those instants.
            admit_until(now)

            if chosen.is_done:
                chosen.phase = RequestPhase.DONE
                record = chosen.finish(now)
                del active[chosen.request.request_id]
                records.append(record)
                queue_samples.append((now, len(active)))
                successor = source.follow_up(record)
                if successor is not None:
                    if successor.arrival_s < now:
                        raise SimulationError(
                            "closed-loop follow-up arrives before the reply "
                            "it reacts to"
                        )
                    heapq.heappush(
                        arrivals,
                        (successor.arrival_s, successor.request_id, successor),
                    )

        return ServingResult(
            policy=self.policy.name,
            records=tuple(records),
            makespan_s=now,
            busy_s=busy_s,
            queue_samples=tuple(queue_samples),
            busy_intervals=tuple(busy_intervals),
        )

    # ------------------------------------------------------------------
    # One service grant
    # ------------------------------------------------------------------
    def _serve(self, chosen: ActiveRequest, now: float) -> float:
        """Advance ``chosen`` by one grant; returns the grant's duration."""
        request = chosen.request
        if not chosen.prefill_done:
            cost = self.costs.prefill_cost(request.prompt_tokens)
            if chosen.first_scheduled_s is None:
                chosen.first_scheduled_s = now
            chosen.phase = RequestPhase.PREFILL
            chosen.first_token_s = now + cost.seconds
            chosen.tokens_emitted = 1
            chosen.energy_joules += cost.energy_joules
            chosen.phase = RequestPhase.DECODE
            return cost.seconds

        quantum = self.policy.decode_quantum
        remaining = chosen.remaining_tokens
        steps = remaining if quantum is None else min(quantum, remaining)
        if steps <= 0:
            raise SimulationError(
                f"policy {self.policy.name!r} selected the finished request "
                f"{request.request_id}"
            )
        seconds = 0.0
        energy = 0.0
        for step in range(steps):
            # The k-th decode step of the reply attends to the prompt plus
            # the tokens emitted so far (matching analysis/generation.py).
            context = request.prompt_tokens + chosen.tokens_emitted + step
            cost = self.costs.decode_cost(context)
            seconds += cost.seconds
            energy += cost.energy_joules
        chosen.tokens_emitted += steps
        chosen.energy_joules += energy
        return seconds
