"""Pluggable scheduling policies and their registry.

A *scheduling policy* decides, at every decision point of the serving
simulator, which admitted request the engine advances next.  Policies
register themselves by name with :func:`register_policy` — mirroring the
partitioning-strategy registry of :mod:`repro.api` — so a new queueing idea
becomes available to ``Session.serve`` and the ``repro serve`` CLI by
writing one small class::

    from repro.serving import register_policy

    @register_policy
    class DeadlinePolicy:
        name = "deadline"
        label = "Earliest deadline first"
        decode_quantum = None

        def select(self, ready, now_s):
            return min(ready, key=lambda a: a.request.arrival_s + 2.0)

The engine is non-preemptive *within a service grant*; the grant size is
the policy's choice.  ``decode_quantum = None`` runs a selected request's
remaining phase to completion (classic run-to-completion queueing), while a
small integer time-slices decode between requests, which is how the
continuous-batching-style interleaver keeps new arrivals' prefills from
waiting behind long replies.

Every shipped policy breaks ties by ``request_id``, which (together with
seeded traces) is what makes simulations bit-reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, runtime_checkable

from ..errors import ConfigurationError, UnknownPolicyError
from .request import ActiveRequest

__all__ = [
    "ContinuousBatchingPolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "SchedulingPolicy",
    "ShortestPromptPolicy",
    "get_policy",
    "list_policies",
    "register_policy",
    "unregister_policy",
]


@runtime_checkable
class SchedulingPolicy(Protocol):
    """What the registry requires of a scheduling policy.

    Attributes:
        name: Registry key (lowercase snake_case by convention).
        label: Human-readable description shown by the CLI.
        decode_quantum: Decode tokens granted per selection; ``None`` runs
            the selected request's remaining phase to completion.
    """

    name: str
    label: str
    decode_quantum: Optional[int]

    def select(
        self, ready: Sequence[ActiveRequest], now_s: float
    ) -> ActiveRequest:
        """Pick the request the engine serves next.

        Args:
            ready: Admitted, unfinished requests in ``request_id`` order
                (never empty).  Entries must not be mutated.
            now_s: Current virtual time.
        """
        ...


_POLICIES: Dict[str, SchedulingPolicy] = {}
_ALIASES: Dict[str, str] = {}


def register_policy(policy):
    """Class decorator (or direct call) registering a scheduling policy.

    Accepts either a policy *class* (instantiated with no arguments) or a
    ready-made instance; the policy is registered under its ``name`` plus
    any names in an optional ``aliases`` attribute.  Returns the argument
    unchanged so it can be used as a decorator.

    Raises:
        ConfigurationError: If the name is missing, already taken, or the
            object does not implement :class:`SchedulingPolicy`.
    """
    instance = policy() if isinstance(policy, type) else policy
    name = getattr(instance, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            "a policy must define a non-empty string `name` attribute"
        )
    if not isinstance(instance, SchedulingPolicy):
        raise ConfigurationError(
            f"policy {name!r} does not implement the SchedulingPolicy "
            "protocol (name, label, decode_quantum, select)"
        )
    quantum = instance.decode_quantum
    if quantum is not None and quantum < 1:
        raise ConfigurationError(
            f"policy {name!r} has invalid decode_quantum {quantum!r}"
        )
    for key in (name, *getattr(instance, "aliases", ())):
        if key in _POLICIES or key in _ALIASES:
            raise ConfigurationError(f"policy name {key!r} already registered")
    _POLICIES[name] = instance
    for alias in getattr(instance, "aliases", ()):
        _ALIASES[alias] = name
    return policy


def unregister_policy(name: str) -> None:
    """Remove a policy (and its aliases) from the registry."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _POLICIES:
        raise UnknownPolicyError(_unknown_message(name))
    instance = _POLICIES.pop(canonical)
    for alias in getattr(instance, "aliases", ()):
        _ALIASES.pop(alias, None)


def get_policy(name: str) -> SchedulingPolicy:
    """Look up a registered policy by name or alias.

    Raises:
        UnknownPolicyError: If no policy is registered under ``name``; the
            message lists the available names.
    """
    canonical = _ALIASES.get(name, name)
    try:
        return _POLICIES[canonical]
    except KeyError:
        raise UnknownPolicyError(_unknown_message(name)) from None


def list_policies() -> List[str]:
    """Sorted canonical names of all registered policies."""
    return sorted(_POLICIES)


def _unknown_message(name: str) -> str:
    known = ", ".join(list_policies()) or "<none>"
    return f"unknown scheduling policy {name!r}; registered: {known}"


# ----------------------------------------------------------------------
# Shipped policies
# ----------------------------------------------------------------------
@register_policy
class FifoPolicy:
    """First-come first-served, run to completion.

    The earliest-arrived admitted request always wins, so once a request
    starts it finishes before any later arrival is touched — the baseline
    every other policy is compared against.
    """

    name = "fifo"
    aliases = ("fcfs",)
    label = "First-come first-served, run-to-completion"
    decode_quantum: Optional[int] = None

    def select(
        self, ready: Sequence[ActiveRequest], now_s: float
    ) -> ActiveRequest:
        return min(
            ready, key=lambda a: (a.request.arrival_s, a.request.request_id)
        )


@register_policy
class ShortestPromptPolicy:
    """Shortest prompt first (a shortest-job-first proxy).

    Prefill cost grows with prompt length, so favouring short prompts at
    every decision point cuts the queueing delay of the many short requests
    at the expense of the few long ones — the textbook SJF trade, which
    lowers p95 TTFT under overload but can starve long prompts.
    """

    name = "shortest_prompt"
    aliases = ("spf", "sjf")
    label = "Shortest prompt first (SJF on prefill cost)"
    decode_quantum: Optional[int] = None

    def select(
        self, ready: Sequence[ActiveRequest], now_s: float
    ) -> ActiveRequest:
        return min(
            ready,
            key=lambda a: (
                a.request.prompt_tokens,
                a.request.arrival_s,
                a.request.request_id,
            ),
        )


@register_policy
class PriorityPolicy:
    """Strict priority classes, FIFO within a class.

    Larger :attr:`~repro.serving.request.Request.priority` values win;
    requests of equal priority are served in arrival order.
    """

    name = "priority"
    label = "Strict priority (larger wins), FIFO within a class"
    decode_quantum: Optional[int] = None

    def select(
        self, ready: Sequence[ActiveRequest], now_s: float
    ) -> ActiveRequest:
        return min(
            ready,
            key=lambda a: (
                -a.request.priority,
                a.request.arrival_s,
                a.request.request_id,
            ),
        )


@register_policy
class ContinuousBatchingPolicy:
    """Continuous-batching-style interleaver.

    Mimics the scheduling behaviour of continuous batching on a serial
    engine: pending prefills are admitted immediately (earliest arrival
    first), and decode is time-sliced one token at a time round-robin
    across the started requests (fewest tokens emitted first).  New
    arrivals therefore reach their first token quickly instead of waiting
    behind whole replies, at the cost of longer per-request decode spans.
    """

    name = "continuous"
    aliases = ("interleave",)
    label = "Continuous-batching interleaver (prefill first, token-sliced decode)"
    decode_quantum: Optional[int] = 1

    def select(
        self, ready: Sequence[ActiveRequest], now_s: float
    ) -> ActiveRequest:
        pending = [a for a in ready if not a.prefill_done]
        if pending:
            return min(
                pending, key=lambda a: (a.request.arrival_s, a.request.request_id)
            )
        return min(
            ready,
            key=lambda a: (
                a.tokens_emitted,
                a.request.arrival_s,
                a.request.request_id,
            ),
        )
