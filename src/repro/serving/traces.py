"""Seeded synthetic traffic generators and trace replay.

A *trace* is a declarative, frozen description of a traffic pattern —
arrival process plus prompt/reply length distributions — that materialises
into a concrete request stream only when :meth:`~TrafficTrace.build` is
called with a seed.  The same trace object therefore drives any number of
simulations, and two builds with the same seed are identical request for
request, which is what makes ``repro serve`` byte-reproducible.

Four generators ship with the library:

* :class:`PoissonTrace` — memoryless open-loop arrivals at a fixed rate;
* :class:`BurstyTrace` — a two-state Markov-modulated Poisson process
  (MMPP-2) alternating between a base and a burst rate;
* :class:`ClosedLoopTrace` — a fixed population of clients, each thinking
  after a reply before submitting its next request (arrivals depend on
  completions, so the source issues follow-up requests to the simulator);
* :class:`ReplayTrace` — verbatim replay of a recorded request list,
  loadable from the JSON written by :func:`save_trace`.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..errors import ConfigurationError
from .request import Request, RequestRecord

__all__ = [
    "BurstyTrace",
    "ClosedLoopTrace",
    "LengthModel",
    "PoissonTrace",
    "ReplayTrace",
    "RequestSource",
    "TrafficTrace",
    "load_trace",
    "save_trace",
]


# ----------------------------------------------------------------------
# Length distributions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LengthModel:
    """Log-normal prompt/reply length distributions with hard bounds.

    LLM serving traces have heavy-tailed lengths; a bounded log-normal
    captures that with two parameters per side.  ``sigma`` is the shape of
    the underlying normal (0 degenerates to the mean).

    Attributes:
        prompt_mean: Mean prompt length in tokens.
        output_mean: Mean reply length in tokens.
        sigma: Log-normal shape parameter shared by both sides.
        prompt_min / prompt_max: Clamp bounds of sampled prompt lengths.
        output_min / output_max: Clamp bounds of sampled reply lengths.
    """

    prompt_mean: float = 64.0
    output_mean: float = 32.0
    sigma: float = 0.5
    prompt_min: int = 1
    prompt_max: int = 256
    output_min: int = 1
    output_max: int = 128

    def __post_init__(self) -> None:
        if self.prompt_mean <= 0 or self.output_mean <= 0:
            raise ConfigurationError("mean lengths must be positive")
        if self.sigma < 0:
            raise ConfigurationError("sigma must be non-negative")
        if not (1 <= self.prompt_min <= self.prompt_max):
            raise ConfigurationError("need 1 <= prompt_min <= prompt_max")
        if not (1 <= self.output_min <= self.output_max):
            raise ConfigurationError("need 1 <= output_min <= output_max")
        if not self.prompt_min <= self.prompt_mean <= self.prompt_max:
            raise ConfigurationError(
                f"prompt_mean {self.prompt_mean:g} outside "
                f"[{self.prompt_min}, {self.prompt_max}]; clamping would "
                "silently distort the workload — widen the bounds instead"
            )
        if not self.output_min <= self.output_mean <= self.output_max:
            raise ConfigurationError(
                f"output_mean {self.output_mean:g} outside "
                f"[{self.output_min}, {self.output_max}]; clamping would "
                "silently distort the workload — widen the bounds instead"
            )

    def _sample(self, rng: random.Random, mean: float, lo: int, hi: int) -> int:
        if self.sigma == 0:
            value = mean
        else:
            mu = math.log(mean) - self.sigma**2 / 2.0
            value = rng.lognormvariate(mu, self.sigma)
        return max(lo, min(hi, round(value)))

    def sample_prompt(self, rng: random.Random) -> int:
        """Draw one prompt length."""
        return self._sample(rng, self.prompt_mean, self.prompt_min, self.prompt_max)

    def sample_output(self, rng: random.Random) -> int:
        """Draw one reply length."""
        return self._sample(rng, self.output_mean, self.output_min, self.output_max)

    @property
    def max_context(self) -> int:
        """Largest KV-cache occupancy any sampled request can reach."""
        return self.prompt_max + self.output_max


# ----------------------------------------------------------------------
# The materialised request stream
# ----------------------------------------------------------------------
class RequestSource:
    """A materialised request stream the simulator consumes.

    Open-loop traces put every request in :attr:`initial`; closed-loop
    traces additionally issue follow-up requests when a client's previous
    reply completes (the simulator calls :meth:`follow_up` once per
    completed record).
    """

    def __init__(
        self,
        initial: Iterable[Request],
        follow_up: Optional[Callable[[RequestRecord], Optional[Request]]] = None,
    ) -> None:
        self.initial: Tuple[Request, ...] = tuple(
            sorted(initial, key=lambda r: (r.arrival_s, r.request_id))
        )
        seen = {request.request_id for request in self.initial}
        if len(seen) != len(self.initial):
            raise ConfigurationError("trace contains duplicate request ids")
        self._follow_up = follow_up

    def follow_up(self, record: RequestRecord) -> Optional[Request]:
        """The completed request's successor, if the trace is closed-loop."""
        if self._follow_up is None:
            return None
        return self._follow_up(record)


@runtime_checkable
class TrafficTrace(Protocol):
    """What the simulator requires of a traffic description."""

    def build(self, seed: int) -> RequestSource:
        """Materialise the request stream deterministically from ``seed``."""
        ...


def _rng(kind: str, seed: int) -> random.Random:
    """A named, decorrelated random stream (one per trace kind / client)."""
    return random.Random(f"repro.serving:{kind}:{seed}")


def _make_request(
    request_id: int,
    arrival_s: float,
    lengths: LengthModel,
    rng: random.Random,
    priority_levels: int,
    client_id: Optional[int] = None,
) -> Request:
    priority = rng.randrange(priority_levels) if priority_levels > 1 else 0
    return Request(
        request_id=request_id,
        arrival_s=arrival_s,
        prompt_tokens=lengths.sample_prompt(rng),
        output_tokens=lengths.sample_output(rng),
        priority=priority,
        client_id=client_id,
    )


# ----------------------------------------------------------------------
# Open-loop generators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PoissonTrace:
    """Open-loop Poisson arrivals at a fixed rate.

    Attributes:
        rate_rps: Mean arrival rate in requests per second.
        duration_s: Arrival horizon; requests arrive in ``[0, duration_s)``
            (the simulator still drains every admitted request).
        lengths: Prompt/reply length distributions.
        priority_levels: Number of uniform priority classes (1 = no
            priorities).
    """

    rate_rps: float
    duration_s: float
    lengths: LengthModel = field(default_factory=LengthModel)
    priority_levels: int = 1

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ConfigurationError("rate_rps must be positive")
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.priority_levels < 1:
            raise ConfigurationError("priority_levels must be at least 1")

    def build(self, seed: int) -> RequestSource:
        rng = _rng("poisson", seed)
        requests: List[Request] = []
        now = rng.expovariate(self.rate_rps)
        while now < self.duration_s:
            requests.append(
                _make_request(
                    len(requests), now, self.lengths, rng, self.priority_levels
                )
            )
            now += rng.expovariate(self.rate_rps)
        return RequestSource(requests)


@dataclass(frozen=True)
class BurstyTrace:
    """Two-state Markov-modulated Poisson arrivals (base / burst).

    The process alternates between a base state and a burst state with
    exponentially distributed dwell times; within a state, arrivals are
    Poisson at that state's rate.  This is the classic MMPP-2 model of
    flash-crowd traffic.

    Attributes:
        base_rate_rps: Arrival rate in the base state.
        burst_rate_rps: Arrival rate in the burst state.
        duration_s: Arrival horizon.
        mean_base_s: Mean dwell time of the base state.
        mean_burst_s: Mean dwell time of the burst state.
        lengths: Prompt/reply length distributions.
        priority_levels: Number of uniform priority classes.
    """

    base_rate_rps: float
    burst_rate_rps: float
    duration_s: float
    mean_base_s: float = 20.0
    mean_burst_s: float = 5.0
    lengths: LengthModel = field(default_factory=LengthModel)
    priority_levels: int = 1

    def __post_init__(self) -> None:
        if self.base_rate_rps <= 0 or self.burst_rate_rps <= 0:
            raise ConfigurationError("arrival rates must be positive")
        if self.burst_rate_rps < self.base_rate_rps:
            raise ConfigurationError("burst_rate_rps must be >= base_rate_rps")
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.mean_base_s <= 0 or self.mean_burst_s <= 0:
            raise ConfigurationError("state dwell times must be positive")
        if self.priority_levels < 1:
            raise ConfigurationError("priority_levels must be at least 1")

    def build(self, seed: int) -> RequestSource:
        rng = _rng("bursty", seed)
        requests: List[Request] = []
        now = 0.0
        in_burst = False
        state_end = rng.expovariate(1.0 / self.mean_base_s)
        while now < self.duration_s:
            rate = self.burst_rate_rps if in_burst else self.base_rate_rps
            candidate = now + rng.expovariate(rate)
            if candidate >= state_end:
                # The exponential is memoryless, so jumping to the state
                # boundary and redrawing is statistically exact.
                now = state_end
                in_burst = not in_burst
                dwell = self.mean_burst_s if in_burst else self.mean_base_s
                state_end = now + rng.expovariate(1.0 / dwell)
                continue
            now = candidate
            if now >= self.duration_s:
                break
            requests.append(
                _make_request(
                    len(requests), now, self.lengths, rng, self.priority_levels
                )
            )
        return RequestSource(requests)


# ----------------------------------------------------------------------
# Closed-loop generator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClosedLoopTrace:
    """A fixed client population with think times between requests.

    Each of ``clients`` users submits ``requests_per_client`` requests in
    sequence: after receiving the last token of a reply, the client
    "thinks" for an exponentially distributed time and then submits the
    next request.  Arrivals therefore adapt to system load (the defining
    property of a closed loop), which the source expresses by issuing
    follow-up requests as the simulator completes records.

    Attributes:
        clients: Number of concurrent clients.
        requests_per_client: Requests each client submits in total.
        mean_think_s: Mean think time between a reply and the next request.
        lengths: Prompt/reply length distributions.
        priority_levels: Number of uniform priority classes.
    """

    clients: int
    requests_per_client: int
    mean_think_s: float = 1.0
    lengths: LengthModel = field(default_factory=LengthModel)
    priority_levels: int = 1

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigurationError("clients must be at least 1")
        if self.requests_per_client < 1:
            raise ConfigurationError("requests_per_client must be at least 1")
        if self.mean_think_s <= 0:
            raise ConfigurationError("mean_think_s must be positive")
        if self.priority_levels < 1:
            raise ConfigurationError("priority_levels must be at least 1")

    def build(self, seed: int) -> RequestSource:
        # One decorrelated stream per client keeps a client's behaviour
        # independent of how other clients' completions interleave.
        rngs = [_rng(f"closed:{client}", seed) for client in range(self.clients)]
        issued = [1] * self.clients
        next_id = [self.clients]  # mutable counter shared with the closure

        initial = [
            _make_request(
                client,
                rngs[client].expovariate(1.0 / self.mean_think_s),
                self.lengths,
                rngs[client],
                self.priority_levels,
                client_id=client,
            )
            for client in range(self.clients)
        ]

        def follow_up(record: RequestRecord) -> Optional[Request]:
            client = record.request.client_id
            if client is None or issued[client] >= self.requests_per_client:
                return None
            issued[client] += 1
            rng = rngs[client]
            arrival = record.finish_s + rng.expovariate(1.0 / self.mean_think_s)
            request = _make_request(
                next_id[0],
                arrival,
                self.lengths,
                rng,
                self.priority_levels,
                client_id=client,
            )
            next_id[0] += 1
            return request

        return RequestSource(initial, follow_up)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayTrace:
    """Verbatim replay of a recorded request list (seed is ignored)."""

    requests: Tuple[Request, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ConfigurationError("a replay trace needs at least one request")

    def build(self, seed: int) -> RequestSource:  # noqa: ARG002 - protocol
        return RequestSource(self.requests)


def trace_to_dict(requests: Sequence[Request]) -> Dict[str, object]:
    """The JSON document schema of a recorded trace."""
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
    return {"requests": [request.to_dict() for request in ordered]}


def save_trace(requests: Sequence[Request], path: str) -> None:
    """Write a request list as a replayable JSON trace."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace_to_dict(requests), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_trace(path: str) -> ReplayTrace:
    """Load a :class:`ReplayTrace` from a JSON trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    records = document.get("requests")
    if not isinstance(records, list) or not records:
        raise ConfigurationError(
            f"{path!r} is not a trace file (expected a non-empty 'requests' list)"
        )
    return ReplayTrace(tuple(Request.from_dict(record) for record in records))
