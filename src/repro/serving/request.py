"""Request lifecycle types of the serving simulator.

A serving workload is a stream of :class:`Request` objects (one user query
each: arrival time, prompt length, reply length, priority).  While a request
is in the system the simulator tracks it as a mutable :class:`ActiveRequest`
— the view scheduling policies see — and once its last token is emitted it
is frozen into an immutable :class:`RequestRecord` carrying the full
timeline, from which every latency metric (TTFT, TPOT, end-to-end) derives.

The token accounting follows serving practice: the prefill pass emits the
*first* output token, and each subsequent token costs one autoregressive
decode step at a growing context length, so a request with ``output_tokens``
tokens performs ``output_tokens - 1`` decode steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Optional

from ..errors import ConfigurationError, SimulationError


class RequestPhase(Enum):
    """Where a request currently is in its lifecycle."""

    QUEUED = "queued"
    PREFILL = "prefill"
    DECODE = "decode"
    DONE = "done"
    #: Terminal failure states of the fault-injected fleet engine: the
    #: request's replica crashed and the retry budget ran out, or the
    #: request never entered service before its deadline.
    FAILED = "failed"
    TIMED_OUT = "timed_out"


@dataclass(frozen=True)
class Request:
    """One user query submitted to the serving system.

    Attributes:
        request_id: Unique id, also the deterministic tie-breaker everywhere.
        arrival_s: Submission time in virtual seconds.
        prompt_tokens: Prompt length processed by the prefill pass.
        output_tokens: Total reply length (the prefill emits the first
            token, so ``output_tokens - 1`` decode steps follow).
        priority: Scheduling priority; larger values are more urgent
            (only the ``priority`` policy looks at it).
        client_id: Issuing client for closed-loop traces, else ``None``.
    """

    request_id: int
    arrival_s: float
    prompt_tokens: int
    output_tokens: int
    priority: int = 0
    client_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise ConfigurationError("request_id must be non-negative")
        if self.arrival_s < 0:
            raise ConfigurationError("arrival_s must be non-negative")
        if self.prompt_tokens <= 0:
            raise ConfigurationError("prompt_tokens must be positive")
        if self.output_tokens <= 0:
            raise ConfigurationError("output_tokens must be positive")

    @property
    def total_tokens(self) -> int:
        """Prompt plus reply tokens (the final KV-cache occupancy)."""
        return self.prompt_tokens + self.output_tokens

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the trace-replay schema)."""
        return {
            "request_id": self.request_id,
            "arrival_s": self.arrival_s,
            "prompt_tokens": self.prompt_tokens,
            "output_tokens": self.output_tokens,
            "priority": self.priority,
            "client_id": self.client_id,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Request":
        """Rebuild a request from its :meth:`to_dict` form."""
        return cls(
            request_id=int(record["request_id"]),
            arrival_s=float(record["arrival_s"]),
            prompt_tokens=int(record["prompt_tokens"]),
            output_tokens=int(record["output_tokens"]),
            priority=int(record.get("priority", 0)),
            client_id=record.get("client_id"),
        )


@dataclass
class ActiveRequest:
    """Mutable in-flight state of one admitted request.

    This is the read-only view handed to scheduling policies: a policy may
    inspect any field to rank requests but must not mutate them (the
    simulator owns the state transitions).

    Attributes:
        request: The immutable submitted request.
        phase: Current lifecycle phase.
        first_scheduled_s: When the engine first picked the request up
            (prefill start), ``None`` while still queued.
        first_token_s: When the prefill pass completed and emitted the
            first token, ``None`` until then.
        tokens_emitted: Output tokens produced so far.
        energy_joules: Energy charged to this request so far.
        attempt: Which dispatch this copy is (0 first try; a crash
            failover re-dispatches a fresh copy with ``attempt`` + 1).
        deadline_s: Virtual time by which the request must enter service
            under a retry policy's (or its class's) timeout, else
            ``None``.
        hedged: Whether this copy is the hedged second dispatch.
    """

    request: Request
    phase: RequestPhase = RequestPhase.QUEUED
    first_scheduled_s: Optional[float] = None
    first_token_s: Optional[float] = None
    tokens_emitted: int = 0
    energy_joules: float = 0.0
    attempt: int = 0
    deadline_s: Optional[float] = None
    hedged: bool = False

    @property
    def prefill_done(self) -> bool:
        """Whether the prefill pass has run (first token emitted)."""
        return self.first_token_s is not None

    @property
    def remaining_tokens(self) -> int:
        """Output tokens still to emit."""
        return self.request.output_tokens - self.tokens_emitted

    @property
    def is_done(self) -> bool:
        """Whether the reply is complete."""
        return self.remaining_tokens <= 0

    def finish(self, finish_s: float) -> "RequestRecord":
        """Freeze the completed request into an immutable record."""
        if not self.is_done:
            raise SimulationError(
                f"request {self.request.request_id} finished with "
                f"{self.remaining_tokens} tokens outstanding"
            )
        assert self.first_scheduled_s is not None
        assert self.first_token_s is not None
        return RequestRecord(
            request=self.request,
            first_scheduled_s=self.first_scheduled_s,
            first_token_s=self.first_token_s,
            finish_s=finish_s,
            energy_joules=self.energy_joules,
        )


@dataclass(frozen=True)
class RequestRecord:
    """Immutable timeline of one completed request.

    Attributes:
        request: The request as submitted.
        first_scheduled_s: Prefill start (end of the queueing delay).
        first_token_s: First output token (prefill completion).
        finish_s: Last output token.
        energy_joules: Energy of the request's prefill and decode work.
    """

    request: Request
    first_scheduled_s: float
    first_token_s: float
    finish_s: float
    energy_joules: float

    def __post_init__(self) -> None:
        ordered = (
            self.request.arrival_s
            <= self.first_scheduled_s
            <= self.first_token_s
            <= self.finish_s
        )
        if not ordered:
            raise SimulationError(
                f"request {self.request.request_id} has a non-causal timeline"
            )
        if self.energy_joules < 0:
            raise SimulationError("request energy cannot be negative")

    # ------------------------------------------------------------------
    # Latency views
    # ------------------------------------------------------------------
    @property
    def queue_wait_s(self) -> float:
        """Time spent queued before the engine first picked the request up."""
        return self.first_scheduled_s - self.request.arrival_s

    @property
    def ttft_s(self) -> float:
        """Time to first token, measured from arrival."""
        return self.first_token_s - self.request.arrival_s

    @property
    def e2e_s(self) -> float:
        """End-to-end latency: arrival to last token."""
        return self.finish_s - self.request.arrival_s

    @property
    def decode_s(self) -> float:
        """Wall time between the first and the last token."""
        return self.finish_s - self.first_token_s

    @property
    def tpot_s(self) -> float:
        """Mean time per output token after the first (0 for 1-token replies)."""
        decode_steps = self.request.output_tokens - 1
        if decode_steps <= 0:
            return 0.0
        return self.decode_s / decode_steps

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form, request fields inlined."""
        record = self.request.to_dict()
        record.update(
            {
                "first_scheduled_s": self.first_scheduled_s,
                "first_token_s": self.first_token_s,
                "finish_s": self.finish_s,
                "energy_joules": self.energy_joules,
                "queue_wait_s": self.queue_wait_s,
                "ttft_s": self.ttft_s,
                "tpot_s": self.tpot_s,
                "e2e_s": self.e2e_s,
            }
        )
        return record
