"""Request-level serving simulator on top of the per-block cost model.

The paper evaluates one Transformer block in steady state; this package
asks the system question on top of it: what happens when *many* user
requests contend for the multi-chip platform?  It composes four small,
typed layers:

* :mod:`~repro.serving.traces` — seeded traffic generators (Poisson,
  bursty MMPP, diurnal with spikes, closed-loop) and JSON trace replay;
* :mod:`~repro.serving.policies` — pluggable scheduling policies behind a
  registry (FIFO, shortest-prompt-first, priority, continuous-batching
  interleaver);
* :mod:`~repro.serving.simulator` — a discrete-event loop whose phase
  costs are Session-memoised block evaluations (nothing is re-simulated
  per token);
* :mod:`~repro.serving.metrics` — TTFT/TPOT/e2e percentiles, throughput,
  queue and utilisation timelines, energy per request, SLO attainment.

The front door is :meth:`repro.api.Session.serve`::

    from repro.api import Session
    from repro.models.tinyllama import tinyllama_42m
    from repro.serving import PoissonTrace

    report = Session().serve(
        tinyllama_42m(),
        PoissonTrace(rate_rps=2.0, duration_s=300.0),
        policy="fifo", chips=8, seed=0,
    )
    print(report.render())

See ``docs/SERVING.md`` for the queueing model and its assumptions.
"""

from .costs import PhaseCost, RequestCostModel
from .metrics import (
    DEFAULT_SLO_TTFT_TARGETS_S,
    LatencySummary,
    ServingMetrics,
    ServingReport,
    attainment_curve,
    percentile,
    slo_attainment,
    utilisation_timeline,
)
from .policies import (
    ContinuousBatchingPolicy,
    FifoPolicy,
    PriorityPolicy,
    SchedulingPolicy,
    ShortestPromptPolicy,
    get_policy,
    list_policies,
    register_policy,
    unregister_policy,
)
from .request import ActiveRequest, Request, RequestPhase, RequestRecord
from .simulator import ServingResult, ServingSimulator
from .traces import (
    BurstyTrace,
    ClosedLoopTrace,
    DiurnalTrace,
    LengthModel,
    PoissonTrace,
    ReplayTrace,
    RequestSource,
    TrafficTrace,
    load_trace,
    save_trace,
)

__all__ = [
    "ActiveRequest",
    "BurstyTrace",
    "ClosedLoopTrace",
    "ContinuousBatchingPolicy",
    "DEFAULT_SLO_TTFT_TARGETS_S",
    "DiurnalTrace",
    "FifoPolicy",
    "LatencySummary",
    "LengthModel",
    "PhaseCost",
    "PoissonTrace",
    "PriorityPolicy",
    "ReplayTrace",
    "Request",
    "RequestCostModel",
    "RequestPhase",
    "RequestRecord",
    "RequestSource",
    "SchedulingPolicy",
    "ServingMetrics",
    "ServingReport",
    "ServingResult",
    "ServingSimulator",
    "ShortestPromptPolicy",
    "TrafficTrace",
    "attainment_curve",
    "get_policy",
    "list_policies",
    "load_trace",
    "percentile",
    "register_policy",
    "save_trace",
    "slo_attainment",
    "unregister_policy",
    "utilisation_timeline",
]
