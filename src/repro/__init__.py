"""repro: distributed Transformer inference on low-power MCUs.

A reproduction of "Distributed Inference with Minimal Off-Chip Traffic for
Transformers on Low-Power MCUs" (DATE 2025): a tensor-parallel partitioning
scheme that scatters Transformer weights across a network of Siracusa-like
MCUs with no replication and only two synchronisations per block, an
event-driven multi-chip simulator, the paper's analytical energy model, and
the experiment harness that regenerates every figure and table of the
paper's evaluation.

Typical usage::

    from repro import (
        autoregressive, tinyllama_42m, siracusa_platform, evaluate_block,
    )

    workload = autoregressive(tinyllama_42m(), context_len=128)
    report = evaluate_block(workload, siracusa_platform(8))
    print(report.summary())
"""

from .analysis import (
    BlockReport,
    ChipCountSweep,
    GenerationReport,
    ScalingPoint,
    SweepResult,
    chip_count_sweep,
    evaluate_block,
    evaluate_generation,
    scaling_points,
    speedup,
)
from .core import (
    BlockPartition,
    BlockProgram,
    BlockScheduler,
    ChipPartition,
    MemoryPlan,
    PrefetchAccounting,
    WeightResidency,
    chip_footprint,
    partition_block,
    plan_memory,
)
from .energy import EnergyBreakdown, EnergyModel, EnergyReport, energy_of
from .graph import (
    FfnKind,
    InferenceMode,
    TransformerConfig,
    Workload,
    autoregressive,
    encoder,
    prompt,
)
from .hw import (
    ChipModel,
    ChipToChipLink,
    ClusterModel,
    MultiChipPlatform,
    mipi_link,
    siracusa_chip,
    siracusa_platform,
)
from .kernels import KernelLibrary, MatmulEfficiencyModel
from .models import (
    get_model,
    list_models,
    mobilebert,
    tinyllama_42m,
    tinyllama_gated,
    tinyllama_scaled,
)
from .sim import MultiChipSimulator, SimulationResult, simulate_block

__version__ = "1.0.0"

__all__ = [
    "BlockPartition",
    "BlockProgram",
    "BlockReport",
    "BlockScheduler",
    "ChipCountSweep",
    "ChipModel",
    "ChipPartition",
    "ChipToChipLink",
    "ClusterModel",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyReport",
    "FfnKind",
    "GenerationReport",
    "InferenceMode",
    "KernelLibrary",
    "MatmulEfficiencyModel",
    "MemoryPlan",
    "MultiChipPlatform",
    "MultiChipSimulator",
    "PrefetchAccounting",
    "ScalingPoint",
    "SimulationResult",
    "SweepResult",
    "TransformerConfig",
    "WeightResidency",
    "Workload",
    "autoregressive",
    "chip_count_sweep",
    "chip_footprint",
    "encoder",
    "energy_of",
    "evaluate_block",
    "evaluate_generation",
    "get_model",
    "list_models",
    "mipi_link",
    "mobilebert",
    "partition_block",
    "plan_memory",
    "prompt",
    "scaling_points",
    "simulate_block",
    "siracusa_chip",
    "siracusa_platform",
    "speedup",
    "tinyllama_42m",
    "tinyllama_gated",
    "tinyllama_scaled",
    "__version__",
]
