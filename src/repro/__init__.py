"""repro: distributed Transformer inference on low-power MCUs.

A reproduction of "Distributed Inference with Minimal Off-Chip Traffic for
Transformers on Low-Power MCUs" (DATE 2025): a tensor-parallel partitioning
scheme that scatters Transformer weights across a network of Siracusa-like
MCUs with no replication and only two synchronisations per block, an
event-driven multi-chip simulator, the paper's analytical energy model, and
the experiment harness that regenerates every figure and table of the
paper's evaluation.

The front door is :class:`repro.api.Session`, which evaluates any
registered partitioning strategy — the paper's scheme (``"paper"``) or any
Table I baseline (``"single_chip"``, ``"weight_replicated"``,
``"pipeline_parallel"``, ``"tensor_parallel"``) — and memoises repeated
evaluations::

    from repro import Session, autoregressive, tinyllama_42m

    session = Session()
    workload = autoregressive(tinyllama_42m(), context_len=128)

    result = session.run(workload, strategy="paper", chips=8)
    print(result.summary())

    sweep = session.sweep(workload, chips=(1, 2, 4, 8))     # Fig. 4-style
    table = session.compare(workload, chips=8)              # Table-I-style
    print(table.render())

New partitioning ideas plug in through the strategy registry (see
``docs/API.md``)::

    from repro import register_strategy

    @register_strategy
    class MyStrategy: ...

The seed's entry points (:func:`evaluate_block`, :func:`chip_count_sweep`,
``compare_approaches``) remain available as thin shims over the session.
"""

from .analysis import (
    BlockReport,
    ChipCountSweep,
    GenerationReport,
    ScalingPoint,
    SweepResult,
    chip_count_sweep,
    evaluate_block,
    evaluate_generation,
    scaling_points,
    speedup,
)
from .api import (
    Comparison,
    EvalOptions,
    EvalResult,
    EvalSweep,
    PartitionStrategy,
    Session,
    default_session,
    get_strategy,
    list_strategies,
    register_strategy,
)
from .core import (
    BlockPartition,
    BlockProgram,
    BlockScheduler,
    ChipPartition,
    MemoryPlan,
    PrefetchAccounting,
    WeightResidency,
    chip_footprint,
    partition_block,
    plan_memory,
)
from .dse import (
    ChoiceAxis,
    Constraint,
    FloatAxis,
    IntAxis,
    SearchSpace,
    ServingScenario,
    TuneResult,
    default_space,
    list_objectives,
    list_searchers,
    pareto_front,
    register_objective,
    register_searcher,
)
from .energy import EnergyBreakdown, EnergyModel, EnergyReport, energy_of
from .graph import (
    FfnKind,
    InferenceMode,
    TransformerConfig,
    Workload,
    autoregressive,
    encoder,
    prompt,
)
from .hw import (
    ChipModel,
    ChipToChipLink,
    ClusterModel,
    MultiChipPlatform,
    PlatformPreset,
    get_platform_preset,
    list_platform_presets,
    mipi_link,
    register_platform_preset,
    siracusa_chip,
    siracusa_platform,
)
from .kernels import KernelLibrary, MatmulEfficiencyModel
from .models import (
    get_model,
    list_models,
    mobilebert,
    tinyllama_42m,
    tinyllama_gated,
    tinyllama_scaled,
)
from .sim import MultiChipSimulator, SimulationResult, simulate_block
from .spec import (
    CompareSpec,
    EvalSpec,
    ModelSpec,
    PlatformSpec,
    ServingSpec,
    SpaceSpec,
    StageSpec,
    StudySpec,
    SweepSpec,
    TraceSpec,
    TuneSpec,
    WorkloadSpec,
    load_spec,
)
from .api.study import Study, StudyResult


# The single source of truth for the package version: pyproject.toml
# reads it back via `[tool.setuptools.dynamic]`, so installed metadata
# and in-place (PYTHONPATH=src) checkouts can never disagree.
__version__ = "1.4.0"

__all__ = [
    "CompareSpec",
    "EvalSpec",
    "ModelSpec",
    "PlatformSpec",
    "ServingSpec",
    "SpaceSpec",
    "StageSpec",
    "Study",
    "StudyResult",
    "StudySpec",
    "SweepSpec",
    "TraceSpec",
    "TuneSpec",
    "WorkloadSpec",
    "load_spec",
    "BlockPartition",
    "BlockProgram",
    "BlockReport",
    "BlockScheduler",
    "ChipCountSweep",
    "ChipModel",
    "ChipPartition",
    "ChipToChipLink",
    "ChoiceAxis",
    "ClusterModel",
    "Comparison",
    "Constraint",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyReport",
    "EvalOptions",
    "EvalResult",
    "EvalSweep",
    "FfnKind",
    "FloatAxis",
    "GenerationReport",
    "InferenceMode",
    "IntAxis",
    "KernelLibrary",
    "MatmulEfficiencyModel",
    "MemoryPlan",
    "MultiChipPlatform",
    "MultiChipSimulator",
    "PartitionStrategy",
    "PlatformPreset",
    "PrefetchAccounting",
    "ScalingPoint",
    "SearchSpace",
    "ServingScenario",
    "Session",
    "SimulationResult",
    "SweepResult",
    "TransformerConfig",
    "TuneResult",
    "WeightResidency",
    "Workload",
    "autoregressive",
    "chip_count_sweep",
    "chip_footprint",
    "default_session",
    "default_space",
    "encoder",
    "energy_of",
    "evaluate_block",
    "evaluate_generation",
    "get_model",
    "get_platform_preset",
    "get_strategy",
    "list_models",
    "list_objectives",
    "list_platform_presets",
    "list_searchers",
    "list_strategies",
    "mipi_link",
    "mobilebert",
    "pareto_front",
    "partition_block",
    "plan_memory",
    "prompt",
    "register_objective",
    "register_platform_preset",
    "register_searcher",
    "register_strategy",
    "scaling_points",
    "simulate_block",
    "siracusa_chip",
    "siracusa_platform",
    "speedup",
    "tinyllama_42m",
    "tinyllama_gated",
    "tinyllama_scaled",
    "__version__",
]
