"""Kernel library: dispatches operators to their cost models.

The library is the single entry point the schedulers use to price an
operator on a given cluster.  It is configured with the matmul efficiency
model and the element-wise model, so design-space explorations can swap in
different kernel assumptions without touching the partitioner or the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from ..errors import ConfigurationError
from ..graph.ops import (
    ActivationOp,
    AttentionMatmulOp,
    ElementwiseOp,
    LinearOp,
    NormOp,
    Operator,
    SoftmaxOp,
)
from ..hw.cluster import ClusterModel
from .base import KernelCost, merge_costs
from .elementwise import ElementwiseModel
from .matmul import MatmulEfficiencyModel, attention_matmul_cost, linear_cost


@dataclass(frozen=True)
class KernelLibrary:
    """Prices operators on a specific cluster model.

    Attributes:
        cluster: The compute cluster the kernels run on.
        matmul_model: Efficiency model of the GEMM/GEMV kernels.
        elementwise_model: Cost model of the row/element-wise kernels.
    """

    cluster: ClusterModel
    matmul_model: MatmulEfficiencyModel = field(default_factory=MatmulEfficiencyModel)
    elementwise_model: ElementwiseModel = field(default_factory=ElementwiseModel)

    def cost(self, op: Operator) -> KernelCost:
        """Return the cost of one operator on this cluster.

        Raises:
            ConfigurationError: If the operator type is not supported.
        """
        if isinstance(op, LinearOp):
            return linear_cost(op, self.cluster, self.matmul_model)
        if isinstance(op, AttentionMatmulOp):
            return attention_matmul_cost(op, self.cluster, self.matmul_model)
        if isinstance(op, SoftmaxOp):
            return self.elementwise_model.softmax_cost(op, self.cluster)
        if isinstance(op, NormOp):
            return self.elementwise_model.norm_cost(op, self.cluster)
        if isinstance(op, ActivationOp):
            return self.elementwise_model.activation_cost(op, self.cluster)
        if isinstance(op, ElementwiseOp):
            return self.elementwise_model.elementwise_cost(op, self.cluster)
        raise ConfigurationError(
            f"no kernel cost model registered for operator type "
            f"{type(op).__name__} ({op.name!r})"
        )

    def costs(self, operators: Iterable[Operator]) -> List[KernelCost]:
        """Price a sequence of operators, preserving order."""
        return [self.cost(op) for op in operators]

    def total_cost(self, operators: Iterable[Operator], name: str = "total") -> KernelCost:
        """Aggregate cost of a sequence of operators."""
        return merge_costs(name, self.costs(operators))
