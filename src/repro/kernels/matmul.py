"""Cycle models for GEMM and GEMV kernels on the octa-core cluster.

Two regimes matter for the paper's story:

* **GEMM** (prompt/encoder mode): each weight element is reused across all
  input rows, so the kernel is compute-bound.  Its efficiency degrades when
  the per-chip tile shrinks — fewer output columns per core, shorter inner
  dimensions — which is exactly the "kernel size does not scale down
  linearly" effect the paper reports for MobileBERT on 4 chips.
* **GEMV** (autoregressive mode): each weight element is used exactly once,
  so the kernel is bound by how fast weights stream through L1 and by the
  per-element address/load overhead of the cores; the achieved MAC
  throughput is far below the SIMD peak.

The constants below are calibration parameters of this reproduction (the
paper does not publish kernel-level numbers); they were chosen so the
single-chip runtimes land in the range shown in Fig. 5 of the paper and are
documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..graph.ops import AttentionMatmulOp, LinearOp
from ..hw.cluster import ClusterModel
from .base import KernelCost

#: Bytes per element of the int8 kernels' output accumulators.
ACCUMULATOR_BYTES = 4


@dataclass(frozen=True)
class MatmulEfficiencyModel:
    """Utilisation model of the cluster's matmul kernels.

    Attributes:
        gemm_peak_efficiency: Fraction of the SIMD peak reachable by a
            well-shaped GEMM (pipeline stalls, loop overhead, im2col-free
            addressing).
        gemv_macs_per_core_per_cycle: Sustained MACs per core per cycle for
            GEMV, limited by streaming weights through the core load ports.
        rows_half_point: Row count at which row-dimension utilisation
            reaches one half (start-up / drain overhead of the row loop).
        cols_per_core_half_point: Output-columns-per-core at which the
            column-dimension utilisation reaches one half (work imbalance
            across the eight cores for narrow outputs).
        inner_half_point: Inner-dimension length at which the dot-product
            utilisation reaches one half (SIMD prologue/epilogue overhead).
        l1_activation_budget_bytes: L1 bytes usable for the input and output
            row tiles of one kernel invocation; determines how many row
            tiles (weight passes) a large GEMM needs.
        elementwise_parallel_efficiency: Core-parallel efficiency of the
            non-matmul operators.
    """

    gemm_peak_efficiency: float = 0.55
    gemv_macs_per_core_per_cycle: float = 0.33
    rows_half_point: float = 4.0
    cols_per_core_half_point: float = 4.0
    inner_half_point: float = 24.0
    l1_activation_budget_bytes: int = 64 * 1024
    elementwise_parallel_efficiency: float = 0.7

    def saturation(self, value: float, half_point: float) -> float:
        """A saturating utilisation curve: 0 at 0, 1/2 at ``half_point``, -> 1."""
        if value <= 0:
            return 0.0
        return value / (value + half_point)

    def gemm_efficiency(self, rows: int, cols: int, inner: int, num_cores: int) -> float:
        """Fraction of peak MAC throughput achieved by a GEMM tile."""
        cols_per_core = cols / max(num_cores, 1)
        return (
            self.gemm_peak_efficiency
            * self.saturation(rows, self.rows_half_point)
            * self.saturation(cols_per_core, self.cols_per_core_half_point)
            * self.saturation(inner, self.inner_half_point)
        )

    def gemv_macs_per_cycle(self, cluster: ClusterModel, inner: int, cols: int) -> float:
        """Sustained cluster MAC throughput for a GEMV."""
        base = cluster.num_cores * self.gemv_macs_per_core_per_cycle
        # Very short dot products and very narrow outputs still pay loop
        # overhead; reuse the saturation curves with gentler half points.
        cols_per_core = cols / max(cluster.num_cores, 1)
        shape_factor = self.saturation(inner, self.inner_half_point) * self.saturation(
            cols_per_core, 1.0
        )
        return max(base * shape_factor, 1e-9)

    def row_tile_rows(self, in_features: int, out_features: int, act_bytes: int) -> int:
        """Rows of the input/output tile that fit in the L1 activation budget.

        The output row tile is held in 32-bit accumulators until the final
        requantisation, so it costs four bytes per element regardless of the
        deployment activation type; this is what limits the row-tile size of
        wide GEMMs and forces the weight matrix to be re-streamed once per
        tile when it is not L2-resident.
        """
        bytes_per_row = in_features * act_bytes + out_features * ACCUMULATOR_BYTES
        if bytes_per_row <= 0:
            return 1
        return max(1, self.l1_activation_budget_bytes // bytes_per_row)


def linear_cost(
    op: LinearOp,
    cluster: ClusterModel,
    efficiency: MatmulEfficiencyModel,
) -> KernelCost:
    """Cost of a weight-bearing linear projection (GEMM or GEMV)."""
    macs = op.macs
    if macs == 0:
        return KernelCost(
            name=op.name,
            compute_cycles=0.0,
            l2_l1_bytes=0.0,
            weight_bytes=op.weight_bytes,
        )
    if op.is_gemv:
        throughput = efficiency.gemv_macs_per_cycle(
            cluster, inner=op.in_features, cols=op.out_features
        )
        passes = 1
    else:
        eff = efficiency.gemm_efficiency(
            rows=op.rows,
            cols=op.out_features,
            inner=op.in_features,
            num_cores=cluster.num_cores,
        )
        throughput = max(cluster.peak_macs_per_cycle * eff, 1e-9)
        tile_rows = efficiency.row_tile_rows(
            op.in_features, op.out_features, op.act_dtype.size_bytes
        )
        passes = max(1, math.ceil(op.rows / tile_rows))
    compute_cycles = macs / throughput
    l2_l1_bytes = op.input_bytes + op.output_bytes + op.weight_bytes
    return KernelCost(
        name=op.name,
        compute_cycles=compute_cycles,
        l2_l1_bytes=l2_l1_bytes,
        weight_bytes=op.weight_bytes,
        weight_passes=passes,
        macs=macs,
    )


def attention_matmul_cost(
    op: AttentionMatmulOp,
    cluster: ClusterModel,
    efficiency: MatmulEfficiencyModel,
) -> KernelCost:
    """Cost of a weight-free attention matmul (``Q.K^T`` or ``A.V``).

    Both operands are activations (the stationary one being the KV-cache),
    so there are no weight bytes; the KV-cache slice still has to be staged
    from L2 into L1, which is captured in ``l2_l1_bytes``.
    """
    macs = op.macs
    if macs == 0:
        return KernelCost(name=op.name, compute_cycles=0.0, l2_l1_bytes=0.0)
    if op.rows == 1:
        throughput = efficiency.gemv_macs_per_cycle(cluster, inner=op.inner, cols=op.cols)
    else:
        eff = efficiency.gemm_efficiency(
            rows=op.rows, cols=op.cols, inner=op.inner, num_cores=cluster.num_cores
        )
        throughput = max(cluster.peak_macs_per_cycle * eff, 1e-9)
    compute_cycles = macs / throughput
    l2_l1_bytes = op.input_bytes + op.output_bytes
    return KernelCost(
        name=op.name,
        compute_cycles=compute_cycles,
        l2_l1_bytes=l2_l1_bytes,
        macs=macs,
    )
