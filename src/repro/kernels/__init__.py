"""Analytical kernel cost models for the MCU cluster."""

from .base import KernelCost, merge_costs
from .elementwise import ElementwiseModel
from .library import KernelLibrary
from .matmul import MatmulEfficiencyModel, attention_matmul_cost, linear_cost

__all__ = [
    "ElementwiseModel",
    "KernelCost",
    "KernelLibrary",
    "MatmulEfficiencyModel",
    "attention_matmul_cost",
    "linear_cost",
    "merge_costs",
]
