"""Cycle models for the row-wise and element-wise operators.

Softmax, normalisation, activation functions, and element-wise adds are a
small share of the runtime, but they matter for two reasons: the softmax
and the post-reduction normalisations sit on the critical path of every
block (the normalisation runs on a single chip while the others wait), and
their cost does not shrink when more chips are added, which contributes to
the diminishing returns the paper observes at high chip counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.ops import ActivationKind, ActivationOp, ElementwiseKind, ElementwiseOp, NormOp, SoftmaxOp
from ..hw.cluster import ClusterModel
from .base import KernelCost

#: Per-element cycle costs on one core (integer-arithmetic approximations
#: of the transcendental functions, as used by int8 deployment flows).
_SOFTMAX_CYCLES_PER_ELEMENT = 8.0
_LAYERNORM_CYCLES_PER_ELEMENT = 5.0
_RMSNORM_CYCLES_PER_ELEMENT = 4.0
_GELU_CYCLES_PER_ELEMENT = 6.0
_SILU_CYCLES_PER_ELEMENT = 5.0
_RELU_CYCLES_PER_ELEMENT = 1.0
_ADD_CYCLES_PER_ELEMENT = 1.5
_MUL_CYCLES_PER_ELEMENT = 1.5
_COPY_CYCLES_PER_ELEMENT = 1.0

_ACTIVATION_COSTS = {
    ActivationKind.GELU: _GELU_CYCLES_PER_ELEMENT,
    ActivationKind.SILU: _SILU_CYCLES_PER_ELEMENT,
    ActivationKind.RELU: _RELU_CYCLES_PER_ELEMENT,
}

_ELEMENTWISE_COSTS = {
    ElementwiseKind.ADD: _ADD_CYCLES_PER_ELEMENT,
    ElementwiseKind.MUL: _MUL_CYCLES_PER_ELEMENT,
    ElementwiseKind.COPY: _COPY_CYCLES_PER_ELEMENT,
}


@dataclass(frozen=True)
class ElementwiseModel:
    """Cost model of the non-matmul operators.

    Attributes:
        parallel_efficiency: Fraction of the ideal ``num_cores`` speedup the
            row/element-wise kernels achieve (synchronisation and remainder
            rows cost the rest).
    """

    parallel_efficiency: float = 0.7

    def _cycles(self, elements: int, per_element: float, cluster: ClusterModel) -> float:
        if elements <= 0:
            return 0.0
        effective_cores = max(cluster.num_cores * self.parallel_efficiency, 1.0)
        return elements * per_element / effective_cores

    def softmax_cost(self, op: SoftmaxOp, cluster: ClusterModel) -> KernelCost:
        """Cost of a row-wise softmax."""
        cycles = self._cycles(op.elements, _SOFTMAX_CYCLES_PER_ELEMENT, cluster)
        return KernelCost(
            name=op.name,
            compute_cycles=cycles,
            l2_l1_bytes=op.input_bytes + op.output_bytes,
        )

    def norm_cost(self, op: NormOp, cluster: ClusterModel) -> KernelCost:
        """Cost of a LayerNorm or RMSNorm."""
        per_element = (
            _RMSNORM_CYCLES_PER_ELEMENT
            if op.kind.value == "rmsnorm"
            else _LAYERNORM_CYCLES_PER_ELEMENT
        )
        cycles = self._cycles(op.elements, per_element, cluster)
        return KernelCost(
            name=op.name,
            compute_cycles=cycles,
            l2_l1_bytes=op.input_bytes + op.output_bytes,
            weight_bytes=op.weight_bytes,
        )

    def activation_cost(self, op: ActivationOp, cluster: ClusterModel) -> KernelCost:
        """Cost of a pointwise non-linearity."""
        per_element = _ACTIVATION_COSTS[op.kind]
        cycles = self._cycles(op.elements, per_element, cluster)
        return KernelCost(
            name=op.name,
            compute_cycles=cycles,
            l2_l1_bytes=op.input_bytes + op.output_bytes,
        )

    def elementwise_cost(self, op: ElementwiseOp, cluster: ClusterModel) -> KernelCost:
        """Cost of a binary element-wise operator or copy."""
        per_element = _ELEMENTWISE_COSTS[op.kind]
        cycles = self._cycles(op.elements, per_element, cluster)
        return KernelCost(
            name=op.name,
            compute_cycles=cycles,
            l2_l1_bytes=op.input_bytes + op.output_bytes,
        )
