"""Kernel cost abstraction.

A *kernel cost* describes what executing one operator on one chip's cluster
costs, independent of where its weights happen to live:

* ``compute_cycles`` — cluster-busy cycles,
* ``l2_l1_bytes`` — bytes moved between L2 and L1 by the cluster DMA
  (operands in, results out, weights streamed per pass),
* ``weight_bytes`` — the stationary parameter bytes of the operator,
* ``weight_passes`` — how many times the weight matrix must be streamed
  through the memory hierarchy when it is **not** resident in L2.  For a
  GEMV (one input row) this is always one; for a large GEMM whose input
  rows do not fit in L1, the weight matrix is re-streamed once per row
  tile, which is what makes the paper's single-chip (weights-in-L3)
  configurations so expensive.

The placement / scheduling layers combine these numbers with the weight
residency decision to produce L3 traffic and exposed DMA time.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelCost:
    """Cost of one operator on one cluster.

    Attributes:
        name: Operator name this cost belongs to.
        compute_cycles: Cluster-busy cycles.
        l2_l1_bytes: Bytes moved between L2 and L1 (activations plus one
            weight pass).
        weight_bytes: Stationary parameter bytes read by the operator.
        weight_passes: Number of times the full weight tensor must be
            streamed when it is not L2-resident.
        macs: Multiply-accumulate count (for reporting and utilisation
            analysis).
    """

    name: str
    compute_cycles: float
    l2_l1_bytes: float
    weight_bytes: int = 0
    weight_passes: int = 1
    macs: int = 0

    def __post_init__(self) -> None:
        if self.compute_cycles < 0 or self.l2_l1_bytes < 0:
            raise ValueError(f"kernel cost {self.name!r} has negative cycles/bytes")
        if self.weight_bytes < 0 or self.macs < 0:
            raise ValueError(f"kernel cost {self.name!r} has negative sizes")
        if self.weight_passes < 1:
            raise ValueError(f"kernel cost {self.name!r} must have >= 1 weight pass")

    @property
    def streamed_weight_bytes(self) -> float:
        """Total weight bytes crossing L3 when the weights are not resident."""
        return self.weight_bytes * self.weight_passes

    @property
    def effective_macs_per_cycle(self) -> float:
        """Achieved MAC throughput (0 for non-matmul operators)."""
        if self.compute_cycles <= 0:
            return 0.0
        return self.macs / self.compute_cycles


def merge_costs(name: str, costs) -> KernelCost:
    """Aggregate several kernel costs into a single summary cost.

    The aggregate keeps the *maximum* weight-pass count, because that is
    the conservative multiplier to apply if the whole group of operators
    has to stream its weights.
    """
    costs = list(costs)
    if not costs:
        return KernelCost(name=name, compute_cycles=0.0, l2_l1_bytes=0.0)
    return KernelCost(
        name=name,
        compute_cycles=sum(cost.compute_cycles for cost in costs),
        l2_l1_bytes=sum(cost.l2_l1_bytes for cost in costs),
        weight_bytes=sum(cost.weight_bytes for cost in costs),
        weight_passes=max(cost.weight_passes for cost in costs),
        macs=sum(cost.macs for cost in costs),
    )
