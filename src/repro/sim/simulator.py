"""Event-driven execution of a :class:`BlockProgram` on a multi-chip system.

Every chip of the platform becomes one simulation process that walks its
schedule step by step:

* kernel steps advance time by the kernel's compute cycles (with the
  L2<->L1 staging either double-buffered against the computation or
  serialised with it, depending on the weight-residency regime),
* blocking DMA steps advance time by the channel's transfer time,
* prefetch steps start a background transfer on the off-chip DMA channel
  and only consume time if a later join step has to wait for them,
* send/receive pairs rendezvous over the chip-to-chip link; transfers that
  converge on the same receiver serialise at that receiver's ingress port,
  which is what makes the flat all-to-one reduction scale poorly and the
  paper's hierarchical scheme scale well.

The result is a :class:`~repro.sim.trace.SimulationResult` holding the
block runtime, the per-chip runtime breakdown, and the per-level traffic
counters used by the energy model.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, Generator, Optional, Tuple

from ..core.schedule import (
    BlockProgram,
    ChipSchedule,
    ComputeStep,
    DmaChannelName,
    DmaStep,
    PrefetchJoinStep,
    PrefetchStep,
    RecvStep,
    RuntimeCategory,
    SendStep,
)
from ..core.scheduler import L3_STREAM_TILE_BYTES
from ..errors import SimulationError
from .engine import Environment, Event
from .trace import ChipTrace, SimulationResult


@dataclass
class _PendingMessage:
    """Book-keeping for one send/receive rendezvous."""

    num_bytes: int
    arrivals: Dict[str, float] = field(default_factory=dict)
    events: Dict[str, Event] = field(default_factory=dict)


@dataclass
class MultiChipSimulator:
    """Simulates one block program on its platform.

    Attributes:
        program: The block program to execute.
        record_events: Whether to keep per-step trace events (useful for
            debugging and for fine-grained tests; adds memory overhead).
    """

    program: BlockProgram
    record_events: bool = False

    def run(self) -> SimulationResult:
        """Execute the program and return its trace.

        Raises:
            SimulationError: If the program deadlocks (a chip waits forever
                on a message that is never sent).
        """
        env = Environment()
        traces = {
            chip_id: ChipTrace(chip_id=chip_id) for chip_id in self.program.chip_ids
        }
        pending: Dict[Tuple[int, int, str], _PendingMessage] = {}
        port_free_at: Dict[int, float] = {}
        processes = []
        for chip_id in self.program.chip_ids:
            schedule = self.program.schedule(chip_id)
            generator = self._chip_process(
                env, chip_id, schedule, traces[chip_id], pending, port_free_at
            )
            processes.append(env.process(generator, name=f"chip{chip_id}"))
        env.run()
        unfinished = [process.name for process in processes if not process.processed]
        if unfinished:
            raise SimulationError(
                "simulation deadlocked; chips never finished: "
                + ", ".join(sorted(unfinished))
            )
        total_cycles = max(trace.finish_cycle for trace in traces.values())
        return SimulationResult(
            program=self.program, total_cycles=total_cycles, chip_traces=traces
        )

    # ------------------------------------------------------------------
    # Per-chip process
    # ------------------------------------------------------------------
    def _chip_process(
        self,
        env: Environment,
        chip_id: int,
        schedule: ChipSchedule,
        trace: ChipTrace,
        pending: Dict[Tuple[int, int, str], _PendingMessage],
        port_free_at: Dict[int, float],
    ) -> Generator[Event, object, None]:
        chip = self.program.platform.chip
        link = self.program.platform.link
        frequency = self.program.platform.frequency_hz
        prefetch_ready_at = 0.0

        for step in schedule.steps:
            if isinstance(step, ComputeStep):
                yield from self._run_compute(env, chip, step, trace)
            elif isinstance(step, DmaStep):
                yield from self._run_dma(env, chip, step, trace)
            elif isinstance(step, PrefetchStep):
                prefetch_ready_at = self._start_prefetch(
                    env, chip, step, trace, prefetch_ready_at
                )
            elif isinstance(step, PrefetchJoinStep):
                yield from self._join_prefetch(env, step, trace, prefetch_ready_at)
            elif isinstance(step, (SendStep, RecvStep)):
                yield from self._run_message(
                    env, chip_id, step, trace, pending, port_free_at, link, frequency
                )
            else:
                raise SimulationError(
                    f"chip {chip_id}: unknown step type {type(step).__name__}"
                )
        trace.finish_cycle = env.now

    # ------------------------------------------------------------------
    # Step handlers
    # ------------------------------------------------------------------
    def _run_compute(self, env, chip, step: ComputeStep, trace: ChipTrace):
        dma_cycles = 0.0
        if step.l2_l1_bytes > 0:
            dma_cycles = chip.dma.l2_l1.transfer_cycles(int(step.l2_l1_bytes))
        if step.overlap_dma:
            duration = max(step.compute_cycles, dma_cycles)
            exposed_dma = max(0.0, dma_cycles - step.compute_cycles)
        else:
            duration = step.compute_cycles + dma_cycles
            exposed_dma = dma_cycles
        start = env.now
        self._attribute(trace, RuntimeCategory.COMPUTE, step.compute_cycles, step, start)
        self._attribute(trace, RuntimeCategory.DMA_L2_L1, exposed_dma, step, start)
        trace.l2_l1_bytes += step.l2_l1_bytes
        if duration > 0:
            yield env.timeout(duration)

    def _run_dma(self, env, chip, step: DmaStep, trace: ChipTrace):
        if step.channel is DmaChannelName.L3_L2:
            channel = chip.dma.l3_l2
            category = RuntimeCategory.DMA_L3_L2
            trace.l3_l2_bytes += step.num_bytes
        else:
            channel = chip.dma.l2_l1
            category = RuntimeCategory.DMA_L2_L1
            trace.l2_l1_bytes += step.num_bytes
        cycles = channel.transfer_cycles(int(step.num_bytes), step.num_transfers)
        self._attribute(trace, category, cycles, step, env.now)
        if cycles > 0:
            yield env.timeout(cycles)

    def _start_prefetch(
        self, env, chip, step: PrefetchStep, trace: ChipTrace, prefetch_ready_at: float
    ) -> float:
        transfers = max(1, math.ceil(step.num_bytes / L3_STREAM_TILE_BYTES))
        cycles = chip.dma.l3_l2.transfer_cycles(int(step.num_bytes), transfers)
        start = max(env.now, prefetch_ready_at)
        trace.l3_l2_bytes += step.num_bytes
        return start + cycles

    def _join_prefetch(self, env, step, trace: ChipTrace, prefetch_ready_at: float):
        if prefetch_ready_at > env.now:
            wait = prefetch_ready_at - env.now
            self._attribute(trace, RuntimeCategory.DMA_L3_L2, wait, step, env.now)
            yield env.timeout(wait)

    def _run_message(
        self,
        env,
        chip_id: int,
        step,
        trace: ChipTrace,
        pending: Dict[Tuple[int, int, str], _PendingMessage],
        port_free_at: Dict[int, float],
        link,
        frequency: float,
    ):
        if isinstance(step, SendStep):
            key = (chip_id, step.dst, step.tag)
            role = "send"
            receiver = step.dst
        else:
            key = (step.src, chip_id, step.tag)
            role = "recv"
            receiver = chip_id

        message = pending.get(key)
        if message is None:
            message = _PendingMessage(num_bytes=step.num_bytes)
            pending[key] = message
        elif message.num_bytes != step.num_bytes:
            raise SimulationError(
                f"message {key} size mismatch: {message.num_bytes} vs {step.num_bytes}"
            )
        if role in message.arrivals:
            raise SimulationError(f"duplicate {role} for message {key}")
        message.arrivals[role] = env.now
        # Event names are only read by traces and error messages, so the
        # f-string is skipped on the hot path.
        completion = env.event(
            name=f"msg.{key}.{role}" if self.record_events else "msg"
        )
        message.events[role] = completion

        if len(message.arrivals) == 2:
            start = max(max(message.arrivals.values()), port_free_at.get(receiver, 0.0))
            duration = link.transfer_cycles(message.num_bytes, frequency)
            end = start + duration
            port_free_at[receiver] = end
            del pending[key]
            self._fire_at(env, message.events["send"], end, (start, end))
            self._fire_at(env, message.events["recv"], end, (start, end))

        value = yield completion
        start, end = value
        arrival = message.arrivals[role]
        idle = max(0.0, start - arrival)
        transfer = end - start
        self._attribute(trace, RuntimeCategory.IDLE, idle, step, arrival)
        self._attribute(trace, RuntimeCategory.CHIP_TO_CHIP, transfer, step, start)
        if role == "send":
            trace.c2c_bytes_sent += step.num_bytes

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _fire_at(self, env: Environment, event: Event, when: float, value) -> None:
        """Trigger ``event`` with ``value`` at absolute simulation time ``when``."""
        delay = max(0.0, when - env.now)
        name = f"{event.name}.timer" if self.record_events else "timer"
        timer = env.timeout(delay, name=name)
        timer.add_callback(lambda _timer: event.succeed(value))

    def _attribute(
        self,
        trace: ChipTrace,
        category: RuntimeCategory,
        cycles: float,
        step,
        start: float,
    ) -> None:
        if self.record_events:
            trace.add(category, cycles, name=step.name, start_cycle=start)
        else:
            trace.add(category, cycles)


def simulate_block(
    program: BlockProgram,
    record_events: bool = False,
    *,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Simulate one block program, choosing the fastest capable engine.

    By default the analytic fast path in :mod:`repro.sim.fastpath`
    executes the program; the event engine is used when per-step trace
    events are requested (``record_events=True``) or when the program
    contains a step shape the fast path does not support.  Both engines
    produce bit-identical :class:`~repro.sim.trace.SimulationResult`
    totals (enforced by the hypothesis equivalence suite).

    Args:
        program: The block program to execute.
        record_events: Keep per-step trace events (event engine only;
            combining it with ``engine="fast"`` is an error, while the
            ``REPRO_SIM_ENGINE=fast`` preference quietly yields to the
            event engine for traced runs).
        engine: Force an engine: ``"fast"``, ``"event"``, or ``None`` to
            honour the ``REPRO_SIM_ENGINE`` environment variable and fall
            back to automatic dispatch.

    Raises:
        SimulationError: On deadlock, rendezvous mismatches, an unknown
            ``engine`` name, or ``engine="fast"`` with ``record_events``.
    """
    if engine == "fast" and record_events:
        raise SimulationError(
            "per-step trace events need the event engine; drop "
            "engine='fast' or record_events"
        )
    choice = (
        engine
        if engine is not None
        else (os.environ.get("REPRO_SIM_ENGINE") or None)  # "" means unset
    )
    if choice not in (None, "fast", "event"):
        raise SimulationError(
            f"unknown simulation engine {choice!r}; use 'fast' or 'event'"
        )
    if choice != "event" and not record_events:
        from .fastpath import UnsupportedProgramError, simulate_block_fast

        try:
            return simulate_block_fast(program)
        except UnsupportedProgramError:
            if choice == "fast":
                raise
    return MultiChipSimulator(program=program, record_events=record_events).run()
