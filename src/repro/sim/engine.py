"""A small discrete-event simulation kernel.

This is the substrate that replaces GVSoC in this reproduction: a
deterministic, generator-based discrete-event engine in the style of SimPy,
reduced to the features the multi-chip simulator needs:

* :class:`Environment` — the event queue and the simulation clock,
* :class:`Event` — a one-shot occurrence processes can wait on,
* :class:`Process` — a Python generator driven by the environment; every
  value it yields must be an :class:`Event`, and the process resumes when
  that event fires,
* ``Environment.timeout`` — an event that fires after a delay,
* :class:`AllOf` — an event that fires when several events have all fired.

The engine is deterministic: simultaneous events are processed in the order
they were scheduled, so repeated runs of the same program produce identical
traces (a property the test suite checks).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generator, Iterable, List, Optional

from ..errors import SimulationError


class Event:
    """A one-shot occurrence that processes can wait on.

    An event goes through three states: *pending* (created), *triggered*
    (scheduled to fire at some simulation time), and *processed* (its
    callbacks have run).  Callbacks added after the event has been
    processed are invoked at the current simulation time via a small proxy
    event, so latecomers never deadlock.
    """

    def __init__(self, env: "Environment", name: str = "event") -> None:
        self.env = env
        self.name = name
        self.triggered = False
        self.processed = False
        self.value: object = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event at the current simulation time."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        self.env._schedule(self, delay=0.0)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register a callback invoked when the event fires.

        If the event has already been processed the callback is invoked at
        the current simulation time (through a proxy event), preserving the
        run loop's determinism.
        """
        if self.processed:
            # The proxy reuses this event's name: building a derived
            # f-string per late callback is measurable on the hot path
            # and the name is only ever read while debugging.
            proxy = Event(self.env, name=self.name)
            proxy._callbacks.append(callback)
            proxy.triggered = True
            proxy.value = self.value
            self.env._schedule(proxy, delay=0.0)
        else:
            self._callbacks.append(callback)

    def _process_callbacks(self) -> None:
        self.processed = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    def __init__(self, env: "Environment", delay: float, name: str = "timeout") -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be non-negative, got {delay}")
        super().__init__(env, name=name)
        self.delay = delay
        self.triggered = True
        env._schedule(self, delay=delay)


class AllOf(Event):
    """An event that fires once all constituent events have fired."""

    def __init__(
        self, env: "Environment", events: Iterable[Event], name: str = "all_of"
    ) -> None:
        super().__init__(env, name=name)
        self._pending = 0
        for event in events:
            if event.processed:
                continue
            self._pending += 1
            event.add_callback(self._on_child)
        if self._pending == 0:
            self.succeed()

    def _on_child(self, _event: Event) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.succeed()


class Process(Event):
    """A generator-based simulation process.

    The process itself is an event that fires when the generator finishes,
    so processes can wait for each other.
    """

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, object, None],
        name: str = "process",
    ) -> None:
        super().__init__(env, name=name)
        self._generator = generator
        # The bootstrap shares the process name; a per-process f-string
        # buys nothing (the name is only read while debugging).
        bootstrap = Event(env, name=name)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    def _resume(self, event: Event) -> None:
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances"
            )
        target.add_callback(self._resume)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List = []
        self._sequence = itertools.count()

    # ------------------------------------------------------------------
    # Event creation helpers
    # ------------------------------------------------------------------
    def event(self, name: str = "event") -> Event:
        """Create an untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, name: str = "timeout") -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, name=name)

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> AllOf:
        """Create an event firing when all ``events`` have fired."""
        return AllOf(self, events, name=name)

    def process(
        self, generator: Generator[Event, object, None], name: str = "process"
    ) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    # ------------------------------------------------------------------
    # Scheduling and execution
    # ------------------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self.now + delay, next(self._sequence), event))

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains (or until the given time).

        Returns:
            The final simulation time.

        Raises:
            SimulationError: If ``until`` lies in the past.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"cannot run until {until}, current time is already {self.now}"
            )
        while self._queue:
            scheduled_time, sequence, event = heapq.heappop(self._queue)
            if until is not None and scheduled_time > until:
                heapq.heappush(self._queue, (scheduled_time, sequence, event))
                self.now = until
                return self.now
            self.now = scheduled_time
            event._process_callbacks()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)
