"""Simulation traces: runtime breakdowns and traffic counters.

The simulator produces, for every chip, the same quantities the paper
extracts from GVSoC: how many cycles were spent computing, waiting on
L3<->L2 DMA, waiting on L2<->L1 DMA, and communicating over the
chip-to-chip link, plus the number of bytes that crossed each memory level.
These feed the analytical energy model and the figure-reproduction
harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.schedule import BlockProgram, RuntimeCategory
from ..errors import SimulationError


@dataclass
class TraceEvent:
    """One attributed span of time on one chip (for debugging and tests)."""

    chip_id: int
    name: str
    category: RuntimeCategory
    start_cycle: float
    end_cycle: float

    @property
    def duration(self) -> float:
        """Length of the span in cycles."""
        return self.end_cycle - self.start_cycle


@dataclass
class ChipTrace:
    """Accumulated activity of one chip over a simulated block."""

    chip_id: int
    cycles: Dict[RuntimeCategory, float] = field(
        default_factory=lambda: {category: 0.0 for category in RuntimeCategory}
    )
    l3_l2_bytes: float = 0.0
    l2_l1_bytes: float = 0.0
    c2c_bytes_sent: float = 0.0
    finish_cycle: float = 0.0
    events: List[TraceEvent] = field(default_factory=list)

    def add(
        self,
        category: RuntimeCategory,
        cycles: float,
        *,
        name: str = "",
        start_cycle: Optional[float] = None,
    ) -> None:
        """Attribute ``cycles`` of activity to a breakdown category."""
        if cycles < 0:
            raise SimulationError(
                f"chip {self.chip_id}: cannot attribute negative cycles to "
                f"{category.value}"
            )
        if cycles == 0:
            return
        self.cycles[category] += cycles
        if name and start_cycle is not None:
            self.events.append(
                TraceEvent(
                    chip_id=self.chip_id,
                    name=name,
                    category=category,
                    start_cycle=start_cycle,
                    end_cycle=start_cycle + cycles,
                )
            )

    @property
    def compute_cycles(self) -> float:
        """Cluster-busy cycles (used by the energy model)."""
        return self.cycles[RuntimeCategory.COMPUTE]

    @property
    def busy_cycles(self) -> float:
        """All attributed cycles except idle waiting."""
        return sum(
            value
            for category, value in self.cycles.items()
            if category is not RuntimeCategory.IDLE
        )


@dataclass
class SimulationResult:
    """Outcome of simulating one :class:`BlockProgram`.

    Attributes:
        program: The simulated program.
        total_cycles: Wall-clock cycles until the last chip finished.
        chip_traces: Per-chip activity traces.
    """

    program: BlockProgram
    total_cycles: float
    chip_traces: Dict[int, ChipTrace]

    def __post_init__(self) -> None:
        if self.total_cycles < 0:
            raise SimulationError("total cycle count cannot be negative")
        expected = set(self.program.chip_ids)
        if set(self.chip_traces) != expected:
            raise SimulationError("simulation result must cover every chip")

    # ------------------------------------------------------------------
    # Compact pickling
    # ------------------------------------------------------------------
    # One trace per chip is persisted for every cached evaluation, so
    # the enum-keyed breakdown dicts are flattened to one value row per
    # chip (in :data:`RuntimeCategory` order) and only materialised back
    # into :class:`ChipTrace` objects when the traces are actually read;
    # per-step events (when recorded) keep full fidelity.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        traces = state.pop("chip_traces", None)
        if traces is not None:
            state["_packed_chip_traces"] = tuple(
                (
                    trace.chip_id,
                    tuple(
                        trace.cycles[category] for category in RuntimeCategory
                    ),
                    trace.l3_l2_bytes,
                    trace.l2_l1_bytes,
                    trace.c2c_bytes_sent,
                    trace.finish_cycle,
                    trace.events,
                )
                for trace in traces.values()
            )
        return state

    def __getattr__(self, name: str):
        if name == "chip_traces":
            packed = self.__dict__.get("_packed_chip_traces")
            if packed is not None:
                categories = tuple(RuntimeCategory)
                traces = {}
                for chip_id, values, l3_l2, l2_l1, c2c, finish, events in packed:
                    trace = ChipTrace.__new__(ChipTrace)
                    trace.__dict__.update(
                        chip_id=chip_id,
                        cycles=dict(zip(categories, values)),
                        l3_l2_bytes=l3_l2,
                        l2_l1_bytes=l2_l1,
                        c2c_bytes_sent=c2c,
                        finish_cycle=finish,
                        events=events,
                    )
                    traces[chip_id] = trace
                object.__setattr__(self, "chip_traces", traces)
                return traces
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # ------------------------------------------------------------------
    # Runtime views
    # ------------------------------------------------------------------
    @property
    def num_chips(self) -> int:
        """Number of chips in the simulated system."""
        return self.program.platform.num_chips

    @property
    def frequency_hz(self) -> float:
        """Cluster clock frequency of the platform."""
        return self.program.platform.frequency_hz

    @property
    def runtime_seconds(self) -> float:
        """Block runtime in seconds."""
        return self.total_cycles / self.frequency_hz

    def chip_trace(self, chip_id: int) -> ChipTrace:
        """Trace of one chip."""
        if chip_id not in self.chip_traces:
            raise SimulationError(f"no trace for chip {chip_id}")
        return self.chip_traces[chip_id]

    def breakdown_average(self) -> Dict[RuntimeCategory, float]:
        """Mean cycles per category across chips (the figure's stacked bars)."""
        result = {category: 0.0 for category in RuntimeCategory}
        for trace in self.chip_traces.values():
            for category, value in trace.cycles.items():
                result[category] += value
        return {
            category: value / self.num_chips for category, value in result.items()
        }

    def breakdown_of_critical_chip(self) -> Dict[RuntimeCategory, float]:
        """Breakdown of the chip that finished last."""
        critical = max(self.chip_traces.values(), key=lambda trace: trace.finish_cycle)
        return dict(critical.cycles)

    # ------------------------------------------------------------------
    # Traffic views (inputs of the energy model)
    # ------------------------------------------------------------------
    @property
    def total_l3_l2_bytes(self) -> float:
        """Bytes moved between L3 and L2, summed over chips."""
        return sum(trace.l3_l2_bytes for trace in self.chip_traces.values())

    @property
    def total_l2_l1_bytes(self) -> float:
        """Bytes moved between L2 and L1, summed over chips."""
        return sum(trace.l2_l1_bytes for trace in self.chip_traces.values())

    @property
    def total_c2c_bytes(self) -> float:
        """Bytes moved over chip-to-chip links (counted once, at the sender)."""
        return sum(trace.c2c_bytes_sent for trace in self.chip_traces.values())

    @property
    def total_compute_cycles(self) -> float:
        """Cluster-busy cycles summed over chips."""
        return sum(trace.compute_cycles for trace in self.chip_traces.values())
