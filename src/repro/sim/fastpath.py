"""Fast-path analytic execution of a :class:`BlockProgram`.

The event-driven engine in :mod:`repro.sim.engine` is fully general, but
the programs the scheduler emits do not need that generality: each chip's
schedule is a *linear* step list whose only cross-chip interaction is the
send/receive rendezvous.  This module executes the same semantics with a
direct per-chip-clock sweep — no :class:`~repro.sim.engine.Event` or
``Timeout`` allocation, no heap, no generator trampolining, and no
per-event name strings — which makes it several times faster on the
evaluation hot path.

Semantics (kept bit-identical to :class:`~repro.sim.simulator.
MultiChipSimulator`, enforced by the hypothesis equivalence suite in
``tests/sim/test_fastpath_equivalence.py``):

* every chip owns a local clock that advances step by step,
* kernel steps overlap (or serialise) their L2<->L1 staging exactly like
  the event engine's :meth:`_run_compute`,
* prefetches run in the background on the off-chip channel and only cost
  time at an explicit join,
* a send/receive pair completes at ``max(arrival times, receiver port
  free)`` plus the link transfer time, serialising transfers that
  converge on the same receiver's ingress port.

:func:`simulate_block_fast` raises :class:`UnsupportedProgramError` when
it meets a step shape it does not know; :func:`repro.sim.simulator.
simulate_block` catches that and falls back to the event engine, so
custom step types keep working (just without the fast path).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..core.schedule import (
    BlockProgram,
    ComputeStep,
    DmaChannelName,
    DmaStep,
    PrefetchJoinStep,
    PrefetchStep,
    RecvStep,
    RuntimeCategory,
    SendStep,
)
from ..core.scheduler import L3_STREAM_TILE_BYTES
from ..errors import SimulationError
from .trace import ChipTrace, SimulationResult

__all__ = ["UnsupportedProgramError", "simulate_block_fast"]


class UnsupportedProgramError(SimulationError):
    """The program contains a step shape the fast path cannot execute.

    Callers (notably :func:`repro.sim.simulator.simulate_block`) treat
    this as "use the event engine instead", not as a user-facing error.
    """


class _ChipState:
    """Mutable execution state of one chip during the sweep."""

    __slots__ = (
        "chip_id",
        "steps",
        "num_steps",
        "index",
        "clock",
        "prefetch_ready",
        "trace",
        "resume_span",
    )

    def __init__(self, chip_id: int, steps, trace: ChipTrace) -> None:
        self.chip_id = chip_id
        self.steps = steps
        self.num_steps = len(steps)
        self.index = 0
        self.clock = 0.0
        self.prefetch_ready = 0.0
        self.trace = trace
        #: ``(start, end)`` of a completed rendezvous this chip was blocked
        #: on, set by the partner chip just before re-queueing this one.
        self.resume_span: Optional[Tuple[float, float]] = None


def simulate_block_fast(program: BlockProgram) -> SimulationResult:
    """Execute ``program`` analytically and return its trace.

    Raises:
        UnsupportedProgramError: If any schedule contains a step type the
            fast path does not implement (callers fall back to the event
            engine).
        SimulationError: If the program deadlocks, a rendezvous has
            mismatched payload sizes, or a message is posted twice.
    """
    platform = program.platform
    chip_model = platform.chip
    link = platform.link
    frequency = platform.frequency_hz
    l2_l1 = chip_model.dma.l2_l1
    l3_l2 = chip_model.dma.l3_l2

    traces: Dict[int, ChipTrace] = {}
    states: Dict[int, _ChipState] = {}
    for chip_id in program.chip_ids:
        trace = ChipTrace(chip_id=chip_id)
        traces[chip_id] = trace
        states[chip_id] = _ChipState(
            chip_id, program.schedule(chip_id).steps, trace
        )

    # Rendezvous bookkeeping: key -> (role, state, num_bytes) of the side
    # that arrived first; the receiver ingress port serialises transfers.
    pending: Dict[Tuple[int, int, str], Tuple[str, _ChipState, int]] = {}
    port_free_at: Dict[int, float] = {}

    runnable: List[_ChipState] = list(states.values())
    while runnable:
        state = runnable.pop()
        _advance(
            state, pending, port_free_at, runnable,
            l2_l1, l3_l2, link, frequency,
        )

    unfinished = [
        f"chip{state.chip_id}"
        for state in states.values()
        if state.index < state.num_steps
    ]
    if unfinished:
        raise SimulationError(
            "simulation deadlocked; chips never finished: "
            + ", ".join(sorted(unfinished))
        )

    total_cycles = max(trace.finish_cycle for trace in traces.values())
    return SimulationResult(
        program=program, total_cycles=total_cycles, chip_traces=traces
    )


def _advance(
    state: _ChipState,
    pending,
    port_free_at,
    runnable,
    l2_l1,
    l3_l2,
    link,
    frequency,
) -> None:
    """Run one chip until it blocks on a rendezvous or finishes.

    Completing a rendezvous re-queues the partner chip on ``runnable``;
    attribution happens on each chip at its own blocked step, so every
    per-category sum accumulates in schedule order — the same order (and
    therefore the same floating-point result) as the event engine.
    """
    trace = state.trace
    steps = state.steps
    index = state.index
    num_steps = state.num_steps

    if state.resume_span is not None:
        # This chip was blocked on a message its partner just completed.
        start, end = state.resume_span
        state.resume_span = None
        index = _finish_message(state, steps[index], start, end, index)

    while index < num_steps:
        step = steps[index]
        if isinstance(step, ComputeStep):
            compute = step.compute_cycles
            dma_cycles = 0.0
            if step.l2_l1_bytes > 0:
                dma_cycles = l2_l1.transfer_cycles(int(step.l2_l1_bytes))
            if step.overlap_dma:
                duration = max(compute, dma_cycles)
                exposed = max(0.0, dma_cycles - compute)
            else:
                duration = compute + dma_cycles
                exposed = dma_cycles
            cycles = trace.cycles
            if compute:
                cycles[RuntimeCategory.COMPUTE] += compute
            if exposed:
                cycles[RuntimeCategory.DMA_L2_L1] += exposed
            trace.l2_l1_bytes += step.l2_l1_bytes
            state.clock += duration
        elif isinstance(step, DmaStep):
            if step.channel is DmaChannelName.L3_L2:
                cycles_spent = l3_l2.transfer_cycles(
                    int(step.num_bytes), step.num_transfers
                )
                if cycles_spent:
                    trace.cycles[RuntimeCategory.DMA_L3_L2] += cycles_spent
                trace.l3_l2_bytes += step.num_bytes
            else:
                cycles_spent = l2_l1.transfer_cycles(
                    int(step.num_bytes), step.num_transfers
                )
                if cycles_spent:
                    trace.cycles[RuntimeCategory.DMA_L2_L1] += cycles_spent
                trace.l2_l1_bytes += step.num_bytes
            state.clock += cycles_spent
        elif isinstance(step, PrefetchStep):
            transfers = max(1, math.ceil(step.num_bytes / L3_STREAM_TILE_BYTES))
            cycles_spent = l3_l2.transfer_cycles(int(step.num_bytes), transfers)
            start = max(state.clock, state.prefetch_ready)
            trace.l3_l2_bytes += step.num_bytes
            state.prefetch_ready = start + cycles_spent
        elif isinstance(step, PrefetchJoinStep):
            if state.prefetch_ready > state.clock:
                wait = state.prefetch_ready - state.clock
                trace.cycles[RuntimeCategory.DMA_L3_L2] += wait
                state.clock += wait
        elif isinstance(step, (SendStep, RecvStep)):
            if isinstance(step, SendStep):
                key = (state.chip_id, step.dst, step.tag)
                role = "send"
                receiver = step.dst
            else:
                key = (step.src, state.chip_id, step.tag)
                role = "recv"
                receiver = state.chip_id
            entry = pending.get(key)
            if entry is None:
                pending[key] = (role, state, step.num_bytes)
                state.index = index
                return  # blocked until the partner arrives
            other_role, other_state, other_bytes = entry
            if other_bytes != step.num_bytes:
                raise SimulationError(
                    f"message {key} size mismatch: "
                    f"{other_bytes} vs {step.num_bytes}"
                )
            if other_role == role:
                raise SimulationError(f"duplicate {role} for message {key}")
            del pending[key]
            # Both sides have arrived: the transfer starts once the later
            # arrival is in and the receiver's ingress port is free.
            start = max(
                max(other_state.clock, state.clock),
                port_free_at.get(receiver, 0.0),
            )
            end = start + link.transfer_cycles(step.num_bytes, frequency)
            port_free_at[receiver] = end
            other_state.resume_span = (start, end)
            runnable.append(other_state)
            index = _finish_message(state, step, start, end, index)
            continue
        else:
            state.index = index
            raise UnsupportedProgramError(
                f"chip {state.chip_id}: unknown step type {type(step).__name__}"
            )
        index += 1

    state.index = index
    trace.finish_cycle = state.clock


def _finish_message(
    state: _ChipState, step, start: float, end: float, index: int
) -> int:
    """Attribute one completed rendezvous on ``state`` and step past it."""
    trace = state.trace
    idle = max(0.0, start - state.clock)
    transfer = end - start
    if idle:
        trace.cycles[RuntimeCategory.IDLE] += idle
    if transfer:
        trace.cycles[RuntimeCategory.CHIP_TO_CHIP] += transfer
    if isinstance(step, SendStep):
        trace.c2c_bytes_sent += step.num_bytes
    state.clock = end
    return index + 1
