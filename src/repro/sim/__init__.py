"""Multi-chip simulation (the GVSoC substitute).

Two engines execute the same :class:`~repro.core.schedule.BlockProgram`
semantics: the analytic fast path (:mod:`repro.sim.fastpath`, the
default) and the generator-based event engine (:mod:`repro.sim.engine` +
:mod:`repro.sim.simulator`, used for per-step traces and custom step
types).  :func:`simulate_block` dispatches between them.
"""

from .engine import AllOf, Environment, Event, Process, Timeout
from .fastpath import simulate_block_fast
from .simulator import MultiChipSimulator, simulate_block
from .trace import ChipTrace, SimulationResult, TraceEvent

__all__ = [
    "AllOf",
    "ChipTrace",
    "Environment",
    "Event",
    "MultiChipSimulator",
    "Process",
    "SimulationResult",
    "Timeout",
    "TraceEvent",
    "simulate_block",
    "simulate_block_fast",
]
