"""Event-driven multi-chip simulation (the GVSoC substitute)."""

from .engine import AllOf, Environment, Event, Process, Timeout
from .simulator import MultiChipSimulator, simulate_block
from .trace import ChipTrace, SimulationResult, TraceEvent

__all__ = [
    "AllOf",
    "ChipTrace",
    "Environment",
    "Event",
    "MultiChipSimulator",
    "Process",
    "SimulationResult",
    "Timeout",
    "TraceEvent",
    "simulate_block",
]
