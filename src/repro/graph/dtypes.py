"""Element data types used to size tensors and traffic.

The deployment flow modelled by the paper (Deeploy on Siracusa) runs fully
quantised int8 inference, with wider accumulators inside kernels.  The cost
models in this library only need to know how many *bytes* each element of a
tensor occupies, so data types are represented by a small frozen descriptor
rather than by numpy dtypes; numerical verification code in
:mod:`repro.numerics` uses float64 regardless of the deployment data type.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DType:
    """A tensor element type.

    Attributes:
        name: Canonical lower-case name, e.g. ``"int8"``.
        size_bytes: Storage size of one element in bytes.
        is_float: Whether the type is a floating-point format.
    """

    name: str
    size_bytes: int
    is_float: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(
                f"dtype {self.name!r} must have a positive size, "
                f"got {self.size_bytes}"
            )

    def __str__(self) -> str:
        return self.name


#: 8-bit signed integer, the default weight/activation type for deployment.
INT8 = DType("int8", 1)

#: 16-bit signed integer, used for some intermediate tensors.
INT16 = DType("int16", 2)

#: 32-bit signed integer, the accumulator type of the int8 kernels.
INT32 = DType("int32", 4)

#: IEEE half precision float.
FLOAT16 = DType("float16", 2, is_float=True)

#: IEEE single precision float.
FLOAT32 = DType("float32", 4, is_float=True)

_REGISTRY = {
    dtype.name: dtype for dtype in (INT8, INT16, INT32, FLOAT16, FLOAT32)
}


def dtype_from_name(name: str) -> DType:
    """Look up a :class:`DType` by name.

    Args:
        name: One of ``int8``, ``int16``, ``int32``, ``float16``, ``float32``.

    Raises:
        KeyError: If the name is not a registered data type.
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown dtype {name!r}; known dtypes: {known}")
    return _REGISTRY[key]


def register_dtype(dtype: DType) -> None:
    """Register a custom :class:`DType` so it can be found by name.

    Registering a name twice with a different definition raises
    :class:`ValueError`; re-registering an identical definition is a no-op.
    """
    existing = _REGISTRY.get(dtype.name)
    if existing is not None and existing != dtype:
        raise ValueError(
            f"dtype {dtype.name!r} already registered with a different "
            f"definition ({existing} vs {dtype})"
        )
    _REGISTRY[dtype.name] = dtype
