"""Operator descriptors for Transformer workloads.

Operators are *cost descriptors*, not executable kernels: each one carries
the dimensions needed by the kernel cycle models in :mod:`repro.kernels` and
by the traffic accounting in the scheduler.  They are deliberately small,
immutable dataclasses so that partitioned copies of a block can be created
cheaply for every chip.

The operator taxonomy mirrors the structure of a Transformer block as
described in the paper (Sec. II-A):

* :class:`LinearOp` — a weight-bearing matrix multiply (the Q/K/V/output
  projections and the fully-connected layers).  Depending on the number of
  input rows it is executed as a GEMM (prompt/encoder mode) or a GEMV
  (autoregressive mode).
* :class:`AttentionMatmulOp` — the two weight-free matmuls inside the
  attention (``Q·K^T`` and ``A·V``), batched over attention heads.
* :class:`SoftmaxOp`, :class:`NormOp`, :class:`ActivationOp`,
  :class:`ElementwiseOp` — row-wise / element-wise operators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .dtypes import DType, INT8, INT32


class NormKind(str, enum.Enum):
    """Row-wise normalisation flavour."""

    LAYERNORM = "layernorm"
    RMSNORM = "rmsnorm"


class ActivationKind(str, enum.Enum):
    """Pointwise non-linearity flavour."""

    GELU = "gelu"
    SILU = "silu"
    RELU = "relu"


class ElementwiseKind(str, enum.Enum):
    """Binary element-wise operation flavour."""

    ADD = "add"
    MUL = "mul"
    COPY = "copy"


@dataclass(frozen=True)
class Operator:
    """Base class for all operator descriptors.

    Attributes:
        name: Identifier used in schedules and traces.
    """

    name: str

    @property
    def macs(self) -> int:
        """Number of multiply-accumulate operations performed."""
        return 0

    @property
    def elements(self) -> int:
        """Number of output elements produced."""
        return 0

    @property
    def weight_bytes(self) -> int:
        """Bytes of stationary parameters read by the operator."""
        return 0

    @property
    def input_bytes(self) -> int:
        """Bytes of activation input read by the operator."""
        return 0

    @property
    def output_bytes(self) -> int:
        """Bytes of activation output written by the operator."""
        return 0


@dataclass(frozen=True)
class LinearOp(Operator):
    """A fully-connected projection ``Y[rows, out] = X[rows, in] · W[in, out]``.

    Attributes:
        rows: Number of input rows (sequence positions processed).
        in_features: Input feature dimension.
        out_features: Output feature dimension.
        weight_dtype: Element type of the weight matrix.
        act_dtype: Element type of activations.
        has_bias: Whether a bias vector of length ``out_features`` is added.
    """

    rows: int
    in_features: int
    out_features: int
    weight_dtype: DType = INT8
    act_dtype: DType = INT8
    has_bias: bool = True

    def __post_init__(self) -> None:
        if self.rows < 0 or self.in_features < 0 or self.out_features < 0:
            raise ValueError(f"linear op {self.name!r} has negative dimensions")

    @property
    def is_gemv(self) -> bool:
        """True when the operator degenerates to a matrix-vector product."""
        return self.rows == 1

    @property
    def macs(self) -> int:
        return self.rows * self.in_features * self.out_features

    @property
    def elements(self) -> int:
        return self.rows * self.out_features

    @property
    def weight_bytes(self) -> int:
        weights = self.in_features * self.out_features * self.weight_dtype.size_bytes
        if self.has_bias:
            # Biases are kept as 32-bit accumulator-domain constants.
            weights += self.out_features * INT32.size_bytes
        return weights

    @property
    def input_bytes(self) -> int:
        return self.rows * self.in_features * self.act_dtype.size_bytes

    @property
    def output_bytes(self) -> int:
        return self.rows * self.out_features * self.act_dtype.size_bytes


@dataclass(frozen=True)
class AttentionMatmulOp(Operator):
    """A weight-free batched matmul inside the attention.

    Describes either the score computation ``Q·K^T`` (``rows = S_q``,
    ``inner = head_dim``, ``cols = S_kv``) or the context computation
    ``A·V`` (``rows = S_q``, ``inner = S_kv``, ``cols = head_dim``),
    batched over ``heads`` attention heads handled by one chip.

    Attributes:
        rows: Rows of the left operand per head.
        inner: Contraction dimension per head.
        cols: Columns of the right operand per head.
        heads: Number of attention heads processed by this operator.
        act_dtype: Element type of both operands.
    """

    rows: int
    inner: int
    cols: int
    heads: int
    act_dtype: DType = INT8

    def __post_init__(self) -> None:
        if min(self.rows, self.inner, self.cols, self.heads) < 0:
            raise ValueError(f"attention matmul {self.name!r} has negative dimensions")

    @property
    def macs(self) -> int:
        return self.heads * self.rows * self.inner * self.cols

    @property
    def elements(self) -> int:
        return self.heads * self.rows * self.cols

    @property
    def input_bytes(self) -> int:
        left = self.heads * self.rows * self.inner
        right = self.heads * self.inner * self.cols
        return (left + right) * self.act_dtype.size_bytes

    @property
    def output_bytes(self) -> int:
        return self.heads * self.rows * self.cols * self.act_dtype.size_bytes


@dataclass(frozen=True)
class SoftmaxOp(Operator):
    """Row-wise softmax over ``rows x cols`` elements, batched over heads."""

    rows: int
    cols: int
    heads: int = 1
    act_dtype: DType = INT8

    def __post_init__(self) -> None:
        if min(self.rows, self.cols, self.heads) < 0:
            raise ValueError(f"softmax {self.name!r} has negative dimensions")

    @property
    def elements(self) -> int:
        return self.heads * self.rows * self.cols

    @property
    def input_bytes(self) -> int:
        return self.elements * self.act_dtype.size_bytes

    @property
    def output_bytes(self) -> int:
        return self.elements * self.act_dtype.size_bytes


@dataclass(frozen=True)
class NormOp(Operator):
    """Row-wise normalisation (LayerNorm or RMSNorm) over ``rows x cols``."""

    rows: int
    cols: int
    kind: NormKind = NormKind.LAYERNORM
    act_dtype: DType = INT8

    def __post_init__(self) -> None:
        if self.rows < 0 or self.cols < 0:
            raise ValueError(f"norm {self.name!r} has negative dimensions")

    @property
    def elements(self) -> int:
        return self.rows * self.cols

    @property
    def weight_bytes(self) -> int:
        # Scale (and shift for LayerNorm) vectors, stored per feature.
        vectors = 2 if self.kind is NormKind.LAYERNORM else 1
        return vectors * self.cols * INT32.size_bytes

    @property
    def input_bytes(self) -> int:
        return self.elements * self.act_dtype.size_bytes

    @property
    def output_bytes(self) -> int:
        return self.elements * self.act_dtype.size_bytes


@dataclass(frozen=True)
class ActivationOp(Operator):
    """Pointwise non-linearity over ``rows x cols`` elements."""

    rows: int
    cols: int
    kind: ActivationKind = ActivationKind.GELU
    act_dtype: DType = INT8

    def __post_init__(self) -> None:
        if self.rows < 0 or self.cols < 0:
            raise ValueError(f"activation {self.name!r} has negative dimensions")

    @property
    def elements(self) -> int:
        return self.rows * self.cols

    @property
    def input_bytes(self) -> int:
        return self.elements * self.act_dtype.size_bytes

    @property
    def output_bytes(self) -> int:
        return self.elements * self.act_dtype.size_bytes


@dataclass(frozen=True)
class ElementwiseOp(Operator):
    """Binary element-wise operation (residual add, gating mul, copy)."""

    rows: int
    cols: int
    kind: ElementwiseKind = ElementwiseKind.ADD
    act_dtype: DType = INT8

    def __post_init__(self) -> None:
        if self.rows < 0 or self.cols < 0:
            raise ValueError(f"elementwise {self.name!r} has negative dimensions")

    @property
    def elements(self) -> int:
        return self.rows * self.cols

    @property
    def input_bytes(self) -> int:
        operands = 1 if self.kind is ElementwiseKind.COPY else 2
        return operands * self.elements * self.act_dtype.size_bytes

    @property
    def output_bytes(self) -> int:
        return self.elements * self.act_dtype.size_bytes


def total_macs(operators) -> int:
    """Sum of MAC operations over an iterable of operators."""
    return sum(op.macs for op in operators)


def total_weight_bytes(operators) -> int:
    """Sum of stationary parameter bytes over an iterable of operators."""
    return sum(op.weight_bytes for op in operators)
