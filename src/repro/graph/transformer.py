"""Transformer model configuration and per-block operator construction.

A :class:`TransformerConfig` captures the shape of an encoder or decoder
model (embedding dimension, FFN dimension, heads, layers, FFN flavour).
:func:`build_block_operators` turns a configuration plus a slice description
(how many heads / FFN columns a chip owns) into the concrete operator list a
chip executes for one Transformer block.  The same builder serves both the
single-chip baseline (the slice is the whole model) and every chip of a
partitioned system, which guarantees that the partitioned cost model and the
baseline cost model cannot drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..errors import ConfigurationError
from .dtypes import DType, INT8
from .ops import (
    ActivationKind,
    ActivationOp,
    AttentionMatmulOp,
    ElementwiseKind,
    ElementwiseOp,
    LinearOp,
    NormKind,
    NormOp,
    Operator,
    SoftmaxOp,
)


class FfnKind(str, enum.Enum):
    """Feed-forward network flavour.

    ``STANDARD`` is the two-matrix FFN described in the paper
    (``E x F`` followed by ``F x E`` with a GELU in between, as in BERT).
    ``GATED`` is the SwiGLU-style FFN used by the Llama family (three
    matrices: gate ``E x F``, up ``E x F``, down ``F x E``).
    """

    STANDARD = "standard"
    GATED = "gated"


class InferenceMode(str, enum.Enum):
    """The three inference regimes evaluated in the paper."""

    #: Token-by-token decoding with a KV-cache; GEMV-dominated.
    AUTOREGRESSIVE = "autoregressive"
    #: Parallel processing of a prompt; GEMM-dominated, fills the KV-cache.
    PROMPT = "prompt"
    #: Encoder-only processing of a full sequence (no KV-cache).
    ENCODER = "encoder"


@dataclass(frozen=True)
class TransformerConfig:
    """Shape description of a Transformer model.

    Attributes:
        name: Model name used in reports.
        embed_dim: Embedding dimension ``E``.
        ffn_dim: Intermediate (FFN) dimension ``F``.
        num_heads: Number of attention heads ``H``.
        num_layers: Number of Transformer blocks.
        head_dim: Per-head projection dimension ``P``.  Defaults to
            ``embed_dim // num_heads``.
        vocab_size: Vocabulary size (used only for parameter counting).
        ffn_kind: Feed-forward flavour (standard or gated).
        norm_kind: Normalisation flavour (LayerNorm or RMSNorm).
        activation: Pointwise non-linearity in the FFN.
        weight_dtype: Deployment data type of weights.
        act_dtype: Deployment data type of activations.
        tie_embeddings: Whether input and output embeddings share storage.
    """

    name: str
    embed_dim: int
    ffn_dim: int
    num_heads: int
    num_layers: int
    head_dim: Optional[int] = None
    vocab_size: int = 32000
    ffn_kind: FfnKind = FfnKind.STANDARD
    norm_kind: NormKind = NormKind.LAYERNORM
    activation: ActivationKind = ActivationKind.GELU
    weight_dtype: DType = INT8
    act_dtype: DType = INT8
    tie_embeddings: bool = True

    def __post_init__(self) -> None:
        if self.embed_dim <= 0 or self.ffn_dim <= 0:
            raise ConfigurationError(
                f"model {self.name!r}: embed_dim and ffn_dim must be positive"
            )
        if self.num_heads <= 0 or self.num_layers <= 0:
            raise ConfigurationError(
                f"model {self.name!r}: num_heads and num_layers must be positive"
            )
        if self.head_dim is None:
            if self.embed_dim % self.num_heads != 0:
                raise ConfigurationError(
                    f"model {self.name!r}: embed_dim {self.embed_dim} is not "
                    f"divisible by num_heads {self.num_heads}; "
                    "specify head_dim explicitly"
                )
            object.__setattr__(self, "head_dim", self.embed_dim // self.num_heads)
        if self.head_dim <= 0:
            raise ConfigurationError(f"model {self.name!r}: head_dim must be positive")
        if self.vocab_size <= 0:
            raise ConfigurationError(
                f"model {self.name!r}: vocab_size must be positive"
            )

    def __getstate__(self) -> dict:
        # The content-hash memo (repro.api.session) is per-process state
        # and would bloat every cached evaluation.
        state = dict(self.__dict__)
        state.pop("_repro_canonical_memo", None)
        return state

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def projection_dim(self) -> int:
        """Total projection width ``P * H`` of the attention."""
        return self.head_dim * self.num_heads

    @property
    def num_ffn_matrices(self) -> int:
        """Number of weight matrices in the FFN (2 standard, 3 gated)."""
        return 3 if self.ffn_kind is FfnKind.GATED else 2

    @property
    def attention_weight_params(self) -> int:
        """Parameters of the four attention projections of one block."""
        qkv = 3 * self.embed_dim * self.projection_dim
        out = self.projection_dim * self.embed_dim
        return qkv + out

    @property
    def ffn_weight_params(self) -> int:
        """Parameters of the FFN matrices of one block."""
        return self.num_ffn_matrices * self.embed_dim * self.ffn_dim

    @property
    def block_weight_params(self) -> int:
        """Parameters of one Transformer block (attention + FFN)."""
        return self.attention_weight_params + self.ffn_weight_params

    @property
    def block_weight_bytes(self) -> int:
        """Deployment bytes of one block's weights."""
        return self.block_weight_params * self.weight_dtype.size_bytes

    @property
    def embedding_params(self) -> int:
        """Parameters of the token embedding (and LM head when untied)."""
        tables = 1 if self.tie_embeddings else 2
        return tables * self.vocab_size * self.embed_dim

    @property
    def total_params(self) -> int:
        """Total parameter count of the model."""
        return self.num_layers * self.block_weight_params + self.embedding_params

    @property
    def model_weight_bytes(self) -> int:
        """Deployment bytes of all block weights (embeddings excluded)."""
        return self.num_layers * self.block_weight_bytes

    def scaled_heads(self, num_heads: int, name: Optional[str] = None) -> "TransformerConfig":
        """Return a copy with a different head count, keeping ``P * H`` fixed.

        This mirrors the paper's scalability study, where the TinyLlama head
        count is increased from 8 to 64 "while keeping the other parameters
        constant": the total projection width stays ``embed_dim`` and the
        per-head dimension shrinks accordingly.
        """
        if num_heads <= 0:
            raise ConfigurationError("num_heads must be positive")
        if self.projection_dim % num_heads != 0:
            raise ConfigurationError(
                f"projection width {self.projection_dim} is not divisible by "
                f"{num_heads} heads"
            )
        return replace(
            self,
            name=name or f"{self.name}-{num_heads}h",
            num_heads=num_heads,
            head_dim=self.projection_dim // num_heads,
        )


@dataclass(frozen=True)
class BlockSlice:
    """The portion of one Transformer block assigned to a single chip.

    Attributes:
        num_heads: Attention heads owned by the chip.
        ffn_cols: Columns of the FFN intermediate dimension owned by the chip.
        holds_norms: Whether this chip applies the post-reduction
            normalisations (only the reduction root does, per the paper).
        holds_residual: Whether this chip merges the residual (skip)
            connection into the reduction (only the reduction root does).
    """

    num_heads: int
    ffn_cols: int
    holds_norms: bool = True
    holds_residual: bool = True

    def __post_init__(self) -> None:
        if self.num_heads < 0 or self.ffn_cols < 0:
            raise ConfigurationError("block slice dimensions must be non-negative")


@dataclass(frozen=True)
class BlockOperators:
    """Operator lists of one block slice, split by block stage."""

    attention: List[Operator] = field(default_factory=list)
    ffn: List[Operator] = field(default_factory=list)

    @property
    def all_operators(self) -> List[Operator]:
        """Attention then FFN operators, in execution order."""
        return list(self.attention) + list(self.ffn)


def full_block_slice(config: TransformerConfig) -> BlockSlice:
    """Return the slice describing an entire (un-partitioned) block."""
    return BlockSlice(num_heads=config.num_heads, ffn_cols=config.ffn_dim)


def build_block_operators(
    config: TransformerConfig,
    *,
    query_rows: int,
    kv_rows: int,
    attended_positions: int,
    slice_: Optional[BlockSlice] = None,
) -> BlockOperators:
    """Build the operator list one chip executes for one Transformer block.

    Args:
        config: The model configuration.
        query_rows: Number of query positions processed (``1`` in
            autoregressive mode, the sequence length otherwise).
        kv_rows: Number of *new* key/value positions projected in this pass
            (``1`` in autoregressive mode, the sequence length otherwise).
        attended_positions: Number of positions attended to by each query
            (the KV-cache length in autoregressive mode, the sequence length
            otherwise).
        slice_: The per-chip slice.  Defaults to the full block.

    Returns:
        The operator lists for the attention stage and the FFN stage.  The
        two inter-chip synchronisations of the paper's scheme happen *after*
        each stage and are not represented here; they are communication
        steps, produced by :mod:`repro.core.collectives`.
    """
    if query_rows <= 0 or kv_rows < 0 or attended_positions < 0:
        raise ConfigurationError(
            "query_rows must be positive and kv_rows/attended_positions "
            "non-negative"
        )
    slice_ = slice_ or full_block_slice(config)
    heads = slice_.num_heads
    head_dim = config.head_dim
    embed = config.embed_dim
    proj = heads * head_dim
    weight_dtype = config.weight_dtype
    act_dtype = config.act_dtype

    attention: List[Operator] = []
    if heads > 0:
        attention.append(
            LinearOp(
                name="attn.query_proj",
                rows=query_rows,
                in_features=embed,
                out_features=proj,
                weight_dtype=weight_dtype,
                act_dtype=act_dtype,
            )
        )
        attention.append(
            LinearOp(
                name="attn.key_proj",
                rows=kv_rows,
                in_features=embed,
                out_features=proj,
                weight_dtype=weight_dtype,
                act_dtype=act_dtype,
            )
        )
        attention.append(
            LinearOp(
                name="attn.value_proj",
                rows=kv_rows,
                in_features=embed,
                out_features=proj,
                weight_dtype=weight_dtype,
                act_dtype=act_dtype,
            )
        )
        if attended_positions > kv_rows:
            # Autoregressive mode: append the new K/V rows to the cache.
            attention.append(
                ElementwiseOp(
                    name="attn.kv_cache_append",
                    rows=2 * kv_rows,
                    cols=proj,
                    kind=ElementwiseKind.COPY,
                    act_dtype=act_dtype,
                )
            )
        attention.append(
            AttentionMatmulOp(
                name="attn.scores",
                rows=query_rows,
                inner=head_dim,
                cols=attended_positions,
                heads=heads,
                act_dtype=act_dtype,
            )
        )
        attention.append(
            SoftmaxOp(
                name="attn.softmax",
                rows=query_rows,
                cols=attended_positions,
                heads=heads,
                act_dtype=act_dtype,
            )
        )
        attention.append(
            AttentionMatmulOp(
                name="attn.context",
                rows=query_rows,
                inner=attended_positions,
                cols=head_dim,
                heads=heads,
                act_dtype=act_dtype,
            )
        )
        attention.append(
            LinearOp(
                name="attn.output_proj",
                rows=query_rows,
                in_features=proj,
                out_features=embed,
                weight_dtype=weight_dtype,
                act_dtype=act_dtype,
            )
        )
    if slice_.holds_residual:
        attention.append(
            ElementwiseOp(
                name="attn.residual_add",
                rows=query_rows,
                cols=embed,
                kind=ElementwiseKind.ADD,
                act_dtype=act_dtype,
            )
        )
    if slice_.holds_norms:
        attention.append(
            NormOp(
                name="attn.norm",
                rows=query_rows,
                cols=embed,
                kind=config.norm_kind,
                act_dtype=act_dtype,
            )
        )

    ffn: List[Operator] = []
    ffn_cols = slice_.ffn_cols
    if ffn_cols > 0:
        ffn.append(
            LinearOp(
                name="ffn.up_proj",
                rows=query_rows,
                in_features=embed,
                out_features=ffn_cols,
                weight_dtype=weight_dtype,
                act_dtype=act_dtype,
            )
        )
        if config.ffn_kind is FfnKind.GATED:
            ffn.append(
                LinearOp(
                    name="ffn.gate_proj",
                    rows=query_rows,
                    in_features=embed,
                    out_features=ffn_cols,
                    weight_dtype=weight_dtype,
                    act_dtype=act_dtype,
                )
            )
        ffn.append(
            ActivationOp(
                name="ffn.activation",
                rows=query_rows,
                cols=ffn_cols,
                kind=config.activation,
                act_dtype=act_dtype,
            )
        )
        if config.ffn_kind is FfnKind.GATED:
            ffn.append(
                ElementwiseOp(
                    name="ffn.gate_mul",
                    rows=query_rows,
                    cols=ffn_cols,
                    kind=ElementwiseKind.MUL,
                    act_dtype=act_dtype,
                )
            )
        ffn.append(
            LinearOp(
                name="ffn.down_proj",
                rows=query_rows,
                in_features=ffn_cols,
                out_features=embed,
                weight_dtype=weight_dtype,
                act_dtype=act_dtype,
            )
        )
    if slice_.holds_residual:
        ffn.append(
            ElementwiseOp(
                name="ffn.residual_add",
                rows=query_rows,
                cols=embed,
                kind=ElementwiseKind.ADD,
                act_dtype=act_dtype,
            )
        )
    if slice_.holds_norms:
        ffn.append(
            NormOp(
                name="ffn.norm",
                rows=query_rows,
                cols=embed,
                kind=config.norm_kind,
                act_dtype=act_dtype,
            )
        )
    return BlockOperators(attention=attention, ffn=ffn)


def slice_weight_bytes(config: TransformerConfig, slice_: BlockSlice) -> int:
    """Deployment bytes of one block's weight *slice* held by a chip.

    This is the quantity that determines on-chip residency: the attention
    projections are sliced along the head dimension and the FFN matrices
    along the intermediate dimension, so a chip owning ``h`` heads and ``f``
    FFN columns holds ``(3·E·P·h + P·h·E) + k·E·f`` weights, where ``k`` is
    the number of FFN matrices.
    """
    proj = slice_.num_heads * config.head_dim
    attention = 3 * config.embed_dim * proj + proj * config.embed_dim
    ffn = config.num_ffn_matrices * config.embed_dim * slice_.ffn_cols
    return (attention + ffn) * config.weight_dtype.size_bytes
