"""Transformer model configuration and per-block operator construction.

A :class:`TransformerConfig` captures the shape of an encoder or decoder
model (embedding dimension, FFN dimension, heads, layers, FFN flavour).
:func:`build_block_operators` turns a configuration plus a slice description
(how many heads / FFN columns a chip owns) into the concrete operator list a
chip executes for one Transformer block.  The same builder serves both the
single-chip baseline (the slice is the whole model) and every chip of a
partitioned system, which guarantees that the partitioned cost model and the
baseline cost model cannot drift apart.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..errors import ConfigurationError
from .dtypes import DType, INT8
from .ops import (
    ActivationKind,
    ActivationOp,
    AttentionMatmulOp,
    ElementwiseKind,
    ElementwiseOp,
    LinearOp,
    NormKind,
    NormOp,
    Operator,
    SoftmaxOp,
)


class FfnKind(str, enum.Enum):
    """Feed-forward network flavour.

    ``STANDARD`` is the two-matrix FFN described in the paper
    (``E x F`` followed by ``F x E`` with a GELU in between, as in BERT).
    ``GATED`` is the SwiGLU-style FFN used by the Llama family (three
    matrices: gate ``E x F``, up ``E x F``, down ``F x E``).
    """

    STANDARD = "standard"
    GATED = "gated"


class InferenceMode(str, enum.Enum):
    """The three inference regimes evaluated in the paper."""

    #: Token-by-token decoding with a KV-cache; GEMV-dominated.
    AUTOREGRESSIVE = "autoregressive"
    #: Parallel processing of a prompt; GEMM-dominated, fills the KV-cache.
    PROMPT = "prompt"
    #: Encoder-only processing of a full sequence (no KV-cache).
    ENCODER = "encoder"


@dataclass(frozen=True)
class TransformerConfig:
    """Shape description of a Transformer model.

    Attributes:
        name: Model name used in reports.
        embed_dim: Embedding dimension ``E``.
        ffn_dim: Intermediate (FFN) dimension ``F``.
        num_heads: Number of attention heads ``H``.
        num_layers: Number of Transformer blocks.
        head_dim: Per-head projection dimension ``P``.  Defaults to
            ``embed_dim // num_heads``.
        vocab_size: Vocabulary size (used only for parameter counting).
        ffn_kind: Feed-forward flavour (standard or gated).
        norm_kind: Normalisation flavour (LayerNorm or RMSNorm).
        activation: Pointwise non-linearity in the FFN.
        weight_dtype: Deployment data type of weights.
        act_dtype: Deployment data type of activations.
        tie_embeddings: Whether input and output embeddings share storage.
        kv_heads: Number of key/value heads.  Defaults to ``num_heads``
            (multi-head attention).  Fewer KV heads than query heads gives
            grouped-query attention (GQA); ``kv_heads=1`` is multi-query
            attention (MQA).  Must divide ``num_heads`` evenly.
        num_experts: Number of FFN experts.  ``1`` (default) is a dense
            FFN; values above one describe a mixture-of-experts block in
            which each token is routed to ``moe_top_k`` experts.
        moe_top_k: Experts activated per token (``1 <= top_k <= experts``).
        attention_window: Optional sliding-window size.  When set, each
            query attends to at most this many positions regardless of the
            sequence length (long-context decode with a bounded KV-cache).
        kv_cache_dtype: Optional storage dtype of the KV-cache.  Defaults
            to ``act_dtype``; a narrower type models quantised caches.
        cross_attention: Whether each block carries a second
            (encoder-memory) attention stage, as in a decoder of an
            encoder/decoder model.
    """

    name: str
    embed_dim: int
    ffn_dim: int
    num_heads: int
    num_layers: int
    head_dim: Optional[int] = None
    vocab_size: int = 32000
    ffn_kind: FfnKind = FfnKind.STANDARD
    norm_kind: NormKind = NormKind.LAYERNORM
    activation: ActivationKind = ActivationKind.GELU
    weight_dtype: DType = INT8
    act_dtype: DType = INT8
    tie_embeddings: bool = True
    kv_heads: Optional[int] = None
    num_experts: int = 1
    moe_top_k: int = 1
    attention_window: Optional[int] = None
    kv_cache_dtype: Optional[DType] = None
    cross_attention: bool = False

    def __post_init__(self) -> None:
        if self.embed_dim <= 0 or self.ffn_dim <= 0:
            raise ConfigurationError(
                f"model {self.name!r}: embed_dim and ffn_dim must be positive"
            )
        if self.num_heads <= 0 or self.num_layers <= 0:
            raise ConfigurationError(
                f"model {self.name!r}: num_heads and num_layers must be positive"
            )
        if self.head_dim is None:
            if self.embed_dim % self.num_heads != 0:
                raise ConfigurationError(
                    f"model {self.name!r}: embed_dim {self.embed_dim} is not "
                    f"divisible by num_heads {self.num_heads}; "
                    "specify head_dim explicitly"
                )
            object.__setattr__(self, "head_dim", self.embed_dim // self.num_heads)
        if self.head_dim <= 0:
            raise ConfigurationError(f"model {self.name!r}: head_dim must be positive")
        if self.vocab_size <= 0:
            raise ConfigurationError(
                f"model {self.name!r}: vocab_size must be positive"
            )
        if self.kv_heads is None:
            object.__setattr__(self, "kv_heads", self.num_heads)
        if self.kv_heads <= 0 or self.num_heads % self.kv_heads != 0:
            raise ConfigurationError(
                f"model {self.name!r}: kv_heads {self.kv_heads} must be "
                f"positive and divide num_heads {self.num_heads} evenly"
            )
        if self.num_experts <= 0:
            raise ConfigurationError(
                f"model {self.name!r}: num_experts must be positive"
            )
        if not 1 <= self.moe_top_k <= self.num_experts:
            raise ConfigurationError(
                f"model {self.name!r}: moe_top_k {self.moe_top_k} must lie in "
                f"[1, num_experts={self.num_experts}]"
            )
        if self.attention_window is not None and self.attention_window <= 0:
            raise ConfigurationError(
                f"model {self.name!r}: attention_window must be positive"
            )

    def __getstate__(self) -> dict:
        # The content-hash memo (repro.api.session) is per-process state
        # and would bloat every cached evaluation.
        state = dict(self.__dict__)
        state.pop("_repro_canonical_memo", None)
        return state

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def projection_dim(self) -> int:
        """Total projection width ``P * H`` of the attention."""
        return self.head_dim * self.num_heads

    @property
    def kv_dim(self) -> int:
        """Total key/value projection width ``P * H_kv``."""
        return self.head_dim * self.kv_heads

    @property
    def heads_per_kv_group(self) -> int:
        """Query heads sharing each key/value head (1 for MHA)."""
        return self.num_heads // self.kv_heads

    @property
    def is_moe(self) -> bool:
        """Whether the FFN is a mixture of experts."""
        return self.num_experts > 1

    @property
    def kv_dtype(self) -> DType:
        """Storage dtype of the KV-cache (``kv_cache_dtype`` or ``act_dtype``)."""
        return self.kv_cache_dtype or self.act_dtype

    @property
    def num_attention_stages(self) -> int:
        """Attention sub-stages per block (2 with cross-attention)."""
        return 2 if self.cross_attention else 1

    @property
    def num_ffn_matrices(self) -> int:
        """Number of weight matrices in the FFN (2 standard, 3 gated)."""
        return 3 if self.ffn_kind is FfnKind.GATED else 2

    @property
    def router_params(self) -> int:
        """Parameters of the MoE router (``E x num_experts``; 0 when dense)."""
        return self.embed_dim * self.num_experts if self.is_moe else 0

    @property
    def attention_weight_params(self) -> int:
        """Parameters of the attention projections of one block.

        Query and output projections are ``E x (P*H)``; key and value
        projections are ``E x (P*H_kv)`` so GQA/MQA models carry fewer KV
        parameters.  Cross-attention doubles the whole set (the second
        stage attends to the encoder memory with its own projections).
        """
        query_out = 2 * self.embed_dim * self.projection_dim
        key_value = 2 * self.embed_dim * self.kv_dim
        return self.num_attention_stages * (query_out + key_value)

    @property
    def ffn_weight_params(self) -> int:
        """Parameters of the FFN matrices of one block (all experts)."""
        expert = self.num_ffn_matrices * self.embed_dim * self.ffn_dim
        return self.num_experts * expert + self.router_params

    @property
    def block_weight_params(self) -> int:
        """Parameters of one Transformer block (attention + FFN)."""
        return self.attention_weight_params + self.ffn_weight_params

    @property
    def block_weight_bytes(self) -> int:
        """Deployment bytes of one block's weights."""
        return self.block_weight_params * self.weight_dtype.size_bytes

    @property
    def embedding_params(self) -> int:
        """Parameters of the token embedding (and LM head when untied)."""
        tables = 1 if self.tie_embeddings else 2
        return tables * self.vocab_size * self.embed_dim

    @property
    def total_params(self) -> int:
        """Total parameter count of the model."""
        return self.num_layers * self.block_weight_params + self.embedding_params

    @property
    def model_weight_bytes(self) -> int:
        """Deployment bytes of all block weights (embeddings excluded)."""
        return self.num_layers * self.block_weight_bytes

    def moe_expert_rows(self, query_rows: int) -> int:
        """Rows processed per expert under uniform top-k routing.

        The cost model assumes a load-balanced router: ``query_rows``
        tokens each select ``moe_top_k`` experts, so every expert sees
        ``ceil(query_rows * top_k / num_experts)`` rows.
        """
        return -(-query_rows * self.moe_top_k // self.num_experts)

    def scaled_heads(self, num_heads: int, name: Optional[str] = None) -> "TransformerConfig":
        """Return a copy with a different head count, keeping ``P * H`` fixed.

        This mirrors the paper's scalability study, where the TinyLlama head
        count is increased from 8 to 64 "while keeping the other parameters
        constant": the total projection width stays ``embed_dim`` and the
        per-head dimension shrinks accordingly.  The query-to-KV head ratio
        is preserved, so an MHA model stays MHA and a GQA model keeps its
        grouping factor (the KV width ``P * H_kv`` is unchanged).
        """
        if num_heads <= 0:
            raise ConfigurationError("num_heads must be positive")
        if self.projection_dim % num_heads != 0:
            raise ConfigurationError(
                f"projection width {self.projection_dim} is not divisible by "
                f"{num_heads} heads"
            )
        ratio = self.heads_per_kv_group
        if num_heads % ratio != 0:
            raise ConfigurationError(
                f"{num_heads} heads cannot preserve the {ratio}:1 "
                "query-to-KV head ratio"
            )
        return replace(
            self,
            name=name or f"{self.name}-{num_heads}h",
            num_heads=num_heads,
            head_dim=self.projection_dim // num_heads,
            kv_heads=num_heads // ratio,
        )


@dataclass(frozen=True)
class BlockSlice:
    """The portion of one Transformer block assigned to a single chip.

    Attributes:
        num_heads: Attention heads owned by the chip.
        ffn_cols: Columns of the FFN intermediate dimension owned by the
            chip.  For mixture-of-experts models this is the per-expert
            intermediate width held locally (experts are never split).
        holds_norms: Whether this chip applies the post-reduction
            normalisations (only the reduction root does, per the paper).
        holds_residual: Whether this chip merges the residual (skip)
            connection into the reduction (only the reduction root does).
        kv_heads: Key/value heads held by the chip.  ``None`` (default)
            derives a conservative width from ``num_heads`` and the model's
            grouping factor; partitioners pass the exact coverage.
        num_experts: FFN experts owned by the chip.  ``None`` (default)
            means all of the model's experts (un-partitioned slice).
    """

    num_heads: int
    ffn_cols: int
    holds_norms: bool = True
    holds_residual: bool = True
    kv_heads: Optional[int] = None
    num_experts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_heads < 0 or self.ffn_cols < 0:
            raise ConfigurationError("block slice dimensions must be non-negative")
        if self.kv_heads is not None and self.kv_heads < 0:
            raise ConfigurationError("block slice kv_heads must be non-negative")
        if self.num_experts is not None and self.num_experts < 0:
            raise ConfigurationError("block slice num_experts must be non-negative")


@dataclass(frozen=True)
class BlockOperators:
    """Operator lists of one block slice, split by block stage."""

    attention: List[Operator] = field(default_factory=list)
    ffn: List[Operator] = field(default_factory=list)

    @property
    def all_operators(self) -> List[Operator]:
        """Attention then FFN operators, in execution order."""
        return list(self.attention) + list(self.ffn)


def full_block_slice(config: TransformerConfig) -> BlockSlice:
    """Return the slice describing an entire (un-partitioned) block."""
    return BlockSlice(
        num_heads=config.num_heads,
        ffn_cols=config.ffn_dim,
        kv_heads=config.kv_heads,
        num_experts=config.num_experts,
    )


def slice_kv_heads(config: TransformerConfig, slice_: BlockSlice) -> int:
    """Key/value heads a slice materialises.

    When the slice does not state its KV coverage explicitly, fall back to
    one KV head per query head, capped at the model total — exact for MHA
    and for full slices of any model; a conservative upper bound for
    partial GQA slices (partitioners always pass the exact coverage).
    """
    if slice_.kv_heads is not None:
        return slice_.kv_heads
    return min(slice_.num_heads, config.kv_heads)


def slice_num_experts(config: TransformerConfig, slice_: BlockSlice) -> int:
    """FFN experts a slice owns (all of them unless stated otherwise)."""
    if slice_.num_experts is not None:
        return slice_.num_experts
    return config.num_experts


def _attention_stage_ops(
    prefix: str,
    config: TransformerConfig,
    slice_: BlockSlice,
    *,
    query_rows: int,
    kv_rows: int,
    attended_positions: int,
) -> List[Operator]:
    """Operators of one attention sub-stage (self- or cross-attention).

    ``kv_rows`` is the number of *new* key/value rows projected in this
    pass.  For cross-attention it is ``0``: the encoder memory is projected
    once when the source sequence is encoded, so the decode pass reads the
    cached K/V without re-projecting (the cross K/V weights still count
    towards the slice's resident bytes).
    """
    heads = slice_.num_heads
    head_dim = config.head_dim
    embed = config.embed_dim
    proj = heads * head_dim
    kv_proj = slice_kv_heads(config, slice_) * head_dim
    weight_dtype = config.weight_dtype
    act_dtype = config.act_dtype

    ops: List[Operator] = [
        LinearOp(
            name=f"{prefix}.query_proj",
            rows=query_rows,
            in_features=embed,
            out_features=proj,
            weight_dtype=weight_dtype,
            act_dtype=act_dtype,
        )
    ]
    if kv_rows > 0:
        ops.append(
            LinearOp(
                name=f"{prefix}.key_proj",
                rows=kv_rows,
                in_features=embed,
                out_features=kv_proj,
                weight_dtype=weight_dtype,
                act_dtype=act_dtype,
            )
        )
        ops.append(
            LinearOp(
                name=f"{prefix}.value_proj",
                rows=kv_rows,
                in_features=embed,
                out_features=kv_proj,
                weight_dtype=weight_dtype,
                act_dtype=act_dtype,
            )
        )
        if attended_positions > kv_rows:
            # Autoregressive mode: append the new K/V rows to the cache.
            ops.append(
                ElementwiseOp(
                    name=f"{prefix}.kv_cache_append",
                    rows=2 * kv_rows,
                    cols=kv_proj,
                    kind=ElementwiseKind.COPY,
                    act_dtype=act_dtype,
                )
            )
    ops.append(
        AttentionMatmulOp(
            name=f"{prefix}.scores",
            rows=query_rows,
            inner=head_dim,
            cols=attended_positions,
            heads=heads,
            act_dtype=act_dtype,
        )
    )
    ops.append(
        SoftmaxOp(
            name=f"{prefix}.softmax",
            rows=query_rows,
            cols=attended_positions,
            heads=heads,
            act_dtype=act_dtype,
        )
    )
    ops.append(
        AttentionMatmulOp(
            name=f"{prefix}.context",
            rows=query_rows,
            inner=attended_positions,
            cols=head_dim,
            heads=heads,
            act_dtype=act_dtype,
        )
    )
    ops.append(
        LinearOp(
            name=f"{prefix}.output_proj",
            rows=query_rows,
            in_features=proj,
            out_features=embed,
            weight_dtype=weight_dtype,
            act_dtype=act_dtype,
        )
    )
    return ops


def _expert_ffn_ops(
    prefix: str,
    config: TransformerConfig,
    *,
    rows: int,
    ffn_cols: int,
) -> List[Operator]:
    """Operators of one (dense or per-expert) FFN with ``ffn_cols`` width."""
    embed = config.embed_dim
    weight_dtype = config.weight_dtype
    act_dtype = config.act_dtype
    ops: List[Operator] = [
        LinearOp(
            name=f"{prefix}.up_proj",
            rows=rows,
            in_features=embed,
            out_features=ffn_cols,
            weight_dtype=weight_dtype,
            act_dtype=act_dtype,
        )
    ]
    if config.ffn_kind is FfnKind.GATED:
        ops.append(
            LinearOp(
                name=f"{prefix}.gate_proj",
                rows=rows,
                in_features=embed,
                out_features=ffn_cols,
                weight_dtype=weight_dtype,
                act_dtype=act_dtype,
            )
        )
    ops.append(
        ActivationOp(
            name=f"{prefix}.activation",
            rows=rows,
            cols=ffn_cols,
            kind=config.activation,
            act_dtype=act_dtype,
        )
    )
    if config.ffn_kind is FfnKind.GATED:
        ops.append(
            ElementwiseOp(
                name=f"{prefix}.gate_mul",
                rows=rows,
                cols=ffn_cols,
                kind=ElementwiseKind.MUL,
                act_dtype=act_dtype,
            )
        )
    ops.append(
        LinearOp(
            name=f"{prefix}.down_proj",
            rows=rows,
            in_features=ffn_cols,
            out_features=embed,
            weight_dtype=weight_dtype,
            act_dtype=act_dtype,
        )
    )
    return ops


def build_block_operators(
    config: TransformerConfig,
    *,
    query_rows: int,
    kv_rows: int,
    attended_positions: int,
    slice_: Optional[BlockSlice] = None,
    cross_attended_positions: Optional[int] = None,
) -> BlockOperators:
    """Build the operator list one chip executes for one Transformer block.

    Args:
        config: The model configuration.
        query_rows: Number of query positions processed (``1`` in
            autoregressive mode, the sequence length otherwise).
        kv_rows: Number of *new* key/value positions projected in this pass
            (``1`` in autoregressive mode, the sequence length otherwise).
        attended_positions: Number of positions attended to by each query
            (the KV-cache length in autoregressive mode, the sequence length
            otherwise).
        slice_: The per-chip slice.  Defaults to the full block.
        cross_attended_positions: Encoder-memory length attended to by the
            cross-attention stage of encoder/decoder models.  Defaults to
            ``attended_positions``.  Ignored for decoder-only models.

    Returns:
        The operator lists for the attention stage and the FFN stage.  The
        two inter-chip synchronisations of the paper's scheme happen *after*
        each stage and are not represented here; they are communication
        steps, produced by :mod:`repro.core.collectives`.  Cross-attention
        rides inside the attention stage (its partial outputs join the same
        all-reduce), and mixture-of-experts FFNs ride inside the FFN stage:
        the stage broadcast already delivers the full activation vector to
        every chip, so each chip routes locally to the experts it owns and
        the stage all-reduce combines the expert outputs.
    """
    if query_rows <= 0 or kv_rows < 0 or attended_positions < 0:
        raise ConfigurationError(
            "query_rows must be positive and kv_rows/attended_positions "
            "non-negative"
        )
    slice_ = slice_ or full_block_slice(config)
    heads = slice_.num_heads
    embed = config.embed_dim
    act_dtype = config.act_dtype

    attention: List[Operator] = []
    if heads > 0:
        attention.extend(
            _attention_stage_ops(
                "attn",
                config,
                slice_,
                query_rows=query_rows,
                kv_rows=kv_rows,
                attended_positions=attended_positions,
            )
        )
        if config.cross_attention:
            cross = (
                cross_attended_positions
                if cross_attended_positions is not None
                else attended_positions
            )
            attention.extend(
                _attention_stage_ops(
                    "xattn",
                    config,
                    slice_,
                    query_rows=query_rows,
                    kv_rows=0,
                    attended_positions=cross,
                )
            )
    if slice_.holds_residual:
        attention.append(
            ElementwiseOp(
                name="attn.residual_add",
                rows=query_rows,
                cols=embed,
                kind=ElementwiseKind.ADD,
                act_dtype=act_dtype,
            )
        )
    if slice_.holds_norms:
        attention.append(
            NormOp(
                name="attn.norm",
                rows=query_rows,
                cols=embed,
                kind=config.norm_kind,
                act_dtype=act_dtype,
            )
        )

    ffn: List[Operator] = []
    ffn_cols = slice_.ffn_cols
    if config.is_moe:
        experts = slice_num_experts(config, slice_)
        if experts > 0 and ffn_cols > 0:
            # Each expert-holding chip scores the full (broadcast) activation
            # against its replicated router, then runs the experts it owns on
            # their load-balanced share of the tokens.
            ffn.append(
                LinearOp(
                    name="ffn.router",
                    rows=query_rows,
                    in_features=embed,
                    out_features=config.num_experts,
                    weight_dtype=config.weight_dtype,
                    act_dtype=act_dtype,
                )
            )
            expert_rows = config.moe_expert_rows(query_rows)
            for index in range(experts):
                ffn.extend(
                    _expert_ffn_ops(
                        f"ffn.expert{index}",
                        config,
                        rows=expert_rows,
                        ffn_cols=ffn_cols,
                    )
                )
    elif ffn_cols > 0:
        ffn.extend(_expert_ffn_ops("ffn", config, rows=query_rows, ffn_cols=ffn_cols))
    if slice_.holds_residual:
        ffn.append(
            ElementwiseOp(
                name="ffn.residual_add",
                rows=query_rows,
                cols=embed,
                kind=ElementwiseKind.ADD,
                act_dtype=act_dtype,
            )
        )
    if slice_.holds_norms:
        ffn.append(
            NormOp(
                name="ffn.norm",
                rows=query_rows,
                cols=embed,
                kind=config.norm_kind,
                act_dtype=act_dtype,
            )
        )
    return BlockOperators(attention=attention, ffn=ffn)


def slice_weight_bytes(config: TransformerConfig, slice_: BlockSlice) -> int:
    """Deployment bytes of one block's weight *slice* held by a chip.

    This is the quantity that determines on-chip residency: query/output
    projections are sliced along the query-head dimension, key/value
    projections along the KV-head dimension, and the FFN either along the
    intermediate dimension (dense: ``k·E·f`` for ``f`` owned columns) or
    along the expert dimension (MoE: whole experts, plus a replicated
    ``E x num_experts`` router on every expert-holding chip).  With
    cross-attention the second stage holds its own full projection set.
    """
    head_dim = config.head_dim
    embed = config.embed_dim
    proj = slice_.num_heads * head_dim
    kv_proj = slice_kv_heads(config, slice_) * head_dim
    attention = config.num_attention_stages * (
        2 * embed * proj + 2 * embed * kv_proj
    )
    if config.is_moe:
        experts = slice_num_experts(config, slice_)
        ffn = experts * config.num_ffn_matrices * embed * slice_.ffn_cols
        if experts > 0:
            ffn += config.router_params
    else:
        ffn = config.num_ffn_matrices * embed * slice_.ffn_cols
    return (attention + ffn) * config.weight_dtype.size_bytes
