"""Workload intermediate representation.

This package describes *what* is computed: tensor shapes, operator costs,
Transformer block structure, KV-cache sizing, and inference workloads.  It
knows nothing about chips, memories, or partitioning — those live in
:mod:`repro.hw` and :mod:`repro.core`.
"""

from .dtypes import DType, FLOAT16, FLOAT32, INT16, INT32, INT8, dtype_from_name
from .kvcache import KVCacheSpec, kv_cache_for_slice
from .ops import (
    ActivationKind,
    ActivationOp,
    AttentionMatmulOp,
    ElementwiseKind,
    ElementwiseOp,
    LinearOp,
    NormKind,
    NormOp,
    Operator,
    SoftmaxOp,
    total_macs,
    total_weight_bytes,
)
from .tensor import TensorGroup, TensorSpec
from .transformer import (
    BlockOperators,
    BlockSlice,
    FfnKind,
    InferenceMode,
    TransformerConfig,
    build_block_operators,
    full_block_slice,
    slice_weight_bytes,
)
from .workload import Workload, autoregressive, encoder, prompt

__all__ = [
    "ActivationKind",
    "ActivationOp",
    "AttentionMatmulOp",
    "BlockOperators",
    "BlockSlice",
    "DType",
    "ElementwiseKind",
    "ElementwiseOp",
    "FfnKind",
    "FLOAT16",
    "FLOAT32",
    "INT16",
    "INT32",
    "INT8",
    "InferenceMode",
    "KVCacheSpec",
    "LinearOp",
    "NormKind",
    "NormOp",
    "Operator",
    "SoftmaxOp",
    "TensorGroup",
    "TensorSpec",
    "TransformerConfig",
    "Workload",
    "autoregressive",
    "build_block_operators",
    "dtype_from_name",
    "encoder",
    "full_block_slice",
    "kv_cache_for_slice",
    "prompt",
    "slice_weight_bytes",
    "total_macs",
    "total_weight_bytes",
]
