"""Shape-level tensor descriptions.

The cost models in this library never materialise tensor *values*; they only
need shapes and element sizes to compute memory footprints and traffic.
:class:`TensorSpec` is the shared currency between the workload graph, the
partitioner, the memory-footprint calculator, and the schedulers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from .dtypes import DType, INT8


@dataclass(frozen=True)
class TensorSpec:
    """A named tensor described by its shape and element type.

    Attributes:
        name: Human-readable identifier, used in traces and error messages.
        shape: Tuple of non-negative dimensions.  A zero dimension is legal
            and describes an empty tensor (for instance an empty KV-cache).
        dtype: Element type; defaults to int8, the deployment data type.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DType = INT8

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        if len(self.shape) == 0:
            raise ValueError(f"tensor {self.name!r} must have at least one dimension")
        for dim in self.shape:
            if dim < 0 or int(dim) != dim:
                raise ValueError(
                    f"tensor {self.name!r} has an invalid dimension {dim!r}; "
                    "dimensions must be non-negative integers"
                )

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        """Total number of elements."""
        return math.prod(self.shape)

    @property
    def size_bytes(self) -> int:
        """Storage size in bytes."""
        return self.num_elements * self.dtype.size_bytes

    def with_name(self, name: str) -> "TensorSpec":
        """Return a copy of this spec under a different name."""
        return TensorSpec(name=name, shape=self.shape, dtype=self.dtype)

    def with_dtype(self, dtype: DType) -> "TensorSpec":
        """Return a copy of this spec with a different element type."""
        return TensorSpec(name=self.name, shape=self.shape, dtype=dtype)

    def slice_dim(self, axis: int, size: int, name: str | None = None) -> "TensorSpec":
        """Return a spec equal to this one with dimension ``axis`` resized.

        This is the primitive used by the partitioner to describe per-chip
        slices of a full tensor (for instance, slicing the head dimension of
        a weight matrix across chips).

        Args:
            axis: Index of the dimension to resize (negative indices allowed).
            size: New extent of that dimension; must be non-negative.
            name: Optional new name; defaults to the current name.
        """
        if size < 0:
            raise ValueError(f"slice size must be non-negative, got {size}")
        rank = self.rank
        if not -rank <= axis < rank:
            raise ValueError(
                f"axis {axis} out of range for tensor {self.name!r} of rank {rank}"
            )
        axis = axis % rank
        new_shape = tuple(
            size if index == axis else dim for index, dim in enumerate(self.shape)
        )
        return TensorSpec(name=name or self.name, shape=new_shape, dtype=self.dtype)

    def __str__(self) -> str:
        dims = "x".join(str(dim) for dim in self.shape)
        return f"{self.name}[{dims}:{self.dtype.name}]"


@dataclass(frozen=True)
class TensorGroup:
    """A named collection of tensors treated as one unit for sizing.

    The footprint calculator works on groups such as "weights of one block
    slice", "KV-cache slice", or "resident activations".
    """

    name: str
    tensors: Tuple[TensorSpec, ...] = field(default_factory=tuple)

    @property
    def size_bytes(self) -> int:
        """Total storage of all tensors in the group."""
        return sum(tensor.size_bytes for tensor in self.tensors)

    @property
    def num_tensors(self) -> int:
        """Number of tensors in the group."""
        return len(self.tensors)

    def extend(self, tensors: Tuple[TensorSpec, ...]) -> "TensorGroup":
        """Return a new group with additional tensors appended."""
        return TensorGroup(name=self.name, tensors=self.tensors + tuple(tensors))

    def __iter__(self):
        return iter(self.tensors)

    def __len__(self) -> int:
        return len(self.tensors)
