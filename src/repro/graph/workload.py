"""Inference workload descriptions.

A :class:`Workload` couples a model configuration with an inference mode and
sequence parameters, and answers the shape questions the partitioner and the
schedulers need: how many query rows are processed per block, how many new
key/value rows are projected, and how many positions each query attends to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from .transformer import InferenceMode, TransformerConfig


@dataclass(frozen=True)
class Workload:
    """One inference pass of a model in a given mode.

    Attributes:
        config: The Transformer model configuration.
        mode: Autoregressive, prompt, or encoder inference.
        seq_len: Sequence length.  In autoregressive mode this is the
            context length already present in the KV-cache (the paper uses
            128 for TinyLlama); in prompt and encoder modes it is the number
            of tokens processed in parallel (16 for TinyLlama prompt mode,
            268 for MobileBERT).
        name: Optional label; defaults to ``"<model>/<mode>"``.
    """

    config: TransformerConfig
    mode: InferenceMode
    seq_len: int
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.seq_len <= 0:
            raise ConfigurationError("seq_len must be positive")
        if self.mode is InferenceMode.ENCODER and self.uses_kv_cache:
            raise ConfigurationError("encoder workloads do not use a KV-cache")
        if self.mode is InferenceMode.ENCODER and self.config.cross_attention:
            raise ConfigurationError(
                "encoder workloads cannot run a cross-attention (decoder) "
                "stack; use autoregressive or prompt mode"
            )
        if self.name is None:
            object.__setattr__(self, "name", f"{self.config.name}/{self.mode.value}")

    def __getstate__(self) -> dict:
        # The content-hash memo (repro.api.session) is per-process state
        # and would bloat every cached evaluation.
        state = dict(self.__dict__)
        state.pop("_repro_canonical_memo", None)
        return state

    # ------------------------------------------------------------------
    # Shape queries
    # ------------------------------------------------------------------
    @property
    def query_rows(self) -> int:
        """Query positions processed per block in one pass."""
        if self.mode is InferenceMode.AUTOREGRESSIVE:
            return 1
        return self.seq_len

    @property
    def new_kv_rows(self) -> int:
        """New key/value rows projected per block in one pass."""
        if self.mode is InferenceMode.AUTOREGRESSIVE:
            return 1
        if self.mode is InferenceMode.PROMPT:
            return self.seq_len
        return self.seq_len

    @property
    def attended_positions(self) -> int:
        """Positions attended to by each query.

        A sliding ``attention_window`` on the model caps this below the
        sequence length (long-context decode with a bounded cache).
        """
        window = self.config.attention_window
        if window is not None:
            return min(self.seq_len, window)
        return self.seq_len

    @property
    def cross_attended_positions(self) -> int:
        """Encoder-memory positions each cross-attention query attends to.

        Zero for decoder-only / encoder-only models.  For encoder/decoder
        models the source length is approximated by the (window-capped)
        self-attention span, which keeps :class:`Workload` a two-parameter
        description.
        """
        if not self.config.cross_attention:
            return 0
        return self.attended_positions

    @property
    def uses_kv_cache(self) -> bool:
        """Whether the workload maintains a KV-cache across calls."""
        return self.mode in (InferenceMode.AUTOREGRESSIVE, InferenceMode.PROMPT)

    @property
    def kv_cache_positions(self) -> int:
        """Number of positions the KV-cache must be sized for.

        With a sliding window the cache is a ring buffer of window size.
        """
        if not self.uses_kv_cache:
            return 0
        return self.attended_positions

    @property
    def is_memory_bound_mode(self) -> bool:
        """True for the GEMV-dominated autoregressive mode."""
        return self.mode is InferenceMode.AUTOREGRESSIVE

    def describe(self) -> str:
        """One-line human-readable description of the workload."""
        return (
            f"{self.name}: E={self.config.embed_dim} F={self.config.ffn_dim} "
            f"H={self.config.num_heads} L={self.config.num_layers} "
            f"S={self.seq_len} mode={self.mode.value}"
        )


def autoregressive(config: TransformerConfig, context_len: int) -> Workload:
    """Build an autoregressive (token-by-token) workload."""
    return Workload(config=config, mode=InferenceMode.AUTOREGRESSIVE, seq_len=context_len)


def prompt(config: TransformerConfig, prompt_len: int) -> Workload:
    """Build a prompt-mode (parallel prefill) workload."""
    return Workload(config=config, mode=InferenceMode.PROMPT, seq_len=prompt_len)


def encoder(config: TransformerConfig, seq_len: int) -> Workload:
    """Build an encoder-only workload."""
    return Workload(config=config, mode=InferenceMode.ENCODER, seq_len=seq_len)
