"""KV-cache sizing.

In autoregressive mode the decoder keeps the keys and values of every past
token so that each new token only projects a single new row (Sec. II-A of
the paper).  The cache is the dominant *activation* tensor of the decoder
and — because our partitioning scheme splits the attention along the head
dimension — it is naturally scattered across chips with no duplication:
each chip caches only the heads it owns.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .dtypes import DType, INT8
from .tensor import TensorSpec
from .transformer import TransformerConfig


@dataclass(frozen=True)
class KVCacheSpec:
    """Size description of the KV-cache slice held by one chip.

    Attributes:
        max_positions: Maximum number of cached positions (context length).
        num_heads: Attention heads cached by this chip.
        head_dim: Per-head dimension.
        num_layers: Number of Transformer blocks whose cache is held.
        dtype: Element type of cached keys and values.
    """

    max_positions: int
    num_heads: int
    head_dim: int
    num_layers: int = 1
    dtype: DType = INT8

    def __post_init__(self) -> None:
        if min(self.max_positions, self.num_heads, self.head_dim) < 0:
            raise ConfigurationError("KV-cache dimensions must be non-negative")
        if self.num_layers <= 0:
            raise ConfigurationError("KV-cache must cover at least one layer")

    @property
    def bytes_per_layer(self) -> int:
        """Bytes of keys plus values for one layer."""
        per_tensor = self.max_positions * self.num_heads * self.head_dim
        return 2 * per_tensor * self.dtype.size_bytes

    @property
    def total_bytes(self) -> int:
        """Bytes of keys plus values across all covered layers."""
        return self.num_layers * self.bytes_per_layer

    def bytes_written_per_step(self, new_rows: int = 1) -> int:
        """Bytes appended to one layer's cache when ``new_rows`` tokens arrive."""
        if new_rows < 0:
            raise ConfigurationError("new_rows must be non-negative")
        return 2 * new_rows * self.num_heads * self.head_dim * self.dtype.size_bytes

    def tensors(self, layer_index: int = 0) -> tuple[TensorSpec, TensorSpec]:
        """Return the key and value tensor specs of one layer's cache slice."""
        shape = (self.max_positions, self.num_heads, self.head_dim)
        return (
            TensorSpec(f"kv_cache.layer{layer_index}.keys", shape, self.dtype),
            TensorSpec(f"kv_cache.layer{layer_index}.values", shape, self.dtype),
        )


def kv_cache_for_slice(
    config: TransformerConfig,
    *,
    max_positions: int,
    num_heads: int,
    num_layers: int | None = None,
) -> KVCacheSpec:
    """Build the KV-cache spec for a chip that owns ``num_heads`` heads.

    Args:
        config: Model configuration (provides head_dim, dtype, layer count).
        max_positions: Context length to cache.
        num_heads: *KV* heads owned by the chip (equal to its query heads
            for MHA models; the covered KV groups for GQA/MQA).
        num_layers: Layers covered; defaults to all layers of the model,
            because the cache must persist across the whole forward pass.

    The element type is ``config.kv_dtype`` — the activation dtype unless
    the model declares a quantised ``kv_cache_dtype``.
    """
    return KVCacheSpec(
        max_positions=max_positions,
        num_heads=num_heads,
        head_dim=config.head_dim,
        num_layers=num_layers if num_layers is not None else config.num_layers,
        dtype=config.kv_dtype,
    )
