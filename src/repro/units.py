"""Unit helpers and physical constants used across the library.

All internal computations use plain SI-derived base units:

* sizes in **bytes**,
* time in **cycles** (of the chip's cluster clock) or **seconds**,
* energy in **joules**,
* power in **watts**,
* bandwidth in **bytes per second** or **bytes per cycle**.

The helpers in this module exist so that configuration code reads like the
paper ("2 MiB of L2", "100 pJ/B", "0.5 GB/s") rather than as bare powers of
ten scattered through the code base.
"""

from __future__ import annotations

#: Number of bytes in one kibibyte.
KIB = 1024

#: Number of bytes in one mebibyte.
MIB = 1024 * 1024

#: Number of bytes in one gibibyte.
GIB = 1024 * 1024 * 1024

#: One picojoule expressed in joules.
PICOJOULE = 1e-12

#: One nanojoule expressed in joules.
NANOJOULE = 1e-9

#: One microjoule expressed in joules.
MICROJOULE = 1e-6

#: One millijoule expressed in joules.
MILLIJOULE = 1e-3

#: One milliwatt expressed in watts.
MILLIWATT = 1e-3

#: One megahertz expressed in hertz.
MEGAHERTZ = 1e6

#: One gigahertz expressed in hertz.
GIGAHERTZ = 1e9


def kib(value: float) -> int:
    """Return ``value`` kibibytes expressed in bytes."""
    return int(value * KIB)


def mib(value: float) -> int:
    """Return ``value`` mebibytes expressed in bytes."""
    return int(value * MIB)


def gib(value: float) -> int:
    """Return ``value`` gibibytes expressed in bytes."""
    return int(value * GIB)


def picojoules(value: float) -> float:
    """Return ``value`` picojoules expressed in joules."""
    return value * PICOJOULE


def nanojoules(value: float) -> float:
    """Return ``value`` nanojoules expressed in joules."""
    return value * NANOJOULE


def microjoules(value: float) -> float:
    """Return ``value`` microjoules expressed in joules."""
    return value * MICROJOULE


def millijoules(value: float) -> float:
    """Return ``value`` millijoules expressed in joules."""
    return value * MILLIJOULE


def milliwatts(value: float) -> float:
    """Return ``value`` milliwatts expressed in watts."""
    return value * MILLIWATT


def megahertz(value: float) -> float:
    """Return ``value`` megahertz expressed in hertz."""
    return value * MEGAHERTZ


def gigahertz(value: float) -> float:
    """Return ``value`` gigahertz expressed in hertz."""
    return value * GIGAHERTZ


def gigabytes_per_second(value: float) -> float:
    """Return ``value`` GB/s expressed in bytes per second (decimal giga)."""
    return value * 1e9


def megabytes_per_second(value: float) -> float:
    """Return ``value`` MB/s expressed in bytes per second (decimal mega)."""
    return value * 1e6


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` into seconds."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert a duration in seconds into cycles at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return seconds * frequency_hz


def bytes_per_second_to_bytes_per_cycle(
    bytes_per_second: float, frequency_hz: float
) -> float:
    """Convert a bandwidth in B/s into B/cycle at the given clock."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return bytes_per_second / frequency_hz


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a human-friendly binary suffix."""
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or suffix == "GiB":
            if suffix == "B":
                return f"{int(value)} {suffix}"
            return f"{value:.2f} {suffix}"
        value /= 1024.0
    return f"{value:.2f} GiB"


def format_energy(joules: float) -> str:
    """Render an energy value with an appropriate SI prefix."""
    if joules == 0:
        return "0 J"
    magnitude = abs(joules)
    if magnitude >= 1e-3:
        return f"{joules / 1e-3:.3f} mJ"
    if magnitude >= 1e-6:
        return f"{joules / 1e-6:.3f} uJ"
    if magnitude >= 1e-9:
        return f"{joules / 1e-9:.3f} nJ"
    return f"{joules / 1e-12:.3f} pJ"


def format_time(seconds: float) -> str:
    """Render a duration with an appropriate SI prefix."""
    if seconds == 0:
        return "0 s"
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:.3f} s"
    if magnitude >= 1e-3:
        return f"{seconds / 1e-3:.3f} ms"
    if magnitude >= 1e-6:
        return f"{seconds / 1e-6:.3f} us"
    return f"{seconds / 1e-9:.3f} ns"
