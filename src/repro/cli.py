"""Command-line interface.

``python -m repro <command>`` exposes the library's main entry points
without writing any Python:

* ``models``      — list the registered model configurations,
* ``strategies``  — list the registered partitioning strategies,
* ``policies``    — list the registered serving scheduler policies,
* ``routers``     — list the registered fleet routing policies,
* ``platforms``   — list the registered hardware platform presets,
* ``searchers``   — list the registered DSE search algorithms/objectives,
* ``evaluate``    — evaluate one Transformer block on a chip count,
* ``sweep``       — run a chip-count sweep with any registered strategy
  and print (or export) the Fig. 4/5-style tables,
* ``compare``     — strategy ablation (Table-I style) on one chip count,
* ``serve``       — request-level serving simulation (traffic trace,
  queueing policy, tail-latency/SLO analytics),
* ``fleet``       — fleet-level serving across heterogeneous platform
  replicas (routing, admission control, autoscaling),
* ``tune``        — design-space exploration (searchable platform space,
  multi-objective search, Pareto front),
* ``experiments`` — regenerate the paper's figures and tables,
* ``verify``      — numerically verify the partitioning scheme's exactness,
* ``cache``       — inspect or clear the persistent evaluation cache,
* ``study``       — run, validate, or scaffold declarative study specs,
* ``studies``     — list the shipped (and registered) example studies.

Every evaluating command runs through :class:`repro.api.Session`, so any
strategy added with :func:`repro.api.register_strategy` (or scheduling
policy added with :func:`repro.serving.register_policy`, fleet router
added with :func:`repro.fleet.register_router`, search algorithm
added with :func:`repro.dse.register_searcher`, objective added with
:func:`repro.dse.register_objective`) is immediately usable from the
command line.  ``evaluate``, ``sweep``, ``compare``, ``serve``,
``fleet``, and ``tune`` all take ``--json`` to emit one shared
machine-readable format instead of the human tables; the Session-driven
JSON documents include the session's cache statistics so memoisation
reuse is observable.

The same six commands (plus ``experiments``, for the studies it maps to)
take ``--emit-spec``, which prints the invocation as a replayable
:mod:`repro.spec` JSON document instead of running it; ``repro study run``
replays such a document — or a whole multi-stage study file — bit for
bit.  Invalid input of any kind (bad flags aside, which argparse reports
itself) exits with status 2 and a one-line ``error: ...`` on stderr
rather than a traceback.

Every evaluating command also shares the persistent cross-process
evaluation cache (:mod:`repro.api.cache`): results land on disk under
``~/.cache/repro`` (override with ``--cache-dir`` or ``REPRO_CACHE_DIR``)
and are reused by later invocations, so re-running a sweep or serving
study in a new process is nearly free.  Disable with ``--no-cache`` or
``REPRO_NO_CACHE=1``; inspect with ``repro cache stats``.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis.export import (
    comparison_to_json,
    eval_result_to_dict,
    eval_sweep_to_json,
    fleet_report_to_json,
    tune_result_to_json,
    write_sweep,
)
from .analysis.tables import energy_runtime_table, format_table, runtime_breakdown_table
from .api.registry import get_strategy, list_strategies
from .api.session import EvalSweep, Session
from .api.strategies import BASELINE_STRATEGIES, PAPER_STRATEGY
from .core.placement import PrefetchAccounting
from .errors import AnalysisError, ReproError
from .graph.transformer import InferenceMode
from .models.registry import get_model, list_models
from .spec import (
    AutoscalerSpec,
    CompareSpec,
    EvalSpec,
    FaultEventSpec,
    FaultSpec,
    FleetPlatformSpec,
    FleetSpec,
    ModelSpec,
    PlatformSpec,
    RetryPolicySpec,
    SLOClassSpec,
    ServingSpec,
    SweepSpec,
    TraceSpec,
    TuneSpec,
    WorkloadSpec,
)
from .units import format_bytes, format_energy, format_time


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed Transformer inference on low-power MCUs "
            "(DATE 2025 reproduction)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the package version and exit",
    )
    _add_cache_arguments(parser, suppress=False)
    subparsers = parser.add_subparsers(dest="command", required=True)

    models_parser = subparsers.add_parser(
        "models", help="list registered model configurations"
    )
    models_parser.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="show a detailed per-model summary instead of the table",
    )
    models_parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of the table",
    )

    subparsers.add_parser(
        "strategies", help="list registered partitioning strategies"
    )

    subparsers.add_parser(
        "policies", help="list registered serving scheduler policies"
    )

    subparsers.add_parser(
        "routers", help="list registered fleet routing policies"
    )

    subparsers.add_parser(
        "platforms", help="list registered hardware platform presets"
    )

    subparsers.add_parser(
        "searchers",
        help="list registered design-space searchers and objectives",
    )

    evaluate = subparsers.add_parser(
        "evaluate", help="evaluate one Transformer block on a chip count"
    )
    _add_workload_arguments(evaluate)
    _add_strategy_argument(evaluate)
    evaluate.add_argument(
        "--chips", type=int, default=8, help="number of chips (default: 8)"
    )
    _add_json_argument(evaluate)

    sweep = subparsers.add_parser(
        "sweep", help="run a chip-count sweep and print the figure tables"
    )
    _add_workload_arguments(sweep)
    _add_strategy_argument(sweep)
    sweep.add_argument(
        "--chips",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="chip counts to sweep (default: 1 2 4 8)",
    )
    sweep.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="evaluate sweep points in N worker processes",
    )
    sweep.add_argument(
        "--output",
        type=str,
        default=None,
        help="optional export path (.csv or .json)",
    )
    _add_json_argument(sweep)

    compare = subparsers.add_parser(
        "compare", help="strategy ablation on one chip count (Table I style)"
    )
    _add_workload_arguments(compare)
    compare.add_argument(
        "--chips", type=int, default=8, help="number of chips (default: 8)"
    )
    compare.add_argument(
        "--strategies",
        nargs="+",
        default=list(BASELINE_STRATEGIES),
        metavar="NAME",
        help=(
            "registered strategies to compare, in order "
            "(default: the Table I ablation)"
        ),
    )
    _add_json_argument(compare)

    serve = subparsers.add_parser(
        "serve",
        help="request-level serving simulation (queueing + tail latency)",
    )
    serve.add_argument(
        "--model",
        default="tinyllama-42m",
        help="registered model name (see `repro models`)",
    )
    serve.add_argument(
        "--chips", type=int, default=8, help="number of chips (default: 8)"
    )
    _add_strategy_argument(serve)
    serve.add_argument(
        "--policy",
        default="fifo",
        metavar="NAME",
        help="registered scheduling policy (default: fifo; see `repro policies`)",
    )
    serve.add_argument(
        "--trace",
        choices=["poisson", "bursty", "closed"],
        default="poisson",
        help="synthetic traffic generator (default: poisson)",
    )
    serve.add_argument(
        "--arrival-rate",
        type=float,
        default=2.0,
        metavar="RPS",
        help="mean arrival rate in requests/s (default: 2)",
    )
    serve.add_argument(
        "--burst-rate",
        type=float,
        default=None,
        metavar="RPS",
        help="burst-state arrival rate for --trace bursty (default: 4x base)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=300.0,
        metavar="S",
        help="arrival horizon in seconds (default: 300)",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=8,
        help="client population for --trace closed (default: 8)",
    )
    serve.add_argument(
        "--requests-per-client",
        type=int,
        default=16,
        help="requests each closed-loop client submits (default: 16)",
    )
    serve.add_argument(
        "--think-time",
        type=float,
        default=1.0,
        metavar="S",
        help="mean closed-loop think time in seconds (default: 1)",
    )
    serve.add_argument(
        "--prompt-mean",
        type=float,
        default=64.0,
        help="mean prompt length in tokens (default: 64)",
    )
    serve.add_argument(
        "--output-mean",
        type=float,
        default=32.0,
        help="mean reply length in tokens (default: 32)",
    )
    serve.add_argument(
        "--prompt-max",
        type=int,
        default=256,
        help="largest sampled prompt length (default: 256)",
    )
    serve.add_argument(
        "--output-max",
        type=int,
        default=128,
        help="largest sampled reply length (default: 128)",
    )
    serve.add_argument(
        "--priority-levels",
        type=int,
        default=1,
        help="uniform priority classes assigned by the trace (default: 1)",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "trace seed; equal seeds give byte-identical output "
            "(default: 0; meaningless with --replay)"
        ),
    )
    serve.add_argument(
        "--replay",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "replay a recorded JSON trace verbatim instead of generating "
            "one (the generator flags and --seed do not apply)"
        ),
    )
    serve.add_argument(
        "--save-trace",
        type=str,
        default=None,
        metavar="PATH",
        help="write the materialised trace as replayable JSON",
    )
    serve.add_argument(
        "--slo-ttft",
        type=float,
        nargs="+",
        default=None,
        metavar="S",
        help="TTFT targets of the SLO-attainment curve (default: standard grid)",
    )
    _add_json_argument(serve)

    fleet = subparsers.add_parser(
        "fleet",
        help="fleet-level serving across heterogeneous platform replicas",
        description=(
            "Simulate a fleet of serving platforms behind a routing policy: "
            "heterogeneous replica pools (repeat --platform), multi-tenant "
            "admission control (repeat --class), and an optional reactive "
            "autoscaler (--autoscale)."
        ),
    )
    fleet.add_argument(
        "--model",
        default="tinyllama-42m",
        help="registered model name (see `repro models`)",
    )
    fleet.add_argument(
        "--platform",
        action="append",
        default=None,
        metavar="PRESET[:CHIPS][xN][@ROLE]",
        help=(
            "one platform entry: preset name, optional chip count, replica "
            "count, and role (any/prefill/decode), e.g. "
            "siracusa-mipi:8x2@prefill; repeatable (default: siracusa-mipi)"
        ),
    )
    fleet.add_argument(
        "--router",
        default="round_robin",
        metavar="NAME",
        help=(
            "registered routing policy (default: round_robin; "
            "see `repro routers`)"
        ),
    )
    fleet.add_argument(
        "--policy",
        default="fifo",
        metavar="NAME",
        help=(
            "per-replica scheduling policy (default: fifo; "
            "see `repro policies`)"
        ),
    )
    _add_strategy_argument(fleet)
    fleet.add_argument(
        "--trace",
        choices=["poisson", "bursty", "diurnal"],
        default="poisson",
        help=(
            "open-loop traffic generator (default: poisson; diurnal adds a "
            "day-long sinusoidal rate with optional spikes)"
        ),
    )
    fleet.add_argument(
        "--arrival-rate",
        type=float,
        default=2.0,
        metavar="RPS",
        help="mean arrival rate in requests/s (default: 2)",
    )
    fleet.add_argument(
        "--burst-rate",
        type=float,
        default=None,
        metavar="RPS",
        help="burst-state arrival rate for --trace bursty (default: 4x base)",
    )
    fleet.add_argument(
        "--duration",
        type=float,
        default=300.0,
        metavar="S",
        help="arrival horizon in seconds (default: 300)",
    )
    fleet.add_argument(
        "--amplitude",
        type=float,
        default=0.6,
        help="diurnal rate-swing amplitude in [0, 1] (default: 0.6)",
    )
    fleet.add_argument(
        "--period",
        type=float,
        default=86_400.0,
        metavar="S",
        help="diurnal period in seconds (default: 86400, one day)",
    )
    fleet.add_argument(
        "--phase",
        type=float,
        default=0.0,
        metavar="S",
        help="diurnal phase shift in seconds (default: 0)",
    )
    fleet.add_argument(
        "--spike-start",
        type=float,
        action="append",
        default=[],
        metavar="S",
        help="start one diurnal spike burst at this time (repeatable)",
    )
    fleet.add_argument(
        "--spike-duration",
        type=float,
        default=600.0,
        metavar="S",
        help="duration of each spike burst in seconds (default: 600)",
    )
    fleet.add_argument(
        "--spike-rate",
        type=float,
        default=None,
        metavar="RPS",
        help="extra arrival rate inside a spike (default: 2x base rate)",
    )
    fleet.add_argument(
        "--prompt-mean",
        type=float,
        default=64.0,
        help="mean prompt length in tokens (default: 64)",
    )
    fleet.add_argument(
        "--output-mean",
        type=float,
        default=32.0,
        help="mean reply length in tokens (default: 32)",
    )
    fleet.add_argument(
        "--prompt-max",
        type=int,
        default=256,
        help="largest sampled prompt length (default: 256)",
    )
    fleet.add_argument(
        "--output-max",
        type=int,
        default=128,
        help="largest sampled reply length (default: 128)",
    )
    fleet.add_argument(
        "--priority-levels",
        type=int,
        default=1,
        help="uniform priority classes assigned by the trace (default: 1)",
    )
    fleet.add_argument(
        "--class",
        dest="slo_class",
        action="append",
        default=[],
        metavar="NAME[:RATE[:BURST[:SLO[:TIMEOUT]]]]",
        help=(
            "one multi-tenant SLO class: name, optional sustained admission "
            "rate in req/s, token-bucket burst, TTFT target in seconds, and "
            "per-class request timeout (overrides --retry's timeout), "
            "e.g. interactive:2:4:0.5; repeatable — a request's priority "
            "field indexes the class list in the given order"
        ),
    )
    fleet.add_argument(
        "--autoscale",
        nargs="?",
        const="siracusa-mipi",
        default=None,
        metavar="PRESET[:CHIPS]",
        help=(
            "enable the reactive autoscaler; added replicas use this "
            "platform preset (default preset: siracusa-mipi)"
        ),
    )
    fleet.add_argument(
        "--autoscale-max",
        type=int,
        default=4,
        metavar="N",
        help="most replicas the autoscaler may add (default: 4)",
    )
    fleet.add_argument(
        "--autoscale-interval",
        type=float,
        default=60.0,
        metavar="S",
        help="seconds between autoscaler checks (default: 60)",
    )
    fleet.add_argument(
        "--autoscale-slo",
        type=float,
        default=None,
        metavar="S",
        help=(
            "TTFT target the autoscaler defends (scale up when windowed "
            "attainment drops below 95%%)"
        ),
    )
    fleet.add_argument(
        "--faults",
        action="append",
        default=[],
        metavar="EVENT",
        help=(
            "inject one fault: crash:REPLICA@START[+DURATION], "
            "slow:REPLICA@START+DURATIONxFACTOR, "
            "brownout@START+DURATIONxFACTOR, or random:MTBF[:MTTR[:HORIZON]] "
            "for a seeded random crash layer; repeatable"
        ),
    )
    fleet.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed of the random crash layer (default: 0)",
    )
    fleet.add_argument(
        "--retry",
        type=str,
        default=None,
        metavar="[TIMEOUT][:RETRIES[:BACKOFF[:HEDGE]]]",
        help=(
            "fail-over policy under faults: request timeout in seconds, "
            "retry budget after a crash, first-retry backoff in seconds, "
            "and hedge delay after which a second copy is dispatched, "
            "e.g. 30:3:0.5:2 (empty positions keep defaults)"
        ),
    )
    fleet.add_argument(
        "--shed-below",
        type=float,
        default=None,
        metavar="FRACTION",
        help=(
            "healthy-capacity fraction below which admission sheds "
            "low-priority classes (graceful degradation; default: off)"
        ),
    )
    fleet.add_argument(
        "--shed-keep",
        type=int,
        default=1,
        metavar="N",
        help=(
            "highest-priority SLO classes still admitted while degraded "
            "(default: 1)"
        ),
    )
    fleet.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "trace seed; equal seeds give byte-identical output "
            "(default: 0; meaningless with --replay)"
        ),
    )
    fleet.add_argument(
        "--replay",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "replay a recorded JSON trace verbatim instead of generating "
            "one (the generator flags and --seed do not apply)"
        ),
    )
    fleet.add_argument(
        "--max-context",
        type=int,
        default=1024,
        metavar="TOKENS",
        help="serving context window of every replica (default: 1024)",
    )
    fleet.add_argument(
        "--slo-ttft",
        type=float,
        nargs="+",
        default=None,
        metavar="S",
        help="TTFT targets of the SLO-attainment curve (default: standard grid)",
    )
    fleet.add_argument(
        "--record-threshold",
        type=int,
        default=None,
        metavar="N",
        help=(
            "switch from exact to streaming (histogram) latency percentiles "
            "above this many requests (default: 100000)"
        ),
    )
    _add_json_argument(fleet)

    tune = subparsers.add_parser(
        "tune",
        help="design-space exploration (multi-objective platform search)",
    )
    _add_workload_arguments(tune)
    tune.add_argument(
        "--searcher",
        default="random",
        metavar="NAME",
        help=(
            "registered search algorithm (default: random; "
            "see `repro searchers`)"
        ),
    )
    tune.add_argument(
        "--budget",
        type=int,
        default=24,
        help="evaluation budget of the searcher (default: 24)",
    )
    tune.add_argument(
        "--seed",
        type=int,
        default=0,
        help="search seed; equal seeds give byte-identical output (default: 0)",
    )
    tune.add_argument(
        "--objectives",
        nargs="+",
        default=["latency", "energy", "hw_cost"],
        metavar="NAME",
        help=(
            "objectives of the Pareto front, in order "
            "(default: latency energy hw_cost; see `repro searchers`)"
        ),
    )
    tune.add_argument(
        "--constraint",
        action="append",
        default=[],
        metavar="EXPR",
        help="feasibility bound like 'latency<=0.01' or 'slo>=0.95' (repeatable)",
    )
    tune.add_argument(
        "--chips",
        type=int,
        nargs="+",
        default=None,
        help="chip-count choices of the space (default: 1 2 4 8)",
    )
    tune.add_argument(
        "--link-gbps",
        type=float,
        nargs="+",
        default=None,
        metavar="GBPS",
        help="C2C bandwidth levels in GB/s (default: 0.125 0.25 0.5 1 2)",
    )
    tune.add_argument(
        "--l2-kib",
        type=int,
        nargs="+",
        default=None,
        metavar="KIB",
        help="L2 capacity choices in KiB (default: 1024 2048 4096)",
    )
    tune.add_argument(
        "--freq-mhz",
        type=float,
        nargs="+",
        default=None,
        metavar="MHZ",
        help="cluster frequency levels in MHz (default: 300 500)",
    )
    tune.add_argument(
        "--strategies",
        nargs="+",
        default=None,
        metavar="NAME",
        help="strategy choices of the space (default: paper)",
    )
    tune.add_argument(
        "--parallel",
        default=None,
        metavar="N",
        help=(
            "evaluate candidate batches in N worker processes; output is "
            "byte-identical to --parallel 1 (default: serial)"
        ),
    )
    tune.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help=(
            "write a resumable search checkpoint here every "
            "--checkpoint-every unique evaluations and on completion"
        ),
    )
    tune.add_argument(
        "--checkpoint-every",
        default=None,
        metavar="N",
        help=(
            "checkpoint cadence in unique evaluations "
            "(default: 25; needs --checkpoint)"
        ),
    )
    tune.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help=(
            "resume from a checkpoint written by an earlier interrupted "
            "run; the finished search is byte-identical to an "
            "uninterrupted one"
        ),
    )
    _add_json_argument(tune)

    studies = subparsers.add_parser(
        "studies", help="list the registered example studies"
    )
    del studies  # listing-only: no further arguments

    study = subparsers.add_parser(
        "study",
        help="run, validate, or scaffold declarative study specs",
        description=(
            "run: execute a study spec (a JSON file or a registered study "
            "name; single-command specs emitted by --emit-spec are wrapped "
            "into a one-stage study) and print a summary. "
            "validate: check one or more spec files without running them. "
            "init: print (or write) a starter study template."
        ),
    )
    study.add_argument(
        "action",
        choices=["run", "validate", "init"],
        help="what to do with the spec(s)",
    )
    study.add_argument(
        "target",
        nargs="*",
        help=(
            "spec file path(s); `run` also accepts a registered study name "
            "(see `repro studies`)"
        ),
    )
    study.add_argument(
        "--output-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="write per-stage artifacts plus the study.json manifest to DIR",
    )
    study.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="PATH",
        help="for `init`: write the template here instead of stdout",
    )
    study.add_argument(
        "--parallel",
        default=None,
        metavar="N",
        help=(
            "for `run`: evaluate tune stages with N worker processes; "
            "artifacts are byte-identical to a serial run"
        ),
    )
    _add_json_argument(study)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's figures and tables"
    )
    experiments.add_argument(
        "--only",
        choices=[
            "fig4", "fig5", "fig6", "table1", "headline", "serving", "dse",
            "all",
        ],
        default="all",
        help=(
            "which experiment to run (default: all — the paper's figures; "
            "'serving' runs the capacity-vs-SLO study, 'dse' the "
            "budget-vs-Pareto-front study)"
        ),
    )

    verify = subparsers.add_parser(
        "verify", help="numerically verify the partitioning scheme's exactness"
    )
    verify.add_argument("--model", default="tinyllama-42m")
    verify.add_argument("--chips", type=int, default=8)
    verify.add_argument("--rows", type=int, default=4)

    cache = subparsers.add_parser(
        "cache", help="inspect or clear the persistent evaluation cache"
    )
    cache.add_argument(
        "action",
        choices=["stats", "clear", "path"],
        help=(
            "stats: entry count/size/versions; clear: drop every stored "
            "evaluation; path: print the store location"
        ),
    )

    # The cache flags are accepted both before the subcommand (the global
    # position) and after it, where most users type them.
    for evaluating in (
        evaluate, sweep, compare, serve, fleet, tune, experiments, cache,
        study,
    ):
        _add_cache_arguments(evaluating, suppress=True)

    # Every spec-expressible command can print its invocation as a
    # replayable spec document instead of running it.
    for emitting in (
        evaluate, sweep, compare, serve, fleet, tune, experiments,
    ):
        emitting.add_argument(
            "--emit-spec",
            action="store_true",
            help=(
                "print this invocation as a replayable repro.spec JSON "
                "document (see `repro study run`) instead of executing it"
            ),
        )

    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        default="tinyllama-42m",
        help="registered model name (see `repro models`)",
    )
    parser.add_argument(
        "--mode",
        choices=[mode.value for mode in InferenceMode],
        default=InferenceMode.AUTOREGRESSIVE.value,
        help="inference mode (default: autoregressive)",
    )
    parser.add_argument(
        "--seq-len",
        type=int,
        default=None,
        help="sequence/context length (default: the paper's value per mode)",
    )
    parser.add_argument(
        "--prefetch",
        choices=[policy.value for policy in PrefetchAccounting],
        default=PrefetchAccounting.HIDDEN.value,
        help="prefetch runtime accounting policy (default: hidden)",
    )


def _add_strategy_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        default=PAPER_STRATEGY,
        metavar="NAME",
        help=(
            "registered partitioning strategy (default: paper; "
            "see `repro strategies`)"
        ),
    )


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON document instead of the tables",
    )


def _add_cache_arguments(
    parser: argparse.ArgumentParser, *, suppress: bool
) -> None:
    """Add the persistent-cache flags to a (sub)parser.

    The root parser owns the defaults; subparsers use ``SUPPRESS`` so a
    flag given after the subcommand overrides the root default without a
    conflicting second default.
    """
    parser.add_argument(
        "--no-cache",
        action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="do not read or write the persistent evaluation cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=argparse.SUPPRESS if suppress else None,
        metavar="DIR",
        help=(
            "persistent evaluation cache directory (default: "
            "$REPRO_CACHE_DIR or ~/.cache/repro)"
        ),
    )


def _session_from_args(args: argparse.Namespace) -> Session:
    """A session honouring the prefetch and persistent-cache flags.

    CLI sessions persist evaluations on disk by default, so a repeated
    invocation in a fresh process reuses every warm result instead of
    re-simulating it.
    """
    prefetch = PrefetchAccounting(
        getattr(args, "prefetch", PrefetchAccounting.HIDDEN.value)
    )
    if getattr(args, "no_cache", False):
        return Session(prefetch_accounting=prefetch, persistent=False)
    return Session(
        prefetch_accounting=prefetch,
        cache_dir=getattr(args, "cache_dir", None),
        persistent=True,
    )


# ----------------------------------------------------------------------
# Invocation -> spec capture (--emit-spec and the execution path)
# ----------------------------------------------------------------------
def _workload_spec_from_args(args: argparse.Namespace) -> WorkloadSpec:
    return WorkloadSpec(
        model=ModelSpec(name=args.model),
        mode=args.mode,
        seq_len=args.seq_len,
    )


def _evaluate_spec_from_args(args: argparse.Namespace) -> EvalSpec:
    return EvalSpec(
        workload=_workload_spec_from_args(args),
        strategy=args.strategy,
        platform=PlatformSpec(chips=args.chips),
        prefetch=args.prefetch,
    )


def _sweep_spec_from_args(args: argparse.Namespace) -> SweepSpec:
    return SweepSpec(
        workload=_workload_spec_from_args(args),
        chips=tuple(args.chips),
        strategy=args.strategy,
        parallel=args.parallel,
        prefetch=args.prefetch,
    )


def _compare_spec_from_args(args: argparse.Namespace) -> CompareSpec:
    return CompareSpec(
        workload=_workload_spec_from_args(args),
        strategies=tuple(args.strategies),
        platform=PlatformSpec(chips=args.chips),
        prefetch=args.prefetch,
    )


def _trace_spec_from_args(args: argparse.Namespace) -> TraceSpec:
    if args.replay is not None:
        if args.seed is not None:
            raise AnalysisError(
                "--seed has no effect with --replay (the trace is replayed "
                "verbatim); drop one of the two flags"
            )
        return TraceSpec(source="replay", path=args.replay)
    return TraceSpec(
        source=args.trace,
        rate_rps=args.arrival_rate,
        duration_s=args.duration,
        burst_rate_rps=args.burst_rate,
        clients=args.clients,
        requests_per_client=args.requests_per_client,
        mean_think_s=args.think_time,
        prompt_mean=args.prompt_mean,
        output_mean=args.output_mean,
        prompt_max=args.prompt_max,
        output_max=args.output_max,
        priority_levels=args.priority_levels,
    )


def _serve_spec_from_args(args: argparse.Namespace) -> ServingSpec:
    return ServingSpec(
        model=ModelSpec(name=args.model),
        trace=_trace_spec_from_args(args),
        policy=args.policy,
        strategy=args.strategy,
        platform=PlatformSpec(chips=args.chips),
        seed=args.seed if args.seed is not None else 0,
        slo_targets=tuple(args.slo_ttft) if args.slo_ttft is not None else None,
    )


def _parse_slo_class(text: str, index: int) -> SLOClassSpec:
    """One ``--class NAME[:RATE[:BURST[:SLO[:TIMEOUT]]]]`` value as a spec.

    The class's scheduling priority is its position in the ``--class``
    list, matching how a request's ``priority`` field selects its class.
    """
    parts = text.split(":")
    name = parts[0]
    if not name or len(parts) > 5:
        raise AnalysisError(
            f"cannot parse SLO class {text!r}; expected "
            "NAME[:RATE_RPS[:BURST[:TTFT_SLO_S[:TIMEOUT_S]]]], "
            "e.g. interactive:2:4:0.5"
        )
    try:
        rate = float(parts[1]) if len(parts) > 1 and parts[1] else None
        burst = int(parts[2]) if len(parts) > 2 and parts[2] else 1
        slo = float(parts[3]) if len(parts) > 3 and parts[3] else None
        timeout = float(parts[4]) if len(parts) > 4 and parts[4] else None
    except ValueError:
        raise AnalysisError(
            f"cannot parse SLO class {text!r}; expected "
            "NAME[:RATE_RPS[:BURST[:TTFT_SLO_S[:TIMEOUT_S]]]], "
            "e.g. interactive:2:4:0.5"
        ) from None
    return SLOClassSpec(
        name=name,
        rate_rps=rate,
        burst=burst,
        priority=index,
        ttft_slo_s=slo,
        timeout_s=timeout,
    )


def _fault_spec_from_args(args: argparse.Namespace) -> Optional[FaultSpec]:
    """The ``--faults``/``--shed-*`` flags as a spec (``None``: no faults).

    Parsing goes through :meth:`FaultModel.parse` so CLI shorthand and
    spec documents agree on grammar and validation; malformed values
    raise :class:`~repro.errors.ConfigurationError`, which the CLI maps
    to an ``error:`` line and exit status 2 like every other bad flag.
    """
    if not args.faults and args.shed_below is None:
        return None
    from .fleet import FaultModel

    model = FaultModel.parse(
        args.faults,
        seed=args.fault_seed,
        shed_below=args.shed_below,
        shed_keep=args.shed_keep,
    )
    return FaultSpec(
        events=tuple(
            FaultEventSpec(
                fault=event.kind,
                replica=event.replica,
                start_s=event.start_s,
                duration_s=event.duration_s,
                factor=event.factor,
            )
            for event in model.events
        ),
        crash_mtbf_s=model.crash_mtbf_s,
        crash_mttr_s=model.crash_mttr_s,
        horizon_s=model.horizon_s,
        seed=model.seed,
        shed_below=model.shed_below,
        shed_keep=model.shed_keep,
    )


def _retry_spec_from_args(
    args: argparse.Namespace,
) -> Optional[RetryPolicySpec]:
    """The ``--retry`` shorthand as a spec (``None``: no retry policy)."""
    if args.retry is None:
        return None
    from .fleet import RetryPolicy

    policy = RetryPolicy.parse(args.retry)
    return RetryPolicySpec(
        max_retries=policy.max_retries,
        backoff_s=policy.backoff_s,
        backoff_multiplier=policy.backoff_multiplier,
        timeout_s=policy.timeout_s,
        hedge_after_s=policy.hedge_after_s,
    )


def _autoscaler_spec_from_args(
    args: argparse.Namespace,
) -> Optional[AutoscalerSpec]:
    if args.autoscale is None:
        return None
    preset, _, chips_text = args.autoscale.partition(":")
    try:
        chips = int(chips_text) if chips_text else None
    except ValueError:
        raise AnalysisError(
            f"cannot parse --autoscale {args.autoscale!r}; expected "
            "PRESET[:CHIPS], e.g. siracusa-mipi:4"
        ) from None
    return AutoscalerSpec(
        preset=preset,
        chips=chips,
        max_extra=args.autoscale_max,
        check_interval_s=args.autoscale_interval,
        ttft_slo_s=args.autoscale_slo,
    )


def _fleet_spec_from_args(args: argparse.Namespace) -> FleetSpec:
    if args.replay is not None:
        if args.seed is not None:
            raise AnalysisError(
                "--seed has no effect with --replay (the trace is replayed "
                "verbatim); drop one of the two flags"
            )
        trace = TraceSpec(source="replay", path=args.replay)
    else:
        trace = TraceSpec(
            source=args.trace,
            rate_rps=args.arrival_rate,
            duration_s=args.duration,
            burst_rate_rps=args.burst_rate,
            amplitude=args.amplitude,
            period_s=args.period,
            phase_s=args.phase,
            spike_starts_s=tuple(args.spike_start),
            spike_duration_s=args.spike_duration,
            spike_rate_rps=args.spike_rate,
            prompt_mean=args.prompt_mean,
            output_mean=args.output_mean,
            prompt_max=args.prompt_max,
            output_max=args.output_max,
            priority_levels=args.priority_levels,
        )
    from .fleet import FleetPlatform

    entries = args.platform if args.platform else ["siracusa-mipi"]
    platforms = []
    for entry in entries:
        # Parse the shorthand directly: a CLI flag error should not carry
        # the spec-document path that FleetPlatformSpec.from_dict prefixes.
        parsed = FleetPlatform.parse(entry)
        platforms.append(
            FleetPlatformSpec(
                preset=parsed.preset,
                chips=parsed.chips,
                replicas=parsed.replicas,
                role=parsed.role,
            )
        )
    return FleetSpec(
        model=ModelSpec(name=args.model),
        trace=trace,
        platforms=tuple(platforms),
        router=args.router,
        policy=args.policy,
        strategy=args.strategy,
        classes=tuple(
            _parse_slo_class(text, index)
            for index, text in enumerate(args.slo_class)
        ),
        autoscaler=_autoscaler_spec_from_args(args),
        faults=_fault_spec_from_args(args),
        retry=_retry_spec_from_args(args),
        seed=args.seed if args.seed is not None else 0,
        max_context=args.max_context,
        slo_targets=tuple(args.slo_ttft) if args.slo_ttft is not None else None,
        record_threshold=args.record_threshold,
    )


def _tune_spec_from_args(args: argparse.Namespace) -> TuneSpec:
    from .spec import AxisSpec, SpaceSpec

    chips = tuple(args.chips) if args.chips else (1, 2, 4, 8)
    link = (
        tuple(args.link_gbps) if args.link_gbps
        else (0.125, 0.25, 0.5, 1.0, 2.0)
    )
    l2 = tuple(args.l2_kib) if args.l2_kib else (1024, 2048, 4096)
    freq = tuple(args.freq_mhz) if args.freq_mhz else (300.0, 500.0)
    strategies = tuple(args.strategies) if args.strategies else ("paper",)
    space = SpaceSpec(
        axes=(
            AxisSpec(axis="choice", name="chips", choices=chips),
            AxisSpec(
                axis="float",
                name="link_gbps",
                low=min(link),
                high=max(link),
                levels=link,
            ),
            AxisSpec(axis="choice", name="l2_kib", choices=l2),
            AxisSpec(
                axis="float",
                name="freq_mhz",
                low=min(freq),
                high=max(freq),
                levels=freq,
            ),
            AxisSpec(axis="choice", name="strategy", choices=strategies),
        )
    )
    return TuneSpec(
        workload=_workload_spec_from_args(args),
        space=space,
        searcher=args.searcher,
        budget=args.budget,
        seed=args.seed,
        objectives=tuple(args.objectives),
        constraints=tuple(args.constraint),
        prefetch=args.prefetch,
    )


def _model_summary(name: str, config) -> dict:
    """Machine-readable architecture summary of one registered model."""
    return {
        "name": name,
        "model": config.name,
        "embed_dim": config.embed_dim,
        "ffn_dim": config.ffn_dim,
        "num_heads": config.num_heads,
        "kv_heads": config.kv_heads,
        "head_dim": config.head_dim,
        "num_layers": config.num_layers,
        "ffn_kind": config.ffn_kind.value,
        "norm_kind": config.norm_kind.value,
        "activation": config.activation.value,
        "num_experts": config.num_experts,
        "moe_top_k": config.moe_top_k,
        "attention_window": config.attention_window,
        "kv_cache_dtype": config.kv_dtype.name,
        "cross_attention": config.cross_attention,
        "weight_dtype": config.weight_dtype.name,
        "act_dtype": config.act_dtype.name,
        "total_params": config.total_params,
        "block_weight_bytes": config.block_weight_bytes,
    }


def _attention_label(config) -> str:
    if config.kv_heads == 1 and config.num_heads > 1:
        return f"mqa {config.num_heads}h/1kv"
    if config.kv_heads != config.num_heads:
        return f"gqa {config.num_heads}h/{config.kv_heads}kv"
    return f"mha {config.num_heads}h"


def _command_models(args: argparse.Namespace) -> List[str]:
    names = list(args.names) if args.names else list_models()
    if args.json:
        payload = [_model_summary(name, get_model(name)) for name in names]
        return [json.dumps(payload, indent=2, sort_keys=True)]
    if args.names:
        lines = []
        for name in names:
            summary = _model_summary(name, get_model(name))
            lines.append(f"{name}:")
            for key in sorted(summary):
                if key == "name":
                    continue
                lines.append(f"  {key:<20}: {summary[key]}")
        return lines
    lines = []
    for name in names:
        config = get_model(name)
        extras = [_attention_label(config)]
        if config.is_moe:
            extras.append(f"moe {config.num_experts}e/top{config.moe_top_k}")
        if config.attention_window is not None:
            extras.append(f"window {config.attention_window}")
        if config.cross_attention:
            extras.append("xattn")
        lines.append(
            f"{name:<24} E={config.embed_dim} F={config.ffn_dim} "
            f"H={config.num_heads} L={config.num_layers} "
            f"params={config.total_params / 1e6:.1f}M "
            f"block={format_bytes(config.block_weight_bytes)} "
            f"[{' '.join(extras)}]"
        )
    return lines


def _command_strategies() -> List[str]:
    lines = []
    for name in list_strategies():
        strategy = get_strategy(name)
        lines.append(f"{name:<20} {strategy.label}")
    return lines


def _command_policies() -> List[str]:
    from .serving import get_policy, list_policies

    lines = []
    for name in list_policies():
        policy = get_policy(name)
        lines.append(f"{name:<20} {policy.label}")
    return lines


def _command_routers() -> List[str]:
    from .fleet import list_routers, router_label

    lines = []
    for name in list_routers():
        lines.append(f"{name:<20} {router_label(name)}")
    return lines


def _command_platforms() -> List[str]:
    from .hw.presets import get_platform_preset, list_platform_presets

    lines = []
    for name in list_platform_presets():
        preset = get_platform_preset(name)
        platform = preset.build(1)
        chip = platform.chip
        lines.append(f"{name:<20} {preset.description}")
        lines.append(
            f"{'':<20} cores={chip.cluster.num_cores} "
            f"@ {chip.cluster.frequency_hz / 1e6:.0f} MHz, "
            f"L1={format_bytes(chip.l1.size_bytes)}, "
            f"L2={format_bytes(chip.l2.size_bytes)}, "
            f"link={platform.link.bandwidth_bytes_per_s / 1e9:g} GB/s "
            f"@ {platform.link.energy_pj_per_byte:g} pJ/B, "
            f"groups of {platform.group_size}"
        )
    return lines


def _command_searchers() -> List[str]:
    from .dse import get_objective, get_searcher, list_objectives, list_searchers

    lines = []
    for name in list_searchers():
        searcher = get_searcher(name)
        lines.append(f"{name:<20} {searcher.label}")
    lines.append("")
    lines.append("objectives:")
    for name in list_objectives():
        objective = get_objective(name)
        lines.append(f"{name:<20} [{objective.sense.value}] {objective.label}")
    return lines


def _command_evaluate(args: argparse.Namespace) -> List[str]:
    spec = _evaluate_spec_from_args(args)
    if args.emit_spec:
        return [spec.to_json().rstrip("\n")]
    session = _session_from_args(args)
    result = session.run(spec)
    if args.json:
        return [json.dumps(eval_result_to_dict(result), indent=2, sort_keys=True)]
    lines = [
        result.summary()
        + (
            f", on-chip={result.runs_from_on_chip_memory}"
            if result.runs_from_on_chip_memory is not None
            else ""
        ),
        f"  strategy   : {result.strategy} ({result.approach})",
        f"  runtime    : {result.block_cycles:,.0f} cycles "
        f"({format_time(result.block_runtime_seconds)}) per block",
        f"  energy     : {format_energy(result.block_energy_joules)} per block",
        f"  L3 traffic : {format_bytes(result.l3_bytes_per_block)} per block",
    ]
    if result.c2c_bytes_per_block is not None:
        lines.append(
            f"  C2C traffic: {format_bytes(result.c2c_bytes_per_block)} per block"
        )
    breakdown = result.runtime_breakdown()
    if breakdown is not None:
        lines.append(
            "  breakdown  : "
            + ", ".join(
                f"{category.value}={value:,.0f}"
                for category, value in breakdown.items()
            )
        )
    if result.notes:
        lines.append(f"  notes      : {result.notes}")
    return lines


def _strategy_sweep_table(sweep: EvalSweep) -> str:
    """Generic cycles/speedup/energy table for any strategy's sweep."""
    rows = []
    for result in sweep.results:
        rows.append(
            [
                str(result.num_chips),
                f"{result.block_cycles:,.0f}",
                f"{result.speedup_over(sweep.baseline):.2f}x",
                format_energy(result.block_energy_joules),
                format_bytes(result.l3_bytes_per_block),
            ]
        )
    return format_table(
        ["Chips", "Cycles/block", "Speedup", "Energy/block", "L3/block"], rows
    )


def _command_sweep(args: argparse.Namespace) -> List[str]:
    spec = _sweep_spec_from_args(args)
    if args.emit_spec:
        return [spec.to_json().rstrip("\n")]
    session = _session_from_args(args)
    if args.json and args.output and not args.output.lower().endswith(".json"):
        # Pure argument validation: fail before the (possibly long) sweep.
        raise AnalysisError(
            f"--json writes a JSON document; use a .json path "
            f"(got {args.output!r}) or drop --json for the CSV exporter"
        )
    workload = spec.workload.build()
    sweep = session.sweep(spec)
    if args.json:
        lines = [eval_sweep_to_json(sweep, cache=session.cache_info())]
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(lines[0])
        return lines
    lines = [f"Chip-count sweep for {workload.name} (strategy: {sweep.strategy})"]
    if all(result.report is not None for result in sweep.results):
        classic = sweep.to_sweep_result()
        lines += [
            runtime_breakdown_table(classic),
            "",
            energy_runtime_table(classic),
        ]
        if args.output:
            write_sweep(classic, args.output)
            lines.append(f"wrote {args.output}")
    else:
        lines.append(_strategy_sweep_table(sweep))
        if args.output:
            lines.append(
                "export is only supported for simulator-backed strategies "
                f"(strategy {sweep.strategy!r} is analytical)"
            )
    return lines


def _command_compare(args: argparse.Namespace) -> List[str]:
    spec = _compare_spec_from_args(args)
    if args.emit_spec:
        return [spec.to_json().rstrip("\n")]
    session = _session_from_args(args)
    comparison = session.compare(spec)
    if args.json:
        return [comparison_to_json(comparison)]
    best = comparison.best()
    return [
        (
            f"Strategy comparison on {comparison.num_chips} chips, "
            f"workload {comparison.workload.name}"
        ),
        comparison.render(),
        (
            f"fastest: {best.strategy} "
            f"({best.block_cycles:,.0f} cycles/block)"
        ),
    ]


def _command_serve(args: argparse.Namespace) -> List[str]:
    from .serving import save_trace

    spec = _serve_spec_from_args(args)
    if args.emit_spec:
        return [spec.to_json().rstrip("\n")]
    session = _session_from_args(args)
    report = session.serve(spec)
    if args.save_trace is not None:
        save_trace(
            [record.request for record in report.result.records],
            args.save_trace,
        )
    if args.json:
        return [report.to_json(cache=session.cache_info())]
    lines = [report.render()]
    if args.save_trace is not None:
        lines.append(f"wrote trace {args.save_trace}")
    return lines


def _command_fleet(args: argparse.Namespace) -> List[str]:
    spec = _fleet_spec_from_args(args)
    if args.emit_spec:
        return [spec.to_json().rstrip("\n")]
    session = _session_from_args(args)
    report = session.serve_fleet(spec)
    if args.json:
        return [fleet_report_to_json(report, cache=session.cache_info())]
    return [report.render()]


def _positive_int_flag(value: Optional[str], flag: str) -> Optional[int]:
    """Parse an integer CLI flag that must be >= 1.

    Raised as a :class:`ConfigurationError` so every malformed value
    exits with the CLI's uniform one-line ``error: ...`` contract
    instead of an argparse usage dump.
    """
    if value is None:
        return None
    from .errors import ConfigurationError

    try:
        parsed = int(value)
    except ValueError:
        raise ConfigurationError(
            f"{flag} must be an integer, got {value!r}"
        ) from None
    if parsed < 1:
        raise ConfigurationError(f"{flag} must be >= 1, got {parsed}")
    return parsed


def _checkpoint_path_flag(value: Optional[str], flag: str) -> Optional[str]:
    """Validate a checkpoint path flag (non-blank, not a directory)."""
    if value is None:
        return None
    from .errors import ConfigurationError

    if not value.strip():
        raise ConfigurationError(f"{flag} needs a file path, got {value!r}")
    if Path(value).is_dir():
        raise ConfigurationError(
            f"{flag} must name a checkpoint file, and {value!r} is a "
            "directory"
        )
    return value


def _command_tune(args: argparse.Namespace) -> List[str]:
    from .errors import ConfigurationError

    spec = _tune_spec_from_args(args)
    parallel = _positive_int_flag(args.parallel, "--parallel")
    checkpoint = _checkpoint_path_flag(args.checkpoint, "--checkpoint")
    checkpoint_every = _positive_int_flag(
        args.checkpoint_every, "--checkpoint-every"
    )
    resume = _checkpoint_path_flag(args.resume, "--resume")
    if checkpoint_every is not None and checkpoint is None:
        raise ConfigurationError(
            "--checkpoint-every needs --checkpoint to set where "
            "checkpoints are written"
        )
    if args.emit_spec:
        if parallel is not None or checkpoint_every is not None:
            spec = replace(
                spec, parallel=parallel, checkpoint_every=checkpoint_every
            )
        return [spec.to_json().rstrip("\n")]
    session = _session_from_args(args)
    from .spec.runner import execute

    result = execute(
        session,
        spec,
        parallel=parallel,
        checkpoint=checkpoint,
        checkpoint_every=checkpoint_every,
        resume=resume,
    )
    if args.json:
        return [tune_result_to_json(result)]
    return [result.render()]


#: ``experiments --only`` values that have a faithful shipped study.
_EXPERIMENT_STUDIES = {
    "fig4": "fig4",
    "fig6": "fig6",
    "table1": "table1",
    "serving": "serving-capacity",
}


def _command_experiments(args: argparse.Namespace) -> List[str]:
    from .api.session import set_default_session

    if getattr(args, "emit_spec", False):
        from .spec import get_study

        study_name = _EXPERIMENT_STUDIES.get(args.only)
        if study_name is None:
            expressible = ", ".join(sorted(_EXPERIMENT_STUDIES))
            if args.only == "all":
                raise AnalysisError(
                    "--emit-spec needs a single experiment; pass --only "
                    f"with one of: {expressible}"
                )
            raise AnalysisError(
                f"experiment {args.only!r} has no declarative study "
                "equivalent (it aggregates derived analytics); spec-"
                f"expressible experiments: {expressible}"
            )
        return [get_study(study_name).to_json().rstrip("\n")]

    # The harnesses evaluate through the shared default session; install
    # one honouring the cache flags so figure regeneration also reuses
    # (and feeds) the persistent cross-process cache.  The override is
    # scoped to this command so programmatic main() callers (and the
    # test suite) keep their own default session afterwards.
    previous = set_default_session(_session_from_args(args))
    try:
        return _run_experiments(args)
    finally:
        set_default_session(previous)


def _run_experiments(args: argparse.Namespace) -> List[str]:
    from .experiments import (
        render_dse,
        render_fig4,
        render_fig5,
        render_fig6,
        render_headline,
        render_serving,
        render_table1,
        run_dse,
        run_fig4,
        run_fig5,
        run_fig6,
        run_headline,
        run_serving,
        run_table1,
    )

    runners = {
        "fig4": lambda: render_fig4(run_fig4()),
        "fig5": lambda: render_fig5(run_fig5()),
        "fig6": lambda: render_fig6(run_fig6()),
        "table1": lambda: render_table1(run_table1()),
        "headline": lambda: render_headline(run_headline()),
        "serving": lambda: render_serving(run_serving()),
        "dse": lambda: render_dse(run_dse()),
    }
    if args.only == "all":
        from .experiments.runner import render_all, run_all

        return [render_all(run_all())]
    return [runners[args.only]()]


def _command_cache(args: argparse.Namespace) -> List[str]:
    from .api.cache import EvalCache, default_cache_dir, persistent_cache_disabled

    directory = getattr(args, "cache_dir", None) or default_cache_dir()
    store = EvalCache(directory)
    if args.action == "path":
        return [str(store.path)]
    if args.action == "clear":
        removed = store.clear()
        return [f"removed {removed} cached evaluation(s) from {store.path}"]
    stats = store.stats()
    lines = [
        f"path           : {stats.path}",
        f"entries        : {stats.entries}",
        f"size           : {format_bytes(stats.size_bytes)}",
        f"schema version : {stats.schema_version}",
        f"code version   : {stats.code_version}",
    ]
    if persistent_cache_disabled():
        lines.append("note           : REPRO_NO_CACHE is set; the default "
                     "store is disabled for evaluating commands")
    return lines


#: The `repro study init` starter template, emitted verbatim.
_STUDY_TEMPLATE = {
    "schema": 1,
    "kind": "study",
    "name": "my-study",
    "description": "Evaluate one block, then sweep chip counts.",
    "stages": [
        {
            "kind": "stage",
            "name": "evaluate-8",
            "spec": {
                "kind": "evaluate",
                "workload": {
                    "kind": "workload",
                    "model": {"kind": "model", "name": "tinyllama-42m"},
                    "mode": "autoregressive",
                    "seq_len": 128,
                },
                "strategy": "paper",
                "platform": {"kind": "platform", "chips": 8},
            },
        },
        {
            "kind": "stage",
            "name": "sweep",
            "spec": {"kind": "sweep", "chips": [1, 2, 4, 8]},
        },
    ],
}


def _load_study_target(target: str):
    """Resolve a `study run` target: spec file path or registered name.

    Single-command specs (as emitted by ``--emit-spec``) are wrapped into
    a one-stage study so any captured invocation replays directly.
    """
    from .spec import (
        RUNNABLE_KINDS,
        StageSpec,
        StudySpec,
        get_study,
        list_studies,
        load_spec,
    )

    if not Path(target).exists():
        if target in list_studies():
            return get_study(target)
        if not target.endswith(".json") and "/" not in target:
            # Clearly meant as a registry name, not a path: say what the
            # registry actually holds instead of "no such file".
            raise AnalysisError(
                f"no registered study (and no spec file) named {target!r}; "
                "registered studies: " + ", ".join(list_studies())
            )
    spec = load_spec(target)
    if isinstance(spec, StudySpec):
        return spec
    if type(spec) in RUNNABLE_KINDS.values():
        return StudySpec(
            name="adhoc",
            description=f"single {spec.kind} spec from {target}",
            stages=(StageSpec(name=spec.kind, spec=spec),),
        )
    raise AnalysisError(
        f"{target} holds a {spec.kind!r} spec, which is not runnable on "
        "its own; `repro study run` takes a study or a single evaluating "
        "command's spec"
    )


def _command_study(args: argparse.Namespace) -> List[str]:
    from .api.study import Study
    from .spec import load_spec

    if args.action == "init":
        text = json.dumps(_STUDY_TEMPLATE, indent=2, sort_keys=True) + "\n"
        if args.output is not None:
            Path(args.output).write_text(text, encoding="utf-8")
            return [f"wrote template {args.output}"]
        return [text.rstrip("\n")]

    if args.action == "validate":
        if not args.target:
            raise AnalysisError("study validate needs at least one spec file")
        lines = []
        for target in args.target:
            spec = load_spec(target)
            validate = getattr(spec, "validate", None)
            if validate is None:
                raise AnalysisError(
                    f"{target}: a {spec.kind!r} spec has no validator"
                )
            validate(path=target)
            detail = (
                f"{len(spec.stages)} stage(s)"
                if hasattr(spec, "stages")
                else spec.kind
            )
            lines.append(f"ok: {target} ({detail})")
        return lines

    # action == "run"
    if len(args.target) != 1:
        raise AnalysisError(
            "study run takes exactly one spec file or registered study name"
        )
    study_spec = _load_study_target(args.target[0])
    parallel = _positive_int_flag(args.parallel, "--parallel")
    runner = Study(study_spec, session=_session_from_args(args))
    result = runner.run(args.output_dir, parallel=parallel)
    if args.json:
        return [json.dumps(result.to_document(), indent=2, sort_keys=True)]
    lines = [result.render()]
    if args.output_dir is not None:
        lines.append(f"wrote {len(result.stages) + 1} file(s) to {args.output_dir}")
    return lines


def _command_studies() -> List[str]:
    from .spec import get_study, list_studies, study_description

    lines = []
    for name in list_studies():
        spec = get_study(name)
        lines.append(f"{name:<20} {len(spec.stages):>3} stage(s)  "
                     f"{study_description(name)}")
    return lines


def _command_verify(args: argparse.Namespace) -> List[str]:
    # Imported lazily: the numerical check is the only CLI path that
    # needs numpy, and every other subcommand must work without it.
    from .numerics.verify import verify_partition_equivalence

    config = get_model(args.model)
    report = verify_partition_equivalence(config, args.chips, rows=args.rows)
    status = "EXACT" if report.is_equivalent() else "MISMATCH"
    return [
        f"model={args.model} chips={args.chips} rows={args.rows}",
        f"  max |error|           : {report.max_abs_error:.3e}",
        f"  mean |error|          : {report.mean_abs_error:.3e}",
        f"  weights scattered once: {report.weights_scattered_exactly_once}",
        f"  verdict               : {status}",
    ]


def _dispatch(args: argparse.Namespace, parser: argparse.ArgumentParser) -> List[str]:
    if args.command == "models":
        return _command_models(args)
    if args.command == "strategies":
        return _command_strategies()
    if args.command == "policies":
        return _command_policies()
    if args.command == "routers":
        return _command_routers()
    if args.command == "platforms":
        return _command_platforms()
    if args.command == "searchers":
        return _command_searchers()
    if args.command == "studies":
        return _command_studies()
    if args.command == "study":
        return _command_study(args)
    if args.command == "tune":
        return _command_tune(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "fleet":
        return _command_fleet(args)
    if args.command == "evaluate":
        return _command_evaluate(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "experiments":
        return _command_experiments(args)
    if args.command == "verify":
        return _command_verify(args)
    if args.command == "cache":
        return _command_cache(args)
    # pragma: no cover - argparse enforces the choices
    parser.error(f"unknown command {args.command!r}")
    raise AssertionError("unreachable")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro`` command-line interface.

    Invalid input of any kind — unknown registry names, malformed spec
    documents, unreadable files, bad value combinations — exits with
    status 2 and a single ``error: ...`` line on stderr, matching the
    exit status argparse itself uses for unparseable flags.  Tracebacks
    are reserved for genuine bugs.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        lines = _dispatch(args, parser)
    except ReproError as error:
        message = " ".join(str(error).split())  # one line, however raised
        print(f"error: {message}", file=sys.stderr)
        return 2
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        print("\n".join(lines))
    except BrokenPipeError:
        # The consumer (e.g. `repro studies | head`) closed the pipe;
        # redirect stdout to devnull so the interpreter's final flush
        # cannot raise again, and exit quietly.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
