"""Command-line interface.

``python -m repro <command>`` exposes the library's main entry points
without writing any Python:

* ``models``      — list the registered model configurations,
* ``strategies``  — list the registered partitioning strategies,
* ``policies``    — list the registered serving scheduler policies,
* ``platforms``   — list the registered hardware platform presets,
* ``searchers``   — list the registered DSE search algorithms/objectives,
* ``evaluate``    — evaluate one Transformer block on a chip count,
* ``sweep``       — run a chip-count sweep with any registered strategy
  and print (or export) the Fig. 4/5-style tables,
* ``compare``     — strategy ablation (Table-I style) on one chip count,
* ``serve``       — request-level serving simulation (traffic trace,
  queueing policy, tail-latency/SLO analytics),
* ``tune``        — design-space exploration (searchable platform space,
  multi-objective search, Pareto front),
* ``experiments`` — regenerate the paper's figures and tables,
* ``verify``      — numerically verify the partitioning scheme's exactness,
* ``cache``       — inspect or clear the persistent evaluation cache.

Every evaluating command runs through :class:`repro.api.Session`, so any
strategy added with :func:`repro.api.register_strategy` (or scheduling
policy added with :func:`repro.serving.register_policy`, search algorithm
added with :func:`repro.dse.register_searcher`, objective added with
:func:`repro.dse.register_objective`) is immediately usable from the
command line.  ``evaluate``, ``sweep``, ``compare``, ``serve``, and
``tune`` all take ``--json`` to emit one shared machine-readable format
instead of the human tables; the Session-driven JSON documents include
the session's cache statistics so memoisation reuse is observable.

Every evaluating command also shares the persistent cross-process
evaluation cache (:mod:`repro.api.cache`): results land on disk under
``~/.cache/repro`` (override with ``--cache-dir`` or ``REPRO_CACHE_DIR``)
and are reused by later invocations, so re-running a sweep or serving
study in a new process is nearly free.  Disable with ``--no-cache`` or
``REPRO_NO_CACHE=1``; inspect with ``repro cache stats``.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional, Sequence

from .analysis.export import (
    comparison_to_json,
    eval_result_to_dict,
    eval_sweep_to_json,
    tune_result_to_json,
    write_sweep,
)
from .analysis.tables import energy_runtime_table, format_table, runtime_breakdown_table
from .api.registry import get_strategy, list_strategies
from .api.session import EvalSweep, Session
from .api.strategies import BASELINE_STRATEGIES, PAPER_STRATEGY
from .core.placement import PrefetchAccounting
from .errors import AnalysisError
from .graph.transformer import InferenceMode
from .graph.workload import Workload
from .models.registry import get_model, list_models
from .units import format_bytes, format_energy, format_time

#: Default sequence lengths per inference mode (the paper's setup).
_DEFAULT_SEQ_LEN = {
    InferenceMode.AUTOREGRESSIVE: 128,
    InferenceMode.PROMPT: 16,
    InferenceMode.ENCODER: 268,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Distributed Transformer inference on low-power MCUs "
            "(DATE 2025 reproduction)"
        ),
    )
    _add_cache_arguments(parser, suppress=False)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("models", help="list registered model configurations")

    subparsers.add_parser(
        "strategies", help="list registered partitioning strategies"
    )

    subparsers.add_parser(
        "policies", help="list registered serving scheduler policies"
    )

    subparsers.add_parser(
        "platforms", help="list registered hardware platform presets"
    )

    subparsers.add_parser(
        "searchers",
        help="list registered design-space searchers and objectives",
    )

    evaluate = subparsers.add_parser(
        "evaluate", help="evaluate one Transformer block on a chip count"
    )
    _add_workload_arguments(evaluate)
    _add_strategy_argument(evaluate)
    evaluate.add_argument(
        "--chips", type=int, default=8, help="number of chips (default: 8)"
    )
    _add_json_argument(evaluate)

    sweep = subparsers.add_parser(
        "sweep", help="run a chip-count sweep and print the figure tables"
    )
    _add_workload_arguments(sweep)
    _add_strategy_argument(sweep)
    sweep.add_argument(
        "--chips",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="chip counts to sweep (default: 1 2 4 8)",
    )
    sweep.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="evaluate sweep points in N worker processes",
    )
    sweep.add_argument(
        "--output",
        type=str,
        default=None,
        help="optional export path (.csv or .json)",
    )
    _add_json_argument(sweep)

    compare = subparsers.add_parser(
        "compare", help="strategy ablation on one chip count (Table I style)"
    )
    _add_workload_arguments(compare)
    compare.add_argument(
        "--chips", type=int, default=8, help="number of chips (default: 8)"
    )
    compare.add_argument(
        "--strategies",
        nargs="+",
        default=list(BASELINE_STRATEGIES),
        metavar="NAME",
        help=(
            "registered strategies to compare, in order "
            "(default: the Table I ablation)"
        ),
    )
    _add_json_argument(compare)

    serve = subparsers.add_parser(
        "serve",
        help="request-level serving simulation (queueing + tail latency)",
    )
    serve.add_argument(
        "--model",
        default="tinyllama-42m",
        help="registered model name (see `repro models`)",
    )
    serve.add_argument(
        "--chips", type=int, default=8, help="number of chips (default: 8)"
    )
    _add_strategy_argument(serve)
    serve.add_argument(
        "--policy",
        default="fifo",
        metavar="NAME",
        help="registered scheduling policy (default: fifo; see `repro policies`)",
    )
    serve.add_argument(
        "--trace",
        choices=["poisson", "bursty", "closed"],
        default="poisson",
        help="synthetic traffic generator (default: poisson)",
    )
    serve.add_argument(
        "--arrival-rate",
        type=float,
        default=2.0,
        metavar="RPS",
        help="mean arrival rate in requests/s (default: 2)",
    )
    serve.add_argument(
        "--burst-rate",
        type=float,
        default=None,
        metavar="RPS",
        help="burst-state arrival rate for --trace bursty (default: 4x base)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=300.0,
        metavar="S",
        help="arrival horizon in seconds (default: 300)",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=8,
        help="client population for --trace closed (default: 8)",
    )
    serve.add_argument(
        "--requests-per-client",
        type=int,
        default=16,
        help="requests each closed-loop client submits (default: 16)",
    )
    serve.add_argument(
        "--think-time",
        type=float,
        default=1.0,
        metavar="S",
        help="mean closed-loop think time in seconds (default: 1)",
    )
    serve.add_argument(
        "--prompt-mean",
        type=float,
        default=64.0,
        help="mean prompt length in tokens (default: 64)",
    )
    serve.add_argument(
        "--output-mean",
        type=float,
        default=32.0,
        help="mean reply length in tokens (default: 32)",
    )
    serve.add_argument(
        "--prompt-max",
        type=int,
        default=256,
        help="largest sampled prompt length (default: 256)",
    )
    serve.add_argument(
        "--output-max",
        type=int,
        default=128,
        help="largest sampled reply length (default: 128)",
    )
    serve.add_argument(
        "--priority-levels",
        type=int,
        default=1,
        help="uniform priority classes assigned by the trace (default: 1)",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help=(
            "trace seed; equal seeds give byte-identical output "
            "(default: 0; meaningless with --replay)"
        ),
    )
    serve.add_argument(
        "--replay",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "replay a recorded JSON trace verbatim instead of generating "
            "one (the generator flags and --seed do not apply)"
        ),
    )
    serve.add_argument(
        "--save-trace",
        type=str,
        default=None,
        metavar="PATH",
        help="write the materialised trace as replayable JSON",
    )
    serve.add_argument(
        "--slo-ttft",
        type=float,
        nargs="+",
        default=None,
        metavar="S",
        help="TTFT targets of the SLO-attainment curve (default: standard grid)",
    )
    _add_json_argument(serve)

    tune = subparsers.add_parser(
        "tune",
        help="design-space exploration (multi-objective platform search)",
    )
    _add_workload_arguments(tune)
    tune.add_argument(
        "--searcher",
        default="random",
        metavar="NAME",
        help=(
            "registered search algorithm (default: random; "
            "see `repro searchers`)"
        ),
    )
    tune.add_argument(
        "--budget",
        type=int,
        default=24,
        help="evaluation budget of the searcher (default: 24)",
    )
    tune.add_argument(
        "--seed",
        type=int,
        default=0,
        help="search seed; equal seeds give byte-identical output (default: 0)",
    )
    tune.add_argument(
        "--objectives",
        nargs="+",
        default=["latency", "energy", "hw_cost"],
        metavar="NAME",
        help=(
            "objectives of the Pareto front, in order "
            "(default: latency energy hw_cost; see `repro searchers`)"
        ),
    )
    tune.add_argument(
        "--constraint",
        action="append",
        default=[],
        metavar="EXPR",
        help="feasibility bound like 'latency<=0.01' or 'slo>=0.95' (repeatable)",
    )
    tune.add_argument(
        "--chips",
        type=int,
        nargs="+",
        default=None,
        help="chip-count choices of the space (default: 1 2 4 8)",
    )
    tune.add_argument(
        "--link-gbps",
        type=float,
        nargs="+",
        default=None,
        metavar="GBPS",
        help="C2C bandwidth levels in GB/s (default: 0.125 0.25 0.5 1 2)",
    )
    tune.add_argument(
        "--l2-kib",
        type=int,
        nargs="+",
        default=None,
        metavar="KIB",
        help="L2 capacity choices in KiB (default: 1024 2048 4096)",
    )
    tune.add_argument(
        "--freq-mhz",
        type=float,
        nargs="+",
        default=None,
        metavar="MHZ",
        help="cluster frequency levels in MHz (default: 300 500)",
    )
    tune.add_argument(
        "--strategies",
        nargs="+",
        default=None,
        metavar="NAME",
        help="strategy choices of the space (default: paper)",
    )
    _add_json_argument(tune)

    experiments = subparsers.add_parser(
        "experiments", help="regenerate the paper's figures and tables"
    )
    experiments.add_argument(
        "--only",
        choices=[
            "fig4", "fig5", "fig6", "table1", "headline", "serving", "dse",
            "all",
        ],
        default="all",
        help=(
            "which experiment to run (default: all — the paper's figures; "
            "'serving' runs the capacity-vs-SLO study, 'dse' the "
            "budget-vs-Pareto-front study)"
        ),
    )

    verify = subparsers.add_parser(
        "verify", help="numerically verify the partitioning scheme's exactness"
    )
    verify.add_argument("--model", default="tinyllama-42m")
    verify.add_argument("--chips", type=int, default=8)
    verify.add_argument("--rows", type=int, default=4)

    cache = subparsers.add_parser(
        "cache", help="inspect or clear the persistent evaluation cache"
    )
    cache.add_argument(
        "action",
        choices=["stats", "clear", "path"],
        help=(
            "stats: entry count/size/versions; clear: drop every stored "
            "evaluation; path: print the store location"
        ),
    )

    # The cache flags are accepted both before the subcommand (the global
    # position) and after it, where most users type them.
    for evaluating in (evaluate, sweep, compare, serve, tune, experiments, cache):
        _add_cache_arguments(evaluating, suppress=True)

    return parser


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        default="tinyllama-42m",
        help="registered model name (see `repro models`)",
    )
    parser.add_argument(
        "--mode",
        choices=[mode.value for mode in InferenceMode],
        default=InferenceMode.AUTOREGRESSIVE.value,
        help="inference mode (default: autoregressive)",
    )
    parser.add_argument(
        "--seq-len",
        type=int,
        default=None,
        help="sequence/context length (default: the paper's value per mode)",
    )
    parser.add_argument(
        "--prefetch",
        choices=[policy.value for policy in PrefetchAccounting],
        default=PrefetchAccounting.HIDDEN.value,
        help="prefetch runtime accounting policy (default: hidden)",
    )


def _add_strategy_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strategy",
        default=PAPER_STRATEGY,
        metavar="NAME",
        help=(
            "registered partitioning strategy (default: paper; "
            "see `repro strategies`)"
        ),
    )


def _add_json_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON document instead of the tables",
    )


def _add_cache_arguments(
    parser: argparse.ArgumentParser, *, suppress: bool
) -> None:
    """Add the persistent-cache flags to a (sub)parser.

    The root parser owns the defaults; subparsers use ``SUPPRESS`` so a
    flag given after the subcommand overrides the root default without a
    conflicting second default.
    """
    parser.add_argument(
        "--no-cache",
        action="store_true",
        default=argparse.SUPPRESS if suppress else False,
        help="do not read or write the persistent evaluation cache",
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=argparse.SUPPRESS if suppress else None,
        metavar="DIR",
        help=(
            "persistent evaluation cache directory (default: "
            "$REPRO_CACHE_DIR or ~/.cache/repro)"
        ),
    )


def _workload_from_args(args: argparse.Namespace) -> Workload:
    config = get_model(args.model)
    mode = InferenceMode(args.mode)
    seq_len = args.seq_len if args.seq_len is not None else _DEFAULT_SEQ_LEN[mode]
    return Workload(config=config, mode=mode, seq_len=seq_len)


def _session_from_args(args: argparse.Namespace) -> Session:
    """A session honouring the prefetch and persistent-cache flags.

    CLI sessions persist evaluations on disk by default, so a repeated
    invocation in a fresh process reuses every warm result instead of
    re-simulating it.
    """
    prefetch = PrefetchAccounting(
        getattr(args, "prefetch", PrefetchAccounting.HIDDEN.value)
    )
    if getattr(args, "no_cache", False):
        return Session(prefetch_accounting=prefetch, persistent=False)
    return Session(
        prefetch_accounting=prefetch,
        cache_dir=getattr(args, "cache_dir", None),
        persistent=True,
    )


def _command_models() -> List[str]:
    lines = []
    for name in list_models():
        config = get_model(name)
        lines.append(
            f"{name:<24} E={config.embed_dim} F={config.ffn_dim} "
            f"H={config.num_heads} L={config.num_layers} "
            f"params={config.total_params / 1e6:.1f}M "
            f"block={format_bytes(config.block_weight_bytes)}"
        )
    return lines


def _command_strategies() -> List[str]:
    lines = []
    for name in list_strategies():
        strategy = get_strategy(name)
        lines.append(f"{name:<20} {strategy.label}")
    return lines


def _command_policies() -> List[str]:
    from .serving import get_policy, list_policies

    lines = []
    for name in list_policies():
        policy = get_policy(name)
        lines.append(f"{name:<20} {policy.label}")
    return lines


def _command_platforms() -> List[str]:
    from .hw.presets import get_platform_preset, list_platform_presets

    lines = []
    for name in list_platform_presets():
        preset = get_platform_preset(name)
        platform = preset.build(1)
        chip = platform.chip
        lines.append(f"{name:<20} {preset.description}")
        lines.append(
            f"{'':<20} cores={chip.cluster.num_cores} "
            f"@ {chip.cluster.frequency_hz / 1e6:.0f} MHz, "
            f"L1={format_bytes(chip.l1.size_bytes)}, "
            f"L2={format_bytes(chip.l2.size_bytes)}, "
            f"link={platform.link.bandwidth_bytes_per_s / 1e9:g} GB/s "
            f"@ {platform.link.energy_pj_per_byte:g} pJ/B, "
            f"groups of {platform.group_size}"
        )
    return lines


def _command_searchers() -> List[str]:
    from .dse import get_objective, get_searcher, list_objectives, list_searchers

    lines = []
    for name in list_searchers():
        searcher = get_searcher(name)
        lines.append(f"{name:<20} {searcher.label}")
    lines.append("")
    lines.append("objectives:")
    for name in list_objectives():
        objective = get_objective(name)
        lines.append(f"{name:<20} [{objective.sense.value}] {objective.label}")
    return lines


def _command_evaluate(args: argparse.Namespace) -> List[str]:
    workload = _workload_from_args(args)
    session = _session_from_args(args)
    result = session.run(workload, args.strategy, chips=args.chips)
    if args.json:
        return [json.dumps(eval_result_to_dict(result), indent=2, sort_keys=True)]
    lines = [
        result.summary()
        + (
            f", on-chip={result.runs_from_on_chip_memory}"
            if result.runs_from_on_chip_memory is not None
            else ""
        ),
        f"  strategy   : {result.strategy} ({result.approach})",
        f"  runtime    : {result.block_cycles:,.0f} cycles "
        f"({format_time(result.block_runtime_seconds)}) per block",
        f"  energy     : {format_energy(result.block_energy_joules)} per block",
        f"  L3 traffic : {format_bytes(result.l3_bytes_per_block)} per block",
    ]
    if result.c2c_bytes_per_block is not None:
        lines.append(
            f"  C2C traffic: {format_bytes(result.c2c_bytes_per_block)} per block"
        )
    breakdown = result.runtime_breakdown()
    if breakdown is not None:
        lines.append(
            "  breakdown  : "
            + ", ".join(
                f"{category.value}={value:,.0f}"
                for category, value in breakdown.items()
            )
        )
    if result.notes:
        lines.append(f"  notes      : {result.notes}")
    return lines


def _strategy_sweep_table(sweep: EvalSweep) -> str:
    """Generic cycles/speedup/energy table for any strategy's sweep."""
    rows = []
    for result in sweep.results:
        rows.append(
            [
                str(result.num_chips),
                f"{result.block_cycles:,.0f}",
                f"{result.speedup_over(sweep.baseline):.2f}x",
                format_energy(result.block_energy_joules),
                format_bytes(result.l3_bytes_per_block),
            ]
        )
    return format_table(
        ["Chips", "Cycles/block", "Speedup", "Energy/block", "L3/block"], rows
    )


def _command_sweep(args: argparse.Namespace) -> List[str]:
    workload = _workload_from_args(args)
    session = _session_from_args(args)
    if args.json and args.output and not args.output.lower().endswith(".json"):
        # Pure argument validation: fail before the (possibly long) sweep.
        raise AnalysisError(
            f"--json writes a JSON document; use a .json path "
            f"(got {args.output!r}) or drop --json for the CSV exporter"
        )
    sweep = session.sweep(
        workload, args.chips, strategy=args.strategy, parallel=args.parallel
    )
    if args.json:
        lines = [eval_sweep_to_json(sweep, cache=session.cache_info())]
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(lines[0])
        return lines
    lines = [f"Chip-count sweep for {workload.name} (strategy: {sweep.strategy})"]
    if all(result.report is not None for result in sweep.results):
        classic = sweep.to_sweep_result()
        lines += [
            runtime_breakdown_table(classic),
            "",
            energy_runtime_table(classic),
        ]
        if args.output:
            write_sweep(classic, args.output)
            lines.append(f"wrote {args.output}")
    else:
        lines.append(_strategy_sweep_table(sweep))
        if args.output:
            lines.append(
                "export is only supported for simulator-backed strategies "
                f"(strategy {sweep.strategy!r} is analytical)"
            )
    return lines


def _command_compare(args: argparse.Namespace) -> List[str]:
    workload = _workload_from_args(args)
    session = _session_from_args(args)
    comparison = session.compare(
        workload, chips=args.chips, strategies=args.strategies
    )
    if args.json:
        return [comparison_to_json(comparison)]
    best = comparison.best()
    return [
        (
            f"Strategy comparison on {comparison.num_chips} chips, "
            f"workload {workload.name}"
        ),
        comparison.render(),
        (
            f"fastest: {best.strategy} "
            f"({best.block_cycles:,.0f} cycles/block)"
        ),
    ]


def _command_serve(args: argparse.Namespace) -> List[str]:
    from .serving import (
        BurstyTrace,
        ClosedLoopTrace,
        LengthModel,
        PoissonTrace,
        load_trace,
        save_trace,
    )

    config = get_model(args.model)
    lengths = LengthModel(
        prompt_mean=args.prompt_mean,
        output_mean=args.output_mean,
        prompt_max=args.prompt_max,
        output_max=args.output_max,
    )
    if args.replay is not None:
        if args.seed is not None:
            raise AnalysisError(
                "--seed has no effect with --replay (the trace is replayed "
                "verbatim); drop one of the two flags"
            )
        trace = load_trace(args.replay)
    elif args.trace == "bursty":
        burst_rate = (
            args.burst_rate
            if args.burst_rate is not None
            else 4.0 * args.arrival_rate
        )
        trace = BurstyTrace(
            base_rate_rps=args.arrival_rate,
            burst_rate_rps=burst_rate,
            duration_s=args.duration,
            lengths=lengths,
            priority_levels=args.priority_levels,
        )
    elif args.trace == "closed":
        trace = ClosedLoopTrace(
            clients=args.clients,
            requests_per_client=args.requests_per_client,
            mean_think_s=args.think_time,
            lengths=lengths,
            priority_levels=args.priority_levels,
        )
    else:
        trace = PoissonTrace(
            rate_rps=args.arrival_rate,
            duration_s=args.duration,
            lengths=lengths,
            priority_levels=args.priority_levels,
        )

    session = _session_from_args(args)
    report = session.serve(
        config,
        trace,
        policy=args.policy,
        strategy=args.strategy,
        chips=args.chips,
        seed=args.seed if args.seed is not None else 0,
        slo_targets=args.slo_ttft,
    )
    if args.save_trace is not None:
        save_trace(
            [record.request for record in report.result.records],
            args.save_trace,
        )
    if args.json:
        return [report.to_json(cache=session.cache_info())]
    lines = [report.render()]
    if args.save_trace is not None:
        lines.append(f"wrote trace {args.save_trace}")
    return lines


def _space_from_args(args: argparse.Namespace):
    """Build the tune command's search space from the axis-override flags."""
    from .dse import ChoiceAxis, FloatAxis, SearchSpace

    chips = tuple(args.chips) if args.chips else (1, 2, 4, 8)
    link = (
        tuple(args.link_gbps) if args.link_gbps
        else (0.125, 0.25, 0.5, 1.0, 2.0)
    )
    l2 = tuple(args.l2_kib) if args.l2_kib else (1024, 2048, 4096)
    freq = tuple(args.freq_mhz) if args.freq_mhz else (300.0, 500.0)
    strategies = tuple(args.strategies) if args.strategies else ("paper",)
    return SearchSpace(
        axes=(
            ChoiceAxis("chips", chips),
            FloatAxis("link_gbps", min(link), max(link), levels=link),
            ChoiceAxis("l2_kib", l2),
            FloatAxis("freq_mhz", min(freq), max(freq), levels=freq),
            ChoiceAxis("strategy", strategies),
        )
    )


def _command_tune(args: argparse.Namespace) -> List[str]:
    workload = _workload_from_args(args)
    session = _session_from_args(args)
    result = session.tune(
        workload,
        _space_from_args(args),
        searcher=args.searcher,
        budget=args.budget,
        seed=args.seed,
        objectives=tuple(args.objectives),
        constraints=tuple(args.constraint),
    )
    if args.json:
        return [tune_result_to_json(result)]
    return [result.render()]


def _command_experiments(args: argparse.Namespace) -> List[str]:
    from .api.session import set_default_session

    # The harnesses evaluate through the shared default session; install
    # one honouring the cache flags so figure regeneration also reuses
    # (and feeds) the persistent cross-process cache.  The override is
    # scoped to this command so programmatic main() callers (and the
    # test suite) keep their own default session afterwards.
    previous = set_default_session(_session_from_args(args))
    try:
        return _run_experiments(args)
    finally:
        set_default_session(previous)


def _run_experiments(args: argparse.Namespace) -> List[str]:
    from .experiments import (
        render_dse,
        render_fig4,
        render_fig5,
        render_fig6,
        render_headline,
        render_serving,
        render_table1,
        run_dse,
        run_fig4,
        run_fig5,
        run_fig6,
        run_headline,
        run_serving,
        run_table1,
    )

    runners = {
        "fig4": lambda: render_fig4(run_fig4()),
        "fig5": lambda: render_fig5(run_fig5()),
        "fig6": lambda: render_fig6(run_fig6()),
        "table1": lambda: render_table1(run_table1()),
        "headline": lambda: render_headline(run_headline()),
        "serving": lambda: render_serving(run_serving()),
        "dse": lambda: render_dse(run_dse()),
    }
    if args.only == "all":
        from .experiments.runner import render_all, run_all

        return [render_all(run_all())]
    return [runners[args.only]()]


def _command_cache(args: argparse.Namespace) -> List[str]:
    from .api.cache import EvalCache, default_cache_dir, persistent_cache_disabled

    directory = getattr(args, "cache_dir", None) or default_cache_dir()
    store = EvalCache(directory)
    if args.action == "path":
        return [str(store.path)]
    if args.action == "clear":
        removed = store.clear()
        return [f"removed {removed} cached evaluation(s) from {store.path}"]
    stats = store.stats()
    lines = [
        f"path           : {stats.path}",
        f"entries        : {stats.entries}",
        f"size           : {format_bytes(stats.size_bytes)}",
        f"schema version : {stats.schema_version}",
        f"code version   : {stats.code_version}",
    ]
    if persistent_cache_disabled():
        lines.append("note           : REPRO_NO_CACHE is set; the default "
                     "store is disabled for evaluating commands")
    return lines


def _command_verify(args: argparse.Namespace) -> List[str]:
    # Imported lazily: the numerical check is the only CLI path that
    # needs numpy, and every other subcommand must work without it.
    from .numerics.verify import verify_partition_equivalence

    config = get_model(args.model)
    report = verify_partition_equivalence(config, args.chips, rows=args.rows)
    status = "EXACT" if report.is_equivalent() else "MISMATCH"
    return [
        f"model={args.model} chips={args.chips} rows={args.rows}",
        f"  max |error|           : {report.max_abs_error:.3e}",
        f"  mean |error|          : {report.mean_abs_error:.3e}",
        f"  weights scattered once: {report.weights_scattered_exactly_once}",
        f"  verdict               : {status}",
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro`` command-line interface."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "models":
        lines = _command_models()
    elif args.command == "strategies":
        lines = _command_strategies()
    elif args.command == "policies":
        lines = _command_policies()
    elif args.command == "platforms":
        lines = _command_platforms()
    elif args.command == "searchers":
        lines = _command_searchers()
    elif args.command == "tune":
        lines = _command_tune(args)
    elif args.command == "serve":
        lines = _command_serve(args)
    elif args.command == "evaluate":
        lines = _command_evaluate(args)
    elif args.command == "sweep":
        lines = _command_sweep(args)
    elif args.command == "compare":
        lines = _command_compare(args)
    elif args.command == "experiments":
        lines = _command_experiments(args)
    elif args.command == "verify":
        lines = _command_verify(args)
    elif args.command == "cache":
        lines = _command_cache(args)
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
        return 2
    print("\n".join(lines))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
