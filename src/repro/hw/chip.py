"""Single-chip model: cluster + memory hierarchy + DMA engines."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .cluster import ClusterModel
from .dma import DmaModel
from .memory import MemoryHierarchy, MemoryLevel, MemoryLevelName


@dataclass(frozen=True)
class ChipModel:
    """One Siracusa-like MCU.

    Attributes:
        name: Chip model name (used in reports).
        cluster: Compute cluster model.
        memory: Three-level memory hierarchy.
        dma: DMA channel models (L2<->L1 and L3<->L2).
        l2_runtime_reserve_bytes: L2 bytes reserved for code, stacks, the
            runtime, and scratch buffers and therefore unavailable for
            weights, KV-cache, or resident activations.  This is the main
            knob that determines where the on-chip-residency crossover
            falls (see DESIGN.md).
    """

    name: str
    cluster: ClusterModel
    memory: MemoryHierarchy
    dma: DmaModel
    l2_runtime_reserve_bytes: int = 0

    def __post_init__(self) -> None:
        if self.l2_runtime_reserve_bytes < 0:
            raise ConfigurationError("L2 reserve must be non-negative")
        if self.l2_runtime_reserve_bytes >= self.memory.l2.size_bytes:
            raise ConfigurationError(
                "L2 reserve must be smaller than the L2 capacity"
            )

    @property
    def l1(self) -> MemoryLevel:
        """The L1 tightly-coupled data memory."""
        return self.memory.l1

    @property
    def l2(self) -> MemoryLevel:
        """The L2 on-chip scratchpad."""
        return self.memory.l2

    @property
    def l3(self) -> MemoryLevel:
        """The off-chip memory."""
        return self.memory.l3

    @property
    def l2_available_bytes(self) -> int:
        """L2 bytes usable for model data after the runtime reserve."""
        return self.memory.l2.size_bytes - self.l2_runtime_reserve_bytes

    @property
    def frequency_hz(self) -> float:
        """Cluster clock frequency."""
        return self.cluster.frequency_hz

    def access_energy_joules(self, level: MemoryLevelName, num_bytes: int) -> float:
        """Energy to move ``num_bytes`` into or out of the given level."""
        if num_bytes < 0:
            raise ConfigurationError("byte count must be non-negative")
        pj_per_byte = self.memory.level(level).access_energy_pj_per_byte
        return num_bytes * pj_per_byte * 1e-12


@dataclass(frozen=True)
class ChipInstance:
    """A placed chip inside a multi-chip system.

    Attributes:
        chip_id: Zero-based index of the chip in the system.
        model: The chip's hardware model (shared between instances).
    """

    chip_id: int
    model: ChipModel = field(repr=False)

    def __post_init__(self) -> None:
        if self.chip_id < 0:
            raise ConfigurationError("chip id must be non-negative")

    @property
    def name(self) -> str:
        """Stable identifier of the chip inside the system."""
        return f"chip{self.chip_id}"
