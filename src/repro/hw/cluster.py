"""Compute cluster model.

Each Siracusa chip contains an accelerator cluster of eight RISC-V cores
with DSP/ML instruction extensions, running at 500 MHz, with an average
power of 13 mW per core (numbers from the paper's experimental setup and
from the Siracusa publication it cites).  The cores access the 16-bank L1
memory through a logarithmic interconnect with one 32-bit port per core,
i.e. 32 bytes per cycle of aggregate L1 bandwidth.

The N-EUREKA accelerator present on Siracusa is intentionally *not*
modelled, matching the paper ("we do not use Siracusa's N-EUREKA
accelerator").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ClusterModel:
    """Analytical model of an MCU compute cluster.

    Attributes:
        num_cores: Number of cluster cores.
        frequency_hz: Cluster clock frequency.
        macs_per_core_per_cycle: Peak int8 multiply-accumulate throughput of
            one core (SIMD dot-product instructions).
        power_per_core_w: Average active power of one core in watts.
        l1_bytes_per_core_per_cycle: L1 load bandwidth available to each
            core through its interconnect port (4 bytes for a 32-bit port).
    """

    num_cores: int = 8
    frequency_hz: float = 500e6
    macs_per_core_per_cycle: float = 2.0
    power_per_core_w: float = 13e-3
    l1_bytes_per_core_per_cycle: float = 4.0

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigurationError("cluster must have at least one core")
        if self.frequency_hz <= 0:
            raise ConfigurationError("cluster frequency must be positive")
        if self.macs_per_core_per_cycle <= 0:
            raise ConfigurationError("MAC throughput must be positive")
        if self.power_per_core_w < 0:
            raise ConfigurationError("core power must be non-negative")
        if self.l1_bytes_per_core_per_cycle <= 0:
            raise ConfigurationError("L1 port bandwidth must be positive")

    @property
    def peak_macs_per_cycle(self) -> float:
        """Aggregate peak MAC throughput of the cluster per cycle."""
        return self.num_cores * self.macs_per_core_per_cycle

    @property
    def l1_bandwidth_bytes_per_cycle(self) -> float:
        """Aggregate L1 load bandwidth of the cluster per cycle."""
        return self.num_cores * self.l1_bytes_per_core_per_cycle

    @property
    def power_w(self) -> float:
        """Total active power of the cluster in watts."""
        return self.num_cores * self.power_per_core_w

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds at the cluster clock."""
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to cycles at the cluster clock."""
        return seconds * self.frequency_hz

    def compute_energy_joules(self, cycles: float) -> float:
        """Dynamic energy of the cluster being busy for ``cycles`` cycles."""
        return self.power_w * self.cycles_to_seconds(cycles)
