"""Hardware models: chips, memories, DMA engines, links, and platforms."""

from .chip import ChipInstance, ChipModel
from .cluster import ClusterModel
from .dma import DmaChannelModel, DmaModel
from .interconnect import ChipToChipLink, mipi_link
from .memory import MemoryHierarchy, MemoryLevel, MemoryLevelName
from .platform import MultiChipPlatform
from .presets import (
    SIRACUSA_FREQUENCY_HZ,
    SIRACUSA_GROUP_SIZE,
    SIRACUSA_L1_BYTES,
    SIRACUSA_L2_BYTES,
    SIRACUSA_L2_RUNTIME_RESERVE_BYTES,
    PlatformPreset,
    get_platform_preset,
    list_platform_presets,
    register_platform_preset,
    siracusa_big_l2_platform,
    siracusa_chip,
    siracusa_cluster,
    siracusa_dma,
    siracusa_fast_link_platform,
    siracusa_memory,
    siracusa_platform,
)

__all__ = [
    "ChipInstance",
    "ChipModel",
    "ChipToChipLink",
    "ClusterModel",
    "DmaChannelModel",
    "DmaModel",
    "MemoryHierarchy",
    "MemoryLevel",
    "MemoryLevelName",
    "MultiChipPlatform",
    "PlatformPreset",
    "SIRACUSA_FREQUENCY_HZ",
    "SIRACUSA_GROUP_SIZE",
    "SIRACUSA_L1_BYTES",
    "SIRACUSA_L2_BYTES",
    "SIRACUSA_L2_RUNTIME_RESERVE_BYTES",
    "get_platform_preset",
    "list_platform_presets",
    "mipi_link",
    "register_platform_preset",
    "siracusa_big_l2_platform",
    "siracusa_chip",
    "siracusa_cluster",
    "siracusa_dma",
    "siracusa_fast_link_platform",
    "siracusa_memory",
    "siracusa_platform",
]
