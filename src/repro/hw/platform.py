"""Multi-chip platform model.

A :class:`MultiChipPlatform` is a set of identical chips connected by
point-to-point chip-to-chip links and organised hierarchically in groups
(of four, in the paper) for collective operations.  The platform is purely
structural; the communication *schedules* over it (hierarchical all-reduce
and broadcast) are produced by :mod:`repro.core.collectives`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from ..errors import ConfigurationError
from .chip import ChipInstance, ChipModel
from .interconnect import ChipToChipLink


@dataclass(frozen=True)
class MultiChipPlatform:
    """A system of ``num_chips`` identical MCUs joined by C2C links.

    Attributes:
        chip: The hardware model shared by every chip.
        num_chips: Number of chips in the system.
        link: The chip-to-chip link model.
        group_size: Fan-in of the hierarchical reduction tree (4 in the
            paper, Fig. 1).
    """

    chip: ChipModel
    num_chips: int
    link: ChipToChipLink
    group_size: int = 4
    chips: Tuple[ChipInstance, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_chips <= 0:
            raise ConfigurationError("platform needs at least one chip")
        if self.group_size < 2:
            raise ConfigurationError("group size must be at least 2")
        object.__setattr__(
            self,
            "chips",
            tuple(ChipInstance(chip_id=i, model=self.chip) for i in range(self.num_chips)),
        )

    # ------------------------------------------------------------------
    # Compact pickling
    # ------------------------------------------------------------------
    # The per-chip instance tuple is derived state (``__post_init__``
    # builds it from ``chip`` and ``num_chips``); dropping it from the
    # pickle keeps persistent-cache entries and process-pool transfers
    # small.  It is rebuilt on first access after unpickling.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("chips", None)
        # The content-hash memo (repro.api.session) is per-process state.
        state.pop("_repro_canonical_memo", None)
        return state

    def __getattr__(self, name: str):
        if name == "chips":
            chips = tuple(
                ChipInstance(chip_id=i, model=self.chip)
                for i in range(self.num_chips)
            )
            object.__setattr__(self, "chips", chips)
            return chips
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def frequency_hz(self) -> float:
        """Cluster clock frequency, shared by all chips."""
        return self.chip.frequency_hz

    @property
    def is_single_chip(self) -> bool:
        """Whether the system degenerates to one chip (no communication)."""
        return self.num_chips == 1

    @property
    def root_chip_id(self) -> int:
        """Chip on which hierarchical reductions terminate."""
        return 0

    @property
    def num_tree_levels(self) -> int:
        """Depth of the hierarchical reduction tree."""
        levels = 0
        remaining = self.num_chips
        while remaining > 1:
            remaining = math.ceil(remaining / self.group_size)
            levels += 1
        return levels

    @property
    def aggregate_l2_bytes(self) -> int:
        """Total L2 capacity of the system."""
        return self.num_chips * self.chip.l2.size_bytes

    @property
    def aggregate_on_chip_bytes(self) -> int:
        """Total on-chip (L1 + L2) capacity of the system."""
        return self.num_chips * self.chip.memory.on_chip_bytes

    def chip_ids(self) -> List[int]:
        """The list of chip identifiers, in order."""
        return list(range(self.num_chips))

    def group_of(self, chip_id: int, level: int = 0) -> int:
        """Return the group index of ``chip_id`` at a given tree level.

        At level 0 chips ``0..group_size-1`` form group 0, the next
        ``group_size`` chips form group 1, and so on.  At level ``k`` the
        same rule is applied to the group *leaders* of level ``k-1``.
        """
        self._check_chip_id(chip_id)
        if level < 0:
            raise ConfigurationError("tree level must be non-negative")
        stride = self.group_size ** (level + 1)
        return chip_id // stride

    def group_leader(self, chip_id: int, level: int = 0) -> int:
        """Return the leader chip of ``chip_id``'s group at the given level.

        The leader of a group is its lowest-numbered member, which makes
        chip 0 the final reduction root.
        """
        self._check_chip_id(chip_id)
        stride = self.group_size ** (level + 1)
        return (chip_id // stride) * stride

    def with_num_chips(self, num_chips: int) -> "MultiChipPlatform":
        """Return a platform identical to this one but with ``num_chips`` chips."""
        return MultiChipPlatform(
            chip=self.chip,
            num_chips=num_chips,
            link=self.link,
            group_size=self.group_size,
        )

    def _check_chip_id(self, chip_id: int) -> None:
        if not 0 <= chip_id < self.num_chips:
            raise ConfigurationError(
                f"chip id {chip_id} out of range for a {self.num_chips}-chip system"
            )
