"""Chip-to-chip interconnect model.

The paper connects the Siracusa chips with a MIPI serial interface,
modelled analytically with a bandwidth of 0.5 GB/s and an energy cost of
100 pJ per byte.  All-reduce operations are performed hierarchically in
groups of four chips (Fig. 1 of the paper) to limit contention: transfers
inside different groups use different physical links and can proceed in
parallel, while transfers converging on the same receiver serialise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import gigabytes_per_second


@dataclass(frozen=True)
class ChipToChipLink:
    """Point-to-point chip-to-chip link cost model.

    Attributes:
        name: Label used in traces.
        bandwidth_bytes_per_s: Sustained link bandwidth.
        energy_pj_per_byte: Energy per transferred byte.
        latency_cycles: Fixed per-message latency in *cluster* cycles
            (protocol framing, synchronisation handshake; 1000 cycles is
            2 us at 500 MHz, a typical bring-up cost for a serial link).
    """

    name: str = "MIPI"
    bandwidth_bytes_per_s: float = gigabytes_per_second(0.5)
    energy_pj_per_byte: float = 100.0
    latency_cycles: int = 1000

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        if self.energy_pj_per_byte < 0:
            raise ConfigurationError("link energy must be non-negative")
        if self.latency_cycles < 0:
            raise ConfigurationError("link latency must be non-negative")

    def bytes_per_cycle(self, frequency_hz: float) -> float:
        """Link bandwidth expressed in bytes per cluster cycle."""
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        return self.bandwidth_bytes_per_s / frequency_hz

    def transfer_cycles(self, num_bytes: int, frequency_hz: float) -> float:
        """Cycles to move one message of ``num_bytes`` over the link."""
        if num_bytes < 0:
            raise ConfigurationError("message size must be non-negative")
        if num_bytes == 0:
            return 0.0
        return self.latency_cycles + num_bytes / self.bytes_per_cycle(frequency_hz)

    def transfer_energy_joules(self, num_bytes: int) -> float:
        """Energy to move ``num_bytes`` over the link."""
        if num_bytes < 0:
            raise ConfigurationError("message size must be non-negative")
        return num_bytes * self.energy_pj_per_byte * 1e-12


def mipi_link() -> ChipToChipLink:
    """The MIPI link parameters used throughout the paper."""
    return ChipToChipLink()
