"""DMA transfer cost models.

Two DMA paths matter for the paper's accounting:

* **L2 <-> L1**: the cluster DMA moving kernel tiles between the 2 MiB L2
  scratchpad and the 256 KiB L1, over the 64-bit AXI interconnect
  (8 bytes per cycle).
* **L3 <-> L2**: the chip I/O DMA moving weights between off-chip memory
  and L2.  Off-chip interfaces have lower bandwidth and a noticeable
  per-transaction setup cost, which is why the paper's single-chip
  configurations are dominated by this component.

A transfer of ``n`` bytes costs ``setup_cycles + n / bytes_per_cycle``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DmaChannelModel:
    """Cost model of one DMA channel between two adjacent memory levels.

    Attributes:
        name: Label used in traces (e.g. ``"L3<->L2"``).
        bytes_per_cycle: Sustained bandwidth of the channel.
        setup_cycles: Fixed cost per programmed transfer (descriptor setup,
            address generation, off-chip command overhead).
    """

    name: str
    bytes_per_cycle: float
    setup_cycles: int = 0

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ConfigurationError(f"DMA {self.name!r} bandwidth must be positive")
        if self.setup_cycles < 0:
            raise ConfigurationError(f"DMA {self.name!r} setup cost must be >= 0")

    def transfer_cycles(self, num_bytes: int, num_transfers: int = 1) -> float:
        """Cycles to move ``num_bytes`` split over ``num_transfers`` transfers."""
        if num_bytes < 0:
            raise ConfigurationError("transfer size must be non-negative")
        if num_transfers <= 0:
            raise ConfigurationError("number of transfers must be positive")
        if num_bytes == 0:
            return 0.0
        return num_transfers * self.setup_cycles + num_bytes / self.bytes_per_cycle

    def transfers_for(self, num_bytes: int, max_tile_bytes: int) -> int:
        """Number of tile transfers needed to move ``num_bytes``."""
        if max_tile_bytes <= 0:
            raise ConfigurationError("tile size must be positive")
        if num_bytes <= 0:
            return 0
        return math.ceil(num_bytes / max_tile_bytes)


@dataclass(frozen=True)
class DmaModel:
    """The pair of DMA channels of one chip."""

    l2_l1: DmaChannelModel
    l3_l2: DmaChannelModel

    @classmethod
    def default(cls) -> "DmaModel":
        """A generic Siracusa-like DMA model.

        L2<->L1 runs over the 64-bit AXI cluster DMA (8 B/cycle); L3<->L2
        runs over the chip I/O at 0.75 B/cycle (375 MB/s at 500 MHz) with a
        sizeable per-transaction setup cost typical of serial off-chip
        memories.
        """
        return cls(
            l2_l1=DmaChannelModel(name="L2<->L1", bytes_per_cycle=8.0, setup_cycles=32),
            l3_l2=DmaChannelModel(
                name="L3<->L2", bytes_per_cycle=0.75, setup_cycles=512
            ),
        )
