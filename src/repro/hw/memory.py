"""Memory hierarchy models.

Each Siracusa-like chip has a three-level hierarchy (Sec. II-B of the
paper):

* **L1**: 256 KiB of tightly-coupled data memory (16 banks), single-cycle
  access from the eight cluster cores,
* **L2**: 2 MiB of on-chip scratchpad, reached through the AXI interconnect,
* **L3**: off-chip memory (external RAM/flash), reached through the chip I/O.

The cost models only need each level's capacity, its per-byte access energy
(the paper uses 2 pJ/B for L2 and 100 pJ/B for L3), and the DMA bandwidth
between adjacent levels (modelled in :mod:`repro.hw.dma`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError, MemoryCapacityError
from ..units import format_bytes


class MemoryLevelName(str, enum.Enum):
    """Canonical names of the three memory levels."""

    L1 = "L1"
    L2 = "L2"
    L3 = "L3"


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the memory hierarchy.

    Attributes:
        name: Which level this is.
        size_bytes: Capacity in bytes.  L3 (off-chip) may be modelled as
            effectively unbounded by passing a very large value.
        access_energy_pj_per_byte: Energy to move one byte into or out of
            this level, in picojoules per byte.
        num_banks: Number of interleaved banks (informational; L1 has 16).
    """

    name: MemoryLevelName
    size_bytes: int
    access_energy_pj_per_byte: float
    num_banks: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(f"{self.name.value} size must be positive")
        if self.access_energy_pj_per_byte < 0:
            raise ConfigurationError(
                f"{self.name.value} access energy must be non-negative"
            )
        if self.num_banks <= 0:
            raise ConfigurationError(f"{self.name.value} bank count must be positive")

    def check_fits(self, num_bytes: int, what: str = "allocation") -> None:
        """Raise :class:`MemoryCapacityError` if ``num_bytes`` exceeds capacity."""
        if num_bytes > self.size_bytes:
            raise MemoryCapacityError(
                f"{what} of {format_bytes(num_bytes)} does not fit in "
                f"{self.name.value} ({format_bytes(self.size_bytes)})"
            )

    def fits(self, num_bytes: int) -> bool:
        """Return whether ``num_bytes`` fits in this level."""
        return num_bytes <= self.size_bytes


@dataclass(frozen=True)
class MemoryHierarchy:
    """The three-level memory hierarchy of one chip plus off-chip memory."""

    l1: MemoryLevel
    l2: MemoryLevel
    l3: MemoryLevel

    def __post_init__(self) -> None:
        expected = {
            "l1": MemoryLevelName.L1,
            "l2": MemoryLevelName.L2,
            "l3": MemoryLevelName.L3,
        }
        for attr, name in expected.items():
            level = getattr(self, attr)
            if level.name is not name:
                raise ConfigurationError(
                    f"hierarchy field {attr!r} must be a {name.value} level, "
                    f"got {level.name.value}"
                )

    def level(self, name: MemoryLevelName) -> MemoryLevel:
        """Look up a level by name."""
        return {
            MemoryLevelName.L1: self.l1,
            MemoryLevelName.L2: self.l2,
            MemoryLevelName.L3: self.l3,
        }[name]

    @property
    def on_chip_bytes(self) -> int:
        """Total on-chip capacity (L1 + L2)."""
        return self.l1.size_bytes + self.l2.size_bytes
