"""Hardware presets reproducing the paper's deployment platform.

The numbers below come from the paper's experimental setup (Sec. V-A) and
from the Siracusa publication it references:

* 8 RISC-V cluster cores at 500 MHz, 13 mW average power per core,
* 256 KiB of L1 TCDM (16 banks), 2 MiB of L2,
* L2 access energy 2 pJ/B, L3 access energy 100 pJ/B,
* MIPI chip-to-chip link: 0.5 GB/s and 100 pJ/B,
* hierarchical collectives in groups of four chips.

Two quantities are not published and are calibration knobs of this
reproduction (documented in DESIGN.md and EXPERIMENTS.md):

* the off-chip (L3) interface bandwidth and per-transaction setup cost,
* the share of L2 reserved for the runtime (code, stacks, I/O buffers),
  which determines where the on-chip weight-residency crossover falls.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from ..errors import ConfigurationError, UnknownPlatformPresetError
from ..units import gigabytes_per_second, kib, mib
from .chip import ChipModel
from .cluster import ClusterModel
from .dma import DmaChannelModel, DmaModel
from .interconnect import ChipToChipLink
from .memory import MemoryHierarchy, MemoryLevel, MemoryLevelName
from .platform import MultiChipPlatform

#: L1 capacity of one Siracusa chip.
SIRACUSA_L1_BYTES = kib(256)

#: L2 capacity of one Siracusa chip.
SIRACUSA_L2_BYTES = mib(2)

#: Modelled capacity of the off-chip memory (large enough for any model here).
SIRACUSA_L3_BYTES = mib(128)

#: L2 access energy used by the paper's analytical energy model.
SIRACUSA_L2_ENERGY_PJ_PER_BYTE = 2.0

#: L3 access energy used by the paper's analytical energy model.
SIRACUSA_L3_ENERGY_PJ_PER_BYTE = 100.0

#: Cluster clock frequency.
SIRACUSA_FREQUENCY_HZ = 500e6

#: Number of cluster cores.
SIRACUSA_NUM_CORES = 8

#: Average power of one cluster core.
SIRACUSA_CORE_POWER_W = 13e-3

#: Peak int8 MACs per core per cycle (SIMD dot-product extensions).
SIRACUSA_MACS_PER_CORE_PER_CYCLE = 2.0

#: Cluster-DMA bandwidth between L2 and L1 (64-bit AXI).
SIRACUSA_L2_L1_BYTES_PER_CYCLE = 8.0

#: Calibrated off-chip interface bandwidth (bytes per cluster cycle).
SIRACUSA_L3_L2_BYTES_PER_CYCLE = 0.75

#: Calibrated per-transaction setup cost of the off-chip interface.
SIRACUSA_L3_SETUP_CYCLES = 512

#: Calibrated L2 runtime reserve (code, stacks, scratch buffers).
SIRACUSA_L2_RUNTIME_RESERVE_BYTES = kib(496)

#: MIPI chip-to-chip bandwidth.
MIPI_BANDWIDTH_BYTES_PER_S = gigabytes_per_second(0.5)

#: MIPI chip-to-chip energy per byte.
MIPI_ENERGY_PJ_PER_BYTE = 100.0

#: Hierarchical-collective group size.
SIRACUSA_GROUP_SIZE = 4


def siracusa_memory() -> MemoryHierarchy:
    """The memory hierarchy of one Siracusa chip."""
    return MemoryHierarchy(
        l1=MemoryLevel(
            name=MemoryLevelName.L1,
            size_bytes=SIRACUSA_L1_BYTES,
            access_energy_pj_per_byte=0.0,
            num_banks=16,
        ),
        l2=MemoryLevel(
            name=MemoryLevelName.L2,
            size_bytes=SIRACUSA_L2_BYTES,
            access_energy_pj_per_byte=SIRACUSA_L2_ENERGY_PJ_PER_BYTE,
        ),
        l3=MemoryLevel(
            name=MemoryLevelName.L3,
            size_bytes=SIRACUSA_L3_BYTES,
            access_energy_pj_per_byte=SIRACUSA_L3_ENERGY_PJ_PER_BYTE,
        ),
    )


def siracusa_cluster() -> ClusterModel:
    """The octa-core compute cluster of one Siracusa chip."""
    return ClusterModel(
        num_cores=SIRACUSA_NUM_CORES,
        frequency_hz=SIRACUSA_FREQUENCY_HZ,
        macs_per_core_per_cycle=SIRACUSA_MACS_PER_CORE_PER_CYCLE,
        power_per_core_w=SIRACUSA_CORE_POWER_W,
    )


def siracusa_dma() -> DmaModel:
    """The DMA channel models of one Siracusa chip."""
    return DmaModel(
        l2_l1=DmaChannelModel(
            name="L2<->L1",
            bytes_per_cycle=SIRACUSA_L2_L1_BYTES_PER_CYCLE,
            setup_cycles=32,
        ),
        l3_l2=DmaChannelModel(
            name="L3<->L2",
            bytes_per_cycle=SIRACUSA_L3_L2_BYTES_PER_CYCLE,
            setup_cycles=SIRACUSA_L3_SETUP_CYCLES,
        ),
    )


def siracusa_chip(
    l2_runtime_reserve_bytes: int = SIRACUSA_L2_RUNTIME_RESERVE_BYTES,
) -> ChipModel:
    """One Siracusa-like chip with the paper's published parameters."""
    return ChipModel(
        name="siracusa",
        cluster=siracusa_cluster(),
        memory=siracusa_memory(),
        dma=siracusa_dma(),
        l2_runtime_reserve_bytes=l2_runtime_reserve_bytes,
    )


def mipi_link() -> ChipToChipLink:
    """The MIPI chip-to-chip link used by the paper."""
    return ChipToChipLink(
        name="MIPI",
        bandwidth_bytes_per_s=MIPI_BANDWIDTH_BYTES_PER_S,
        energy_pj_per_byte=MIPI_ENERGY_PJ_PER_BYTE,
    )


@lru_cache(maxsize=None)
def siracusa_platform(
    num_chips: int,
    *,
    group_size: int = SIRACUSA_GROUP_SIZE,
    l2_runtime_reserve_bytes: int = SIRACUSA_L2_RUNTIME_RESERVE_BYTES,
) -> MultiChipPlatform:
    """A system of ``num_chips`` Siracusa chips joined by MIPI links.

    Platforms are immutable, so equal arguments share one memoised
    instance; that keeps the per-instance content-hash memo of
    :mod:`repro.api.session` warm across every sweep and serving run of
    the process.
    """
    return MultiChipPlatform(
        chip=siracusa_chip(l2_runtime_reserve_bytes=l2_runtime_reserve_bytes),
        num_chips=num_chips,
        link=mipi_link(),
        group_size=group_size,
    )


def siracusa_fast_link_platform(num_chips: int) -> MultiChipPlatform:
    """A what-if Siracusa system with a 2 GB/s chip-to-chip link.

    Everything except the link bandwidth matches the paper's platform;
    this is a hypothetical variant for sensitivity studies, not a
    published configuration.
    """
    return MultiChipPlatform(
        chip=siracusa_chip(),
        num_chips=num_chips,
        link=ChipToChipLink(
            name="MIPI-2G",
            bandwidth_bytes_per_s=gigabytes_per_second(2.0),
            energy_pj_per_byte=MIPI_ENERGY_PJ_PER_BYTE,
        ),
        group_size=SIRACUSA_GROUP_SIZE,
    )


def siracusa_big_l2_platform(num_chips: int) -> MultiChipPlatform:
    """A what-if Siracusa system with 4 MiB of L2 per chip.

    Doubles the scratchpad (same runtime reserve) so the on-chip
    weight-residency crossover moves to lower chip counts; a hypothetical
    variant for sensitivity studies, not a published configuration.
    """
    chip = siracusa_chip()
    memory = replace(chip.memory, l2=replace(chip.memory.l2, size_bytes=mib(4)))
    return MultiChipPlatform(
        chip=replace(chip, memory=memory),
        num_chips=num_chips,
        link=mipi_link(),
        group_size=SIRACUSA_GROUP_SIZE,
    )


def siracusa_low_power_platform(num_chips: int) -> MultiChipPlatform:
    """A what-if Siracusa system clocked down to 300 MHz at 7 mW per core.

    Same memories, DMAs, and MIPI links as the paper's platform, but the
    cluster trades 40% of its clock for roughly half the core power — a
    hypothetical efficiency-tier chip for heterogeneous fleet studies,
    not a published configuration.
    """
    chip = siracusa_chip()
    cluster = replace(
        chip.cluster, frequency_hz=300e6, power_per_core_w=7e-3
    )
    return MultiChipPlatform(
        chip=replace(chip, cluster=cluster),
        num_chips=num_chips,
        link=mipi_link(),
        group_size=SIRACUSA_GROUP_SIZE,
    )


# ----------------------------------------------------------------------
# Preset registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlatformPreset:
    """A named, discoverable hardware configuration.

    Attributes:
        name: Registry key (``repro platforms`` lists them).
        description: One-line provenance note (paper setup vs. what-if).
        factory: Builds the platform from a chip count.
        default_chips: Chip count the paper/preset is usually quoted at.
        aliases: Alternative registry names.
    """

    name: str
    description: str
    factory: Callable[[int], MultiChipPlatform]
    default_chips: int = 8
    aliases: Tuple[str, ...] = ()

    def build(self, num_chips: int | None = None) -> MultiChipPlatform:
        """Materialise the preset (at ``default_chips`` when unspecified)."""
        return self.factory(num_chips if num_chips is not None else self.default_chips)


_PRESETS: Dict[str, PlatformPreset] = {}
_PRESET_ALIASES: Dict[str, str] = {}


def register_platform_preset(preset: PlatformPreset) -> PlatformPreset:
    """Register a platform preset under its name and aliases.

    Returns the preset unchanged so call sites can keep a reference.

    Raises:
        ConfigurationError: If any name is already taken.
    """
    for key in (preset.name, *preset.aliases):
        if key in _PRESETS or key in _PRESET_ALIASES:
            raise ConfigurationError(f"platform preset {key!r} already registered")
    _PRESETS[preset.name] = preset
    for alias in preset.aliases:
        _PRESET_ALIASES[alias] = preset.name
    return preset


def get_platform_preset(name: str) -> PlatformPreset:
    """Look up a registered platform preset by name or alias.

    Raises:
        UnknownPlatformPresetError: If no preset is registered under
            ``name``; the message lists the available names.
    """
    canonical = _PRESET_ALIASES.get(name, name)
    try:
        return _PRESETS[canonical]
    except KeyError:
        known = ", ".join(list_platform_presets()) or "<none>"
        raise UnknownPlatformPresetError(
            f"unknown platform preset {name!r}; registered: {known}"
        ) from None


def list_platform_presets() -> List[str]:
    """Sorted canonical names of all registered platform presets."""
    return sorted(_PRESETS)


register_platform_preset(
    PlatformPreset(
        name="siracusa-mipi",
        description="The paper's platform: Siracusa chips, 0.5 GB/s MIPI links",
        factory=siracusa_platform,
        aliases=("siracusa",),
    )
)
register_platform_preset(
    PlatformPreset(
        name="siracusa-fast-link",
        description="What-if variant: 2 GB/s chip-to-chip links",
        factory=siracusa_fast_link_platform,
    )
)
register_platform_preset(
    PlatformPreset(
        name="siracusa-big-l2",
        description="What-if variant: 4 MiB L2 per chip",
        factory=siracusa_big_l2_platform,
    )
)
register_platform_preset(
    PlatformPreset(
        name="siracusa-low-power",
        description="What-if variant: 300 MHz cluster at 7 mW per core",
        factory=siracusa_low_power_platform,
    )
)
