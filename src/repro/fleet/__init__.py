"""Fleet-level serving simulation: routing, admission, autoscaling.

This package composes N heterogeneous platform replicas — each one a
subsimulator backed by the per-platform serving machinery of
:mod:`repro.serving` — behind a pluggable routing policy, multi-tenant
admission control, a reactive autoscaler, and seeded fault injection
with retry/hedging failover (:mod:`repro.fleet.faults`).  Entry points:

- :meth:`repro.api.Session.serve_fleet` — imperative API
- ``FleetSpec`` in :mod:`repro.spec` — declarative, Study-composable
- ``repro fleet`` / ``repro routers`` — command line
"""

from .admission import AdmissionController, ClassStats, SLOClass
from .autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent
from .faults import FAULT_KINDS, FaultEvent, FaultModel, RetryPolicy
from .metrics import (
    DEFAULT_RECORD_THRESHOLD,
    FleetReport,
    FleetResult,
    ReplicaStats,
    ResilienceStats,
    StreamingSummary,
)
from .routers import (
    LeastLoadedRouter,
    PrefillDecodeRouter,
    ReplicaState,
    RoundRobinRouter,
    RoutingPolicy,
    SessionAffinityRouter,
    get_router,
    list_routers,
    register_router,
    router_label,
    unregister_router,
)
from .simulator import (
    REPLICA_ROLES,
    FleetPlatform,
    FleetSimulator,
    ReplicaTemplate,
    iter_requests,
)

__all__ = [
    "AdmissionController",
    "Autoscaler",
    "AutoscalerConfig",
    "ClassStats",
    "DEFAULT_RECORD_THRESHOLD",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultModel",
    "FleetPlatform",
    "FleetReport",
    "FleetResult",
    "FleetSimulator",
    "LeastLoadedRouter",
    "PrefillDecodeRouter",
    "REPLICA_ROLES",
    "ReplicaState",
    "ReplicaStats",
    "ReplicaTemplate",
    "ResilienceStats",
    "RetryPolicy",
    "RoundRobinRouter",
    "RoutingPolicy",
    "ScaleEvent",
    "SessionAffinityRouter",
    "SLOClass",
    "StreamingSummary",
    "get_router",
    "iter_requests",
    "list_routers",
    "register_router",
    "router_label",
    "unregister_router",
]
