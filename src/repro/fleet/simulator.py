"""Fleet-level discrete-event simulator over per-replica subsimulators.

The single-platform :class:`~repro.serving.simulator.ServingSimulator`
advances one engine's virtual time internally; the fleet engine inverts
that structure: every platform replica is a *subsimulator* (its own
admitted-request set, scheduling policy, and non-preemptive service
grants, with phase costs from a Session-memoised
:class:`~repro.serving.costs.RequestCostModel`), and one fleet-level
event loop advances all of them together.  The heap holds the event
kinds below — grant completions, fault transitions, retry/timeout/hedge
timers, autoscaler ticks, timeline windows, and the *next* trace arrival
(arrivals are pulled lazily from an iterator, so a day-long
million-request trace never materialises in memory) — and ties break on
a deterministic sequence number, which together with seeded traces and
stateless-per-run routers makes equal-input fleet runs byte-identical.

On arrival a request passes admission control
(:mod:`repro.fleet.admission`), is dispatched by the routing policy
(:mod:`repro.fleet.routers`) to one in-service replica, and then lives
entirely on that replica until its last token.  Completions stream into
the bounded-memory accumulators of :mod:`repro.fleet.metrics`; no
per-request record list is kept.  A reactive autoscaler
(:mod:`repro.fleet.autoscaler`) may add replicas from a platform preset
or drain them (drained replicas finish their queue, are never offered
to the router again, and retire once empty).

Fault injection (:mod:`repro.fleet.faults`) threads through the same
loop: crashed replicas leave the dispatch set (so routers are
health-aware by construction), their in-flight requests fail over under
the :class:`~repro.fleet.faults.RetryPolicy`, stragglers and brownouts
stretch grant durations, and graceful degradation sheds low-priority
classes while healthy capacity is below the configured floor.  All of
it is guarded: a run with no fault model and no retry policy executes
exactly the fault-free code path and produces bit-identical results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import AnalysisError, ConfigurationError, SimulationError
from ..serving.costs import RequestCostModel
from ..serving.metrics import DEFAULT_SLO_TTFT_TARGETS_S
from ..serving.policies import SchedulingPolicy, get_policy
from ..serving.request import ActiveRequest, Request, RequestPhase
from ..serving.traces import RequestSource, TrafficTrace
from .admission import AdmissionController
from .autoscaler import Autoscaler, AutoscalerConfig, ScaleEvent
from .faults import FaultModel, RetryPolicy
from .metrics import (
    DEFAULT_RECORD_THRESHOLD,
    FleetResult,
    ReplicaStats,
    ResilienceStats,
    StreamingSummary,
)
from .routers import RoutingPolicy, get_router

__all__ = [
    "FleetPlatform",
    "FleetSimulator",
    "ReplicaTemplate",
    "iter_requests",
]

#: Valid routing-pool tags of a replica.
REPLICA_ROLES = ("any", "prefill", "decode")

#: Event ordering at equal timestamps: completions first, then fault
#: transitions and failover timers, then scaling and timeline ticks,
#: then new arrivals.  A fault-free run pushes none of the fault kinds,
#: so its event sequence is identical to the fault-free engine's.
_KIND_GRANT_END = 0
_KIND_FAULT = 1
_KIND_TIMEOUT = 2
_KIND_RETRY = 3
_KIND_HEDGE = 4
_KIND_SCALE_TICK = 5
_KIND_WINDOW_TICK = 6
_KIND_ARRIVAL = 7


@dataclass(frozen=True)
class FleetPlatform:
    """One heterogeneous platform entry of a fleet, as the user states it.

    Attributes:
        preset: Registered platform-preset name.
        chips: Chip count (the preset's default when ``None``).
        replicas: How many identical replicas of this platform to run.
        role: Routing-pool tag (``any``, ``prefill``, or ``decode``).
    """

    preset: str = "siracusa-mipi"
    chips: Optional[int] = None
    replicas: int = 1
    role: str = "any"

    def __post_init__(self) -> None:
        if not self.preset:
            raise ConfigurationError("a fleet platform needs a preset name")
        if self.chips is not None and self.chips <= 0:
            raise ConfigurationError(f"chips must be positive, got {self.chips}")
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be at least 1, got {self.replicas}"
            )
        if self.role not in REPLICA_ROLES:
            raise ConfigurationError(
                f"unknown replica role {self.role!r}; choose from "
                + ", ".join(REPLICA_ROLES)
            )

    @classmethod
    def parse(cls, text: str) -> "FleetPlatform":
        """Parse the CLI shorthand ``preset[:chips][xN][@role]``.

        Examples: ``siracusa-mipi``, ``siracusa-mipi:8``,
        ``siracusa-mipi:8x2``, ``siracusa-big-l2:4x2@decode``.
        """
        original = text
        role = "any"
        if "@" in text:
            text, _, role = text.partition("@")
        chips: Optional[int] = None
        replicas = 1
        preset, _, rest = text.partition(":")
        if rest:
            count_text, _, replica_text = rest.partition("x")
            try:
                chips = int(count_text)
                if replica_text:
                    replicas = int(replica_text)
            except ValueError:
                raise ConfigurationError(
                    f"cannot parse fleet platform {original!r}; expected "
                    "preset[:chips][xN][@role], e.g. siracusa-mipi:8x2@prefill"
                ) from None
        if not preset:
            raise ConfigurationError(
                f"cannot parse fleet platform {original!r}; expected "
                "preset[:chips][xN][@role], e.g. siracusa-mipi:8x2@prefill"
            )
        return cls(preset=preset, chips=chips, replicas=replicas, role=role)


@dataclass(frozen=True)
class ReplicaTemplate:
    """A resolved replica recipe: platform identity plus its cost model."""

    preset: str
    chips: int
    role: str
    costs: RequestCostModel


def iter_requests(trace: TrafficTrace, seed: int) -> Iterator[Request]:
    """The open-loop arrival stream of a trace, lazily where possible.

    Traces exposing a ``stream(seed)`` generator (e.g.
    :class:`~repro.serving.traces.DiurnalTrace`) are iterated without
    materialising the request list; anything else falls back to
    ``build(seed)``.  Closed-loop traces are rejected: fleet arrivals
    must not depend on completions, or request conservation across
    replicas would be unverifiable.
    """
    stream = getattr(trace, "stream", None)
    if stream is not None:
        return iter(stream(seed))
    source = trace.build(seed)
    if not isinstance(source, RequestSource):  # defensive: protocol misuse
        raise ConfigurationError(
            f"trace {type(trace).__name__} did not build a RequestSource"
        )
    if source.is_closed_loop:
        raise ConfigurationError(
            "closed-loop traces cannot drive a fleet: arrivals would depend "
            "on completions; use an open-loop trace (poisson, bursty, "
            "diurnal, replay)"
        )
    return iter(source.initial)


class _Replica:
    """One platform subsimulator (also the router's read-only view)."""

    __slots__ = (
        "replica_id",
        "preset",
        "chips",
        "role",
        "source",
        "costs",
        "active",
        "busy",
        "busy_s",
        "added_s",
        "drained_s",
        "draining",
        "completed",
        "decode_cache",
        "crashed",
        "crashed_by",
        "down_since",
        "downtime_s",
        "slow_factor",
        "grant_epoch",
        "grant_info",
    )

    def __init__(
        self,
        replica_id: int,
        template: ReplicaTemplate,
        source: str,
        added_s: float,
    ) -> None:
        self.replica_id = replica_id
        self.preset = template.preset
        self.chips = template.chips
        self.role = template.role
        self.source = source
        self.costs = template.costs
        self.active: Dict[int, ActiveRequest] = {}
        self.busy = False
        self.busy_s = 0.0
        self.added_s = added_s
        self.drained_s: Optional[float] = None
        self.draining = False
        self.completed = 0
        self.decode_cache: List[Optional[Tuple[float, float]]] = [None] * (
            template.costs.max_context + 1
        )
        # Fault-injection state; inert (and never mutated) on the
        # fault-free path.
        self.crashed = False
        self.crashed_by: Optional[object] = None
        self.down_since: Optional[float] = None
        self.downtime_s = 0.0
        self.slow_factor = 1.0
        self.grant_epoch = 0
        self.grant_info: Optional[Tuple[ActiveRequest, float, float]] = None

    @property
    def queue_depth(self) -> int:
        return len(self.active)


class FleetSimulator:
    """Serves one arrival stream across N platform replicas.

    Args:
        replicas: Static replica recipes (at least one).
        router: Registered router name or a fresh
            :class:`~repro.fleet.routers.RoutingPolicy` instance.
        policy: Per-replica scheduling policy name (or instance).
        admission: Admission controller; a default-constructed one
            (single unlimited class) when ``None``.
        autoscaler: Reactive-scaling knobs; scaling is off when ``None``.
        scale_template: Replica recipe the autoscaler adds from
            (required when ``autoscaler`` is given).
        slo_targets: TTFT targets of the exact attainment curve.
        record_threshold: Completions beyond which latency percentiles
            switch to the streaming histogram.
        timeline_window_s: Aggregation window of the fleet timeline.
        faults: Fault schedule to inject (crashes, stragglers,
            brownouts, graceful degradation); ``None`` runs the exact
            fault-free engine.
        retry: Failover policy of crashed requests (timeouts, bounded
            retries, hedging); with faults but no policy, requests on a
            crashed replica fail on their first crash.
    """

    def __init__(
        self,
        replicas: Sequence[ReplicaTemplate],
        *,
        router: "str | RoutingPolicy" = "round_robin",
        policy: "str | SchedulingPolicy" = "fifo",
        admission: Optional[AdmissionController] = None,
        autoscaler: Optional[AutoscalerConfig] = None,
        scale_template: Optional[ReplicaTemplate] = None,
        slo_targets: Sequence[float] = DEFAULT_SLO_TTFT_TARGETS_S,
        record_threshold: int = DEFAULT_RECORD_THRESHOLD,
        timeline_window_s: float = 60.0,
        faults: Optional[FaultModel] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if not replicas:
            raise ConfigurationError("a fleet needs at least one replica")
        if record_threshold < 1:
            raise ConfigurationError("record_threshold must be at least 1")
        if timeline_window_s <= 0:
            raise ConfigurationError("timeline_window_s must be positive")
        if autoscaler is not None and scale_template is None:
            raise ConfigurationError(
                "an autoscaled fleet needs a scale_template to build "
                "replicas from"
            )
        if faults is not None:
            faults.validate_replicas(len(replicas))
        self.router = get_router(router) if isinstance(router, str) else router
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.admission = admission if admission is not None else AdmissionController()
        self.autoscaler = Autoscaler(autoscaler) if autoscaler is not None else None
        self.scale_template = scale_template
        self.slo_targets = tuple(slo_targets)
        self.record_threshold = record_threshold
        self.timeline_window_s = timeline_window_s
        self.faults = faults
        self.retry = retry
        self._templates = tuple(replicas)

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    def run(self, requests: Iterable[Request]) -> FleetResult:
        """Drain the arrival stream and return the aggregated result."""
        all_replicas: List[_Replica] = [
            _Replica(index, template, "static", 0.0)
            for index, template in enumerate(self._templates)
        ]
        serving: List[_Replica] = list(all_replicas)
        scaled_stack: List[_Replica] = []  # autoscaled, most recent last

        fault_model = self.faults
        retry = self.retry
        # One flag guards every fault/failover code path: when False the
        # loop below executes exactly the fault-free engine.
        resilient = fault_model is not None or retry is not None
        static_count = len(self._templates)

        events: List[Tuple[float, int, int, object]] = []
        seq = 0

        def push(time_s: float, kind: int, payload: object) -> None:
            nonlocal seq
            heapq.heappush(events, (time_s, kind, seq, payload))
            seq += 1

        arrival_iter = iter(requests)
        arrivals_pending = True
        last_arrival_s = 0.0

        def push_next_arrival() -> None:
            nonlocal arrivals_pending, last_arrival_s
            request = next(arrival_iter, None)
            if request is None:
                arrivals_pending = False
                return
            if request.arrival_s < last_arrival_s:
                raise SimulationError(
                    "trace arrivals are not in time order "
                    f"(request {request.request_id} at {request.arrival_s})"
                )
            last_arrival_s = request.arrival_s
            push(request.arrival_s, _KIND_ARRIVAL, request)

        # Streaming accumulators.
        queue_wait = StreamingSummary(self.record_threshold)
        ttft = StreamingSummary(self.record_threshold)
        tpot = StreamingSummary(self.record_threshold)
        e2e = StreamingSummary(self.record_threshold)
        slo_hits = [0] * len(self.slo_targets)
        class_of: Dict[int, int] = {}  # request_id -> class index
        arrived = admitted = rejected = completed = 0
        generated_tokens = prompt_tokens = 0
        total_energy = 0.0
        makespan = 0.0
        window_completed = window_slo_met = 0  # autoscaler window
        busy_bins: Dict[int, float] = {}
        timeline: List[Tuple[float, int, int, float]] = []
        scaling_events: List[ScaleEvent] = []
        window_index = 0

        # Resilience accumulators (all inert on the fault-free path).
        crashes = recoveries = retries = failed = timed_out = shed = 0
        hedges = hedge_wins = first_attempt_completed = 0
        wasted_busy_s = unavailable_s = 0.0
        outage_start: Optional[float] = None
        outage_windows = 0
        crashed_now = slow_active = brownout_active = in_backoff = 0
        brownout = 1.0
        healthy_completed = degraded_completed = 0
        slo_hits_healthy = [0] * len(self.slo_targets)
        slo_hits_degraded = [0] * len(self.slo_targets)
        attempts_of: Dict[int, int] = {}  # request_id -> crash failovers
        deadline_of: Dict[int, float] = {}  # request_id -> service deadline
        copies: Dict[int, List[_Replica]] = {}  # request_id -> live copies
        kept_classes: Optional[frozenset] = None
        if fault_model is not None and fault_model.shed_below is not None:
            ranked = sorted(
                range(len(self.admission.classes)),
                key=lambda i: (-self.admission.classes[i].priority, i),
            )
            kept_classes = frozenset(ranked[: fault_model.shed_keep])

        def work_remains() -> bool:
            return (
                arrivals_pending
                or in_backoff > 0
                or any(r.active for r in all_replicas)
            )

        def add_busy(start_s: float, end_s: float, sign: float = 1.0) -> None:
            width = self.timeline_window_s
            index = int(start_s / width)
            cursor = start_s
            while cursor < end_s:
                edge = (index + 1) * width
                span = min(end_s, edge) - cursor
                busy_bins[index] = busy_bins.get(index, 0.0) + span * sign
                cursor = edge
                index += 1

        def start_grant(replica: _Replica, now: float) -> None:
            nonlocal hedge_wins
            ready = [replica.active[rid] for rid in sorted(replica.active)]
            chosen = self.policy.select(ready, now)
            if chosen.request.request_id not in replica.active:
                raise SimulationError(
                    f"policy {self.policy.name!r} selected a request that is "
                    f"not on replica {replica.replica_id}"
                )
            if resilient:
                # First copy to enter service wins a hedge race: cancel
                # the still-queued sibling before any work is charged.
                rid = chosen.request.request_id
                race = copies.get(rid)
                if race is not None and len(race) > 1:
                    for other in race:
                        if other is not replica:
                            other.active.pop(rid, None)
                            if (
                                other.draining
                                and not other.active
                                and not other.busy
                                and other.drained_s is None
                            ):
                                retire(other, now)
                    if replica is not race[0]:
                        hedge_wins += 1
                    copies[rid] = [replica]
            duration = self._grant(replica, chosen, now)
            if resilient:
                factor = replica.slow_factor * brownout
                if factor != 1.0:
                    duration *= factor
            replica.busy = True
            replica.busy_s += duration
            replica.grant_info = (chosen, now, now + duration)
            add_busy(now, now + duration)
            push(
                now + duration,
                _KIND_GRANT_END,
                (replica, chosen, replica.grant_epoch),
            )

        def retire(replica: _Replica, now: float) -> None:
            nonlocal outage_start
            replica.drained_s = now
            try:
                serving.remove(replica)
            except ValueError:
                pass  # already out of the dispatch set (drain removed it)
            scaling_events.append(
                ScaleEvent(
                    time_s=now,
                    action="retire",
                    replica_id=replica.replica_id,
                    reason="queue-empty",
                    replicas=len(serving),
                )
            )
            if resilient and not serving and outage_start is None:
                outage_start = now

        def dispatch(request: Request, pool: List[_Replica], now: float) -> _Replica:
            chosen_replica = self.router.route(request, pool, now)
            valid = any(chosen_replica is replica for replica in pool)
            if not valid or chosen_replica.draining:
                raise SimulationError(
                    f"router {self.router.name!r} dispatched request "
                    f"{request.request_id} to a drained or unknown "
                    "replica"
                )
            if request.request_id in chosen_replica.active:
                raise SimulationError(
                    f"duplicate request id {request.request_id} "
                    f"admitted on replica {chosen_replica.replica_id}"
                )
            return chosen_replica

        def fail_request(rid: int) -> None:
            class_of.pop(rid, None)
            attempts_of.pop(rid, None)
            deadline_of.pop(rid, None)
            copies.pop(rid, None)

        def fail_over(rid: int, request: Request, now: float) -> None:
            """Decide a crashed (or stranded) request's next attempt."""
            nonlocal failed, in_backoff
            attempts = attempts_of.get(rid, 0) + 1
            attempts_of[rid] = attempts
            budget = retry.max_retries if retry is not None else 0
            backoff = retry.backoff_for(attempts) if retry is not None else 0.0
            when = now + backoff
            deadline = deadline_of.get(rid)
            if attempts <= budget and (deadline is None or when <= deadline):
                copies[rid] = []  # in backoff: queued nowhere
                in_backoff += 1
                push(when, _KIND_RETRY, (rid, request))
            else:
                failed += 1
                fail_request(rid)

        def place(
            replica: _Replica,
            request: Request,
            now: float,
            *,
            hedged: bool = False,
        ) -> None:
            """Queue one (possibly retried or hedged) copy on a replica."""
            rid = request.request_id
            active = ActiveRequest(
                request=request,
                attempt=attempts_of.get(rid, 0),
                deadline_s=deadline_of.get(rid),
                hedged=hedged,
            )
            replica.active[rid] = active
            if hedged:
                copies[rid].append(replica)
            else:
                copies[rid] = [replica]
            if retry is not None and retry.hedge_after_s is not None:
                push(now + retry.hedge_after_s, _KIND_HEDGE, (rid, request))
            if not replica.busy:
                start_grant(replica, now)

        push_next_arrival()
        if self.autoscaler is not None:
            push(
                self.autoscaler.config.check_interval_s,
                _KIND_SCALE_TICK,
                None,
            )
        push(self.timeline_window_s, _KIND_WINDOW_TICK, None)
        if fault_model is not None:
            for event in fault_model.schedule(tuple(range(static_count))):
                if event.kind == "crash":
                    push(event.start_s, _KIND_FAULT, ("crash", event))
                    if event.end_s is not None:
                        push(event.end_s, _KIND_FAULT, ("recover", event))
                elif event.kind == "slowdown":
                    push(event.start_s, _KIND_FAULT, ("slow_start", event))
                    push(event.end_s, _KIND_FAULT, ("slow_end", event))
                else:  # brownout
                    push(event.start_s, _KIND_FAULT, ("brownout_start", event))
                    push(event.end_s, _KIND_FAULT, ("brownout_end", event))

        while events:
            now, kind, _, payload = heapq.heappop(events)

            if kind == _KIND_GRANT_END:
                replica, chosen, epoch = payload  # type: ignore[misc]
                if epoch != replica.grant_epoch:
                    continue  # the grant was aborted by a crash
                replica.busy = False
                replica.grant_info = None
                if chosen.is_done:
                    chosen.phase = RequestPhase.DONE
                    request = chosen.request
                    del replica.active[request.request_id]
                    index = class_of.pop(request.request_id)
                    wait_s = chosen.first_scheduled_s - request.arrival_s
                    ttft_s = chosen.first_token_s - request.arrival_s
                    e2e_s = now - request.arrival_s
                    queue_wait.add(wait_s)
                    ttft.add(ttft_s)
                    e2e.add(e2e_s)
                    if request.output_tokens > 1:
                        tpot.add(
                            (now - chosen.first_token_s)
                            / (request.output_tokens - 1)
                        )
                    for position, target in enumerate(self.slo_targets):
                        if ttft_s <= target:
                            slo_hits[position] += 1
                    self.admission.complete(index, ttft_s)
                    completed += 1
                    replica.completed += 1
                    generated_tokens += request.output_tokens
                    prompt_tokens += request.prompt_tokens
                    total_energy += chosen.energy_joules
                    makespan = now
                    window_completed += 1
                    if (
                        self.autoscaler is not None
                        and self.autoscaler.config.ttft_slo_s is not None
                        and ttft_s <= self.autoscaler.config.ttft_slo_s
                    ):
                        window_slo_met += 1
                    if resilient:
                        rid = request.request_id
                        if attempts_of.pop(rid, 0) == 0:
                            first_attempt_completed += 1
                        deadline_of.pop(rid, None)
                        copies.pop(rid, None)
                        degraded = (
                            crashed_now > 0
                            or slow_active > 0
                            or brownout_active > 0
                        )
                        if degraded:
                            degraded_completed += 1
                            split_hits = slo_hits_degraded
                        else:
                            healthy_completed += 1
                            split_hits = slo_hits_healthy
                        for position, target in enumerate(self.slo_targets):
                            if ttft_s <= target:
                                split_hits[position] += 1
                if replica.active:
                    start_grant(replica, now)
                elif replica.draining and replica.drained_s is None:
                    retire(replica, now)

            elif kind == _KIND_FAULT:
                action, event = payload  # type: ignore[misc]
                if action == "crash":
                    replica = all_replicas[event.replica]
                    if not replica.crashed and replica.drained_s is None:
                        crashes += 1
                        crashed_now += 1
                        replica.crashed = True
                        replica.crashed_by = event
                        replica.down_since = now
                        if replica in serving:
                            serving.remove(replica)
                        if not serving and outage_start is None:
                            outage_start = now
                        if replica.busy:
                            # Abort the in-flight grant: roll back its
                            # unserved remainder, charge the served part
                            # as wasted work.
                            assert replica.grant_info is not None
                            _, grant_start, grant_end = replica.grant_info
                            replica.busy_s -= grant_end - now
                            add_busy(now, grant_end, -1.0)
                            wasted_busy_s += now - grant_start
                            replica.busy = False
                            replica.grant_epoch += 1
                            replica.grant_info = None
                        victims = [
                            (rid, replica.active[rid].request)
                            for rid in sorted(replica.active)
                        ]
                        for rid, _request in victims:
                            replica.active[rid].phase = RequestPhase.FAILED
                        replica.active.clear()
                        for rid, victim in victims:
                            race = copies.get(rid)
                            if race is not None and len(race) > 1:
                                # A hedged sibling survives elsewhere.
                                race.remove(replica)
                                continue
                            fail_over(rid, victim, now)
                elif action == "recover":
                    replica = all_replicas[event.replica]
                    if replica.crashed and replica.crashed_by is event:
                        recoveries += 1
                        crashed_now -= 1
                        replica.crashed = False
                        replica.crashed_by = None
                        assert replica.down_since is not None
                        replica.downtime_s += now - replica.down_since
                        replica.down_since = None
                        if replica.drained_s is None and not replica.draining:
                            serving.append(replica)
                            serving.sort(key=lambda r: r.replica_id)
                            if outage_start is not None:
                                unavailable_s += now - outage_start
                                outage_windows += 1
                                outage_start = None
                elif action == "slow_start":
                    all_replicas[event.replica].slow_factor *= event.factor
                    slow_active += 1
                elif action == "slow_end":
                    all_replicas[event.replica].slow_factor /= event.factor
                    slow_active -= 1
                elif action == "brownout_start":
                    brownout *= event.factor
                    brownout_active += 1
                else:  # brownout_end
                    brownout /= event.factor
                    brownout_active -= 1

            elif kind == _KIND_TIMEOUT:
                rid = payload  # type: ignore[assignment]
                if rid in class_of:
                    race = copies.get(rid)
                    started = False
                    if race:
                        for rep in race:
                            active = rep.active.get(rid)
                            if (
                                active is not None
                                and active.first_scheduled_s is not None
                            ):
                                started = True
                    if not started:
                        # Never entered service by the deadline: abandon
                        # every queued copy (an empty race means the
                        # request was waiting out a retry backoff).
                        if race:
                            for rep in race:
                                active = rep.active.pop(rid, None)
                                if active is not None:
                                    active.phase = RequestPhase.TIMED_OUT
                                if (
                                    rep.draining
                                    and not rep.active
                                    and not rep.busy
                                    and rep.drained_s is None
                                ):
                                    retire(rep, now)
                        elif race == []:
                            in_backoff -= 1
                        timed_out += 1
                        fail_request(rid)

            elif kind == _KIND_RETRY:
                rid, request = payload  # type: ignore[misc]
                if rid in class_of and copies.get(rid) == []:
                    in_backoff -= 1
                    if serving:
                        retries += 1
                        place(dispatch(request, serving, now), request, now)
                    else:
                        # Nothing to dispatch to: burn another attempt
                        # (bounded), or fail the request.
                        fail_over(rid, request, now)

            elif kind == _KIND_HEDGE:
                rid, request = payload  # type: ignore[misc]
                race = copies.get(rid)
                if rid in class_of and race is not None and len(race) == 1:
                    primary = race[0]
                    active = primary.active.get(rid)
                    if active is not None and active.first_scheduled_s is None:
                        pool = [r for r in serving if r is not primary]
                        if pool:
                            hedges += 1
                            place(
                                dispatch(request, pool, now),
                                request,
                                now,
                                hedged=True,
                            )

            elif kind == _KIND_ARRIVAL:
                request = payload  # type: ignore[assignment]
                arrived += 1
                required = request.prompt_tokens + request.output_tokens - 1
                max_context = min(r.costs.max_context for r in all_replicas)
                if required > max_context:
                    raise ConfigurationError(
                        f"request {request.request_id} needs a context of "
                        f"{required} tokens, beyond the fleet's serving "
                        f"window ({max_context}); shorten the trace's "
                        "lengths or raise max_context"
                    )
                if resilient and not serving:
                    # Total outage: nothing to dispatch to, shed at the
                    # door (deterministic stand-in for conn-refused).
                    shed += 1
                    self.admission.shed(request)
                    push_next_arrival()
                    continue
                if (
                    kept_classes is not None
                    and len(serving)
                    < fault_model.shed_below * static_count  # type: ignore[union-attr]
                    and self.admission.class_index(request) not in kept_classes
                ):
                    # Graceful degradation: healthy capacity is below
                    # the floor, shed every class but the protected ones.
                    shed += 1
                    self.admission.shed(request)
                    push_next_arrival()
                    continue
                ok, slo_class = self.admission.admit(request)
                if not ok:
                    rejected += 1
                else:
                    admitted += 1
                    if slo_class.priority != request.priority:
                        request = replace(request, priority=slo_class.priority)
                    if not serving:
                        raise SimulationError(
                            "no replica is in service to dispatch to "
                            f"(request {request.request_id} at {now:.3f}s)"
                        )
                    chosen_replica = dispatch(request, serving, now)
                    chosen_active = ActiveRequest(request=request)
                    class_of[request.request_id] = self.admission.index_of(
                        slo_class
                    )
                    if resilient:
                        rid = request.request_id
                        timeout = slo_class.timeout_s
                        if timeout is None and retry is not None:
                            timeout = retry.timeout_s
                        if timeout is not None:
                            deadline = request.arrival_s + timeout
                            deadline_of[rid] = deadline
                            chosen_active.deadline_s = deadline
                            push(deadline, _KIND_TIMEOUT, rid)
                        copies[rid] = [chosen_replica]
                        if retry is not None and retry.hedge_after_s is not None:
                            push(
                                now + retry.hedge_after_s,
                                _KIND_HEDGE,
                                (rid, request),
                            )
                    chosen_replica.active[request.request_id] = chosen_active
                    if not chosen_replica.busy:
                        start_grant(chosen_replica, now)
                push_next_arrival()

            elif kind == _KIND_SCALE_TICK:
                assert self.autoscaler is not None
                depth = sum(len(r.active) for r in serving)
                per_replica = depth / len(serving) if serving else float(depth)
                decision = self.autoscaler.decide(
                    queue_depth_per_replica=per_replica,
                    window_completed=window_completed,
                    window_slo_met=window_slo_met,
                )
                window_completed = window_slo_met = 0
                if decision in ("queue-depth", "slo-attainment"):
                    assert self.scale_template is not None
                    replica = _Replica(
                        len(all_replicas), self.scale_template, "autoscaled", now
                    )
                    all_replicas.append(replica)
                    serving.append(replica)
                    serving.sort(key=lambda r: r.replica_id)
                    scaled_stack.append(replica)
                    self.autoscaler.extras += 1
                    scaling_events.append(
                        ScaleEvent(
                            time_s=now,
                            action="add",
                            replica_id=replica.replica_id,
                            reason=decision,
                            replicas=len(serving),
                        )
                    )
                    if resilient and outage_start is not None:
                        unavailable_s += now - outage_start
                        outage_windows += 1
                        outage_start = None
                elif decision == "drained" and scaled_stack:
                    replica = scaled_stack.pop()
                    replica.draining = True
                    serving.remove(replica)
                    self.autoscaler.extras -= 1
                    scaling_events.append(
                        ScaleEvent(
                            time_s=now,
                            action="drain",
                            replica_id=replica.replica_id,
                            reason=decision,
                            replicas=len(serving),
                        )
                    )
                    if not replica.active:
                        retire(replica, now)
                if work_remains():
                    push(
                        now + self.autoscaler.config.check_interval_s,
                        _KIND_SCALE_TICK,
                        None,
                    )

            else:  # _KIND_WINDOW_TICK
                depth = sum(len(r.active) for r in all_replicas)
                busy = busy_bins.pop(window_index, 0.0)
                capacity = self.timeline_window_s * max(1, len(serving))
                timeline.append(
                    (now, depth, len(serving), min(1.0, busy / capacity))
                )
                window_index += 1
                if work_remains():
                    push(now + self.timeline_window_s, _KIND_WINDOW_TICK, None)

        if arrived == 0:
            raise AnalysisError("the trace generated no requests")

        resilience: Optional[ResilienceStats] = None
        if resilient:
            if outage_start is not None and makespan > outage_start:
                unavailable_s += makespan - outage_start
                outage_windows += 1
            downtime = 0.0
            for replica in all_replicas:
                downtime += replica.downtime_s
                if (
                    replica.down_since is not None
                    and makespan > replica.down_since
                ):
                    downtime += makespan - replica.down_since
            resilience = ResilienceStats(
                crashes=crashes,
                recoveries=recoveries,
                retries=retries,
                failed=failed,
                timed_out=timed_out,
                shed=shed,
                hedges=hedges,
                hedge_wins=hedge_wins,
                first_attempt_completed=first_attempt_completed,
                goodput_rps=(
                    first_attempt_completed / makespan if makespan > 0 else 0.0
                ),
                wasted_busy_s=wasted_busy_s,
                replica_downtime_s=downtime,
                unavailable_s=unavailable_s,
                unavailable_windows=outage_windows,
                healthy_completed=healthy_completed,
                degraded_completed=degraded_completed,
                slo_curve_healthy=tuple(
                    (
                        target,
                        slo_hits_healthy[position] / healthy_completed
                        if healthy_completed
                        else 0.0,
                    )
                    for position, target in enumerate(self.slo_targets)
                ),
                slo_curve_degraded=tuple(
                    (
                        target,
                        slo_hits_degraded[position] / degraded_completed
                        if degraded_completed
                        else 0.0,
                    )
                    for position, target in enumerate(self.slo_targets)
                ),
            )

        stats = tuple(
            ReplicaStats(
                replica_id=replica.replica_id,
                preset=replica.preset,
                chips=replica.chips,
                role=replica.role,
                source=replica.source,
                completed=replica.completed,
                busy_s=replica.busy_s,
                added_s=replica.added_s,
                drained_s=replica.drained_s,
                utilisation=_replica_utilisation(replica, makespan),
            )
            for replica in all_replicas
        )
        return FleetResult(
            router=self.router.name,
            policy=self.policy.name,
            arrived=arrived,
            admitted=admitted,
            rejected=rejected,
            completed=completed,
            in_flight=admitted - completed - failed - timed_out,
            makespan_s=makespan,
            generated_tokens=generated_tokens,
            prompt_tokens=prompt_tokens,
            total_energy_joules=total_energy,
            queue_wait=queue_wait.summary(),
            ttft=ttft.summary(),
            tpot=tpot.summary(),
            e2e=e2e.summary(),
            approximate=ttft.approximate,
            record_threshold=self.record_threshold,
            slo_curve=tuple(
                (target, slo_hits[position] / completed if completed else 0.0)
                for position, target in enumerate(self.slo_targets)
            ),
            classes=tuple(self.admission.to_dicts(include_shed=resilient)),
            replicas=stats,
            timeline=tuple(timeline),
            scaling_events=tuple(scaling_events),
            resilience=resilience,
        )

    # ------------------------------------------------------------------
    # One service grant on one replica
    # ------------------------------------------------------------------
    def _grant(
        self, replica: _Replica, chosen: ActiveRequest, now: float
    ) -> float:
        """Advance ``chosen`` by one grant; returns the grant's duration."""
        request = chosen.request
        if not chosen.prefill_done:
            cost = replica.costs.prefill_cost(request.prompt_tokens)
            if chosen.first_scheduled_s is None:
                chosen.first_scheduled_s = now
            chosen.phase = RequestPhase.PREFILL
            chosen.first_token_s = now + cost.seconds
            chosen.tokens_emitted = 1
            chosen.energy_joules += cost.energy_joules
            chosen.phase = RequestPhase.DECODE
            return cost.seconds

        quantum = self.policy.decode_quantum
        remaining = chosen.remaining_tokens
        steps = remaining if quantum is None else min(quantum, remaining)
        if steps <= 0:
            raise SimulationError(
                f"policy {self.policy.name!r} selected the finished request "
                f"{request.request_id}"
            )
        seconds = 0.0
        energy = 0.0
        cache = replica.decode_cache
        base = request.prompt_tokens + chosen.tokens_emitted
        for step in range(steps):
            # The k-th decode step attends to the prompt plus the tokens
            # emitted so far (same accounting as the serving simulator).
            context = base + step
            pair = cache[context]
            if pair is None:
                cost = replica.costs.decode_cost(context)
                pair = (cost.seconds, cost.energy_joules)
                cache[context] = pair
            seconds += pair[0]
            energy += pair[1]
        chosen.tokens_emitted += steps
        chosen.energy_joules += energy
        return seconds


def _replica_utilisation(replica: _Replica, makespan_s: float) -> float:
    end = replica.drained_s if replica.drained_s is not None else makespan_s
    span = end - replica.added_s
    if span <= 0:
        return 0.0
    return min(1.0, replica.busy_s / span)
