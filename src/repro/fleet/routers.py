"""Pluggable fleet routing policies and their registry.

A *routing policy* decides, at every arrival the admission controller
lets through, which platform replica of the fleet the request is
dispatched to.  Routers register themselves by name with
:func:`register_router` — mirroring the scheduling-policy registry of
:mod:`repro.serving.policies` — so a new placement idea becomes available
to ``Session.serve_fleet`` and the ``repro fleet`` CLI by writing one
small class::

    from repro.fleet import register_router

    @register_router
    class CheapestRouter:
        name = "cheapest"
        label = "Fewest chips first"

        def route(self, request, replicas, now_s):
            return min(replicas, key=lambda r: (r.chips, r.replica_id))

Unlike scheduling policies, routers may be *stateful* (round-robin keeps
a cursor, session affinity keeps a sticky map), so the registry stores
factories and :func:`get_router` returns a **fresh instance per call**;
two fleet runs therefore never share router state, which is part of what
keeps same-seed runs byte-identical.

The fleet engine only ever offers replicas that are in service — a
draining, retired, or crashed replica is filtered out before ``route``
is called, which makes every router *health-aware by construction*
(under fault injection a crashed replica simply vanishes from the
candidate list until it recovers) — and every shipped router breaks
ties by ``replica_id``.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence, runtime_checkable

from ..errors import ConfigurationError, UnknownRouterError
from ..serving.request import Request

__all__ = [
    "LeastLoadedRouter",
    "PrefillDecodeRouter",
    "ReplicaState",
    "RoundRobinRouter",
    "RoutingPolicy",
    "SessionAffinityRouter",
    "get_router",
    "list_routers",
    "register_router",
    "router_label",
    "unregister_router",
]


@runtime_checkable
class ReplicaState(Protocol):
    """The read-only view of one platform replica a router ranks.

    Attributes:
        replica_id: Unique id, also the deterministic tie-breaker.
        preset: Registered platform-preset name the replica runs.
        chips: Chip count of the replica's platform.
        role: ``"any"``, ``"prefill"``, or ``"decode"`` — the pool tag the
            disaggregated router partitions on.
        queue_depth: Requests currently admitted to this replica
            (queued plus in service).
        draining: Whether the replica is finishing its queue before
            retiring.  The engine never offers draining replicas to a
            router; the flag exists so tests can assert exactly that.
        crashed: Whether the replica is currently failed under fault
            injection.  Like ``draining``, the engine removes crashed
            replicas from the dispatch set before ``route`` is called,
            so a router never has to check it — it exists for tests and
            for routers that want to expose health in their own state.
    """

    replica_id: int
    preset: str
    chips: int
    role: str
    queue_depth: int
    draining: bool
    crashed: bool


@runtime_checkable
class RoutingPolicy(Protocol):
    """What the registry requires of a fleet routing policy.

    Attributes:
        name: Registry key (lowercase snake_case by convention).
        label: Human-readable description shown by ``repro routers``.
    """

    name: str
    label: str

    def route(
        self,
        request: Request,
        replicas: Sequence[ReplicaState],
        now_s: float,
    ) -> ReplicaState:
        """Pick the replica that serves ``request``.

        Args:
            request: The admitted request being dispatched.
            replicas: In-service replicas in ``replica_id`` order (never
                empty, never draining).  Entries must not be mutated.
            now_s: Current virtual time.
        """
        ...


_ROUTERS: Dict[str, type] = {}
_ALIASES: Dict[str, str] = {}


def register_router(router):
    """Class decorator (or direct call) registering a routing policy.

    Accepts a router *class* instantiable with no arguments; the class is
    registered under its ``name`` plus any names in an optional
    ``aliases`` attribute.  Because routers may carry per-run state, the
    registry stores the class and :func:`get_router` instantiates it
    anew on every lookup.  Returns the argument unchanged so it can be
    used as a decorator.

    Raises:
        ConfigurationError: If the name is missing, already taken, or an
            instance does not implement :class:`RoutingPolicy`.
    """
    if not isinstance(router, type):
        raise ConfigurationError(
            "register_router takes a router class (routers are stateful, "
            "so the registry instantiates them per run)"
        )
    instance = router()
    name = getattr(instance, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            "a router must define a non-empty string `name` attribute"
        )
    if not isinstance(instance, RoutingPolicy):
        raise ConfigurationError(
            f"router {name!r} does not implement the RoutingPolicy "
            "protocol (name, label, route)"
        )
    for key in (name, *getattr(instance, "aliases", ())):
        if key in _ROUTERS or key in _ALIASES:
            raise ConfigurationError(f"router name {key!r} already registered")
    _ROUTERS[name] = router
    for alias in getattr(instance, "aliases", ()):
        _ALIASES[alias] = name
    return router


def unregister_router(name: str) -> None:
    """Remove a router (and its aliases) from the registry."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _ROUTERS:
        raise UnknownRouterError(_unknown_message(name))
    cls = _ROUTERS.pop(canonical)
    for alias in getattr(cls, "aliases", ()):
        _ALIASES.pop(alias, None)


def get_router(name: str) -> RoutingPolicy:
    """Instantiate the registered router named ``name`` (or an alias).

    Every call returns a fresh instance, so routers with internal state
    (round-robin cursors, affinity maps) never leak it across runs.

    Raises:
        UnknownRouterError: If no router is registered under ``name``;
            the message lists the available names.
    """
    canonical = _ALIASES.get(name, name)
    try:
        cls = _ROUTERS[canonical]
    except KeyError:
        raise UnknownRouterError(_unknown_message(name)) from None
    return cls()


def router_label(name: str) -> str:
    """The human-readable label of a registered router."""
    return get_router(name).label


def list_routers() -> List[str]:
    """Sorted canonical names of all registered routers."""
    return sorted(_ROUTERS)


def _unknown_message(name: str) -> str:
    known = ", ".join(list_routers()) or "<none>"
    return f"unknown router {name!r}; registered: {known}"


def _least_loaded(replicas: Sequence[ReplicaState]) -> ReplicaState:
    return min(replicas, key=lambda r: (r.queue_depth, r.replica_id))


# ----------------------------------------------------------------------
# Shipped routers
# ----------------------------------------------------------------------
@register_router
class RoundRobinRouter:
    """Cycle through the in-service replicas in id order.

    The cursor advances once per dispatch, so heterogeneous replicas get
    equal request *counts* regardless of their capacity — the baseline
    every load-aware router is compared against.
    """

    name = "round_robin"
    aliases = ("rr",)
    label = "Cycle through in-service replicas in id order"

    def __init__(self) -> None:
        self._cursor = 0

    def route(
        self,
        request: Request,
        replicas: Sequence[ReplicaState],
        now_s: float,
    ) -> ReplicaState:
        chosen = replicas[self._cursor % len(replicas)]
        self._cursor += 1
        return chosen


@register_router
class LeastLoadedRouter:
    """Send the request to the replica with the shallowest queue.

    Queue depth counts queued plus in-service requests, so a fast replica
    that drains quickly naturally attracts more traffic — join-the-
    shortest-queue, the classic low-latency dispatch rule.
    """

    name = "least_loaded"
    aliases = ("jsq",)
    label = "Join the shortest queue (queued + in service)"

    def route(
        self,
        request: Request,
        replicas: Sequence[ReplicaState],
        now_s: float,
    ) -> ReplicaState:
        return _least_loaded(replicas)


@register_router
class SessionAffinityRouter:
    """Pin each client to one replica (least-loaded on first contact).

    Requests carrying a ``client_id`` stick to the replica their client
    first landed on — the KV-cache/session-locality policy of real
    serving fleets.  If the pinned replica has left service, or the
    request has no client, the router falls back to least-loaded (and
    re-pins the client to the new choice).
    """

    name = "session_affinity"
    aliases = ("sticky",)
    label = "Pin clients to their first replica, least-loaded otherwise"

    def __init__(self) -> None:
        self._pins: Dict[int, int] = {}

    def route(
        self,
        request: Request,
        replicas: Sequence[ReplicaState],
        now_s: float,
    ) -> ReplicaState:
        client = request.client_id
        if client is None:
            return _least_loaded(replicas)
        pinned = self._pins.get(client)
        if pinned is not None:
            for replica in replicas:
                if replica.replica_id == pinned:
                    return replica
        chosen = _least_loaded(replicas)
        self._pins[client] = chosen.replica_id
        return chosen


@register_router
class PrefillDecodeRouter:
    """Prefill/decode-disaggregated dispatch by request shape.

    Replicas tagged ``role="prefill"`` form the prompt-heavy pool and
    ``role="decode"`` the reply-heavy pool; when no replica is tagged,
    the lower-id half of the fleet plays prefill and the rest decode.
    A request whose prompt is at least as long as its reply is
    prefill-dominated and goes to the prefill pool, and vice versa —
    request-granular disaggregation, the closest analogue of
    prefill/decode splitting on an engine that never migrates a request
    mid-flight.  Within a pool (or the whole fleet if the wanted pool is
    empty) the least-loaded replica wins.
    """

    name = "prefill_decode"
    aliases = ("disaggregated",)
    label = "Disaggregate prompt-heavy vs reply-heavy requests into role pools"

    def route(
        self,
        request: Request,
        replicas: Sequence[ReplicaState],
        now_s: float,
    ) -> ReplicaState:
        prefill_pool = [r for r in replicas if r.role == "prefill"]
        decode_pool = [r for r in replicas if r.role == "decode"]
        if not prefill_pool and not decode_pool:
            half = (len(replicas) + 1) // 2
            prefill_pool = list(replicas[:half])
            decode_pool = list(replicas[half:])
        wants_prefill = request.prompt_tokens >= request.output_tokens
        pool = prefill_pool if wants_prefill else decode_pool
        return _least_loaded(pool or replicas)
