"""Seeded, deterministic fault injection for the fleet simulator.

A :class:`FaultModel` describes *what goes wrong* during a fleet run:
replica crash/recovery windows, transient degradation (a straggler
replica serving every grant ``factor`` times slower over an interval),
and fleet-wide link/bandwidth brownouts.  Faults are first-class events
on the fleet event heap — scheduled up front, in virtual time, with the
same deterministic tie-breaking as every other event — so two same-seed
fault-injected runs are byte-identical, and a run with no fault model is
bit-identical to a run of the fault-free engine.

A :class:`RetryPolicy` describes *what the serving stack does about it*:
requests in flight on a crashed replica are failed over through the
router with bounded retries and deterministic exponential backoff, a
per-class timeout abandons requests that never reached service by their
deadline, and an optional hedge dispatches a second copy of a
slow-to-schedule request to another replica (first copy to enter service
wins; the other is cancelled).

The fault schedule has two layers that combine freely:

* an explicit event list (:meth:`FaultEvent.parse` grammar, also used by
  ``repro fleet --faults`` and the ``faults`` spec), and
* a seeded random crash layer — per-replica exponential inter-failure
  and repair times, materialised up front from a string-seeded
  :class:`random.Random` so the draw is stable across processes and
  platforms.

See ``docs/RESILIENCE.md`` for the full grammar and semantics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["FaultEvent", "FaultModel", "RetryPolicy"]

#: Valid fault-event kinds.
FAULT_KINDS = ("crash", "slowdown", "brownout")

_GRAMMAR_HINT = (
    "expected crash:REPLICA@START[+DURATION], "
    "slow:REPLICA@START+DURATIONxFACTOR, "
    "brownout@START+DURATIONxFACTOR, or random:MTBF[:MTTR[:HORIZON]]"
)


def _fault_error(text: str, why: str) -> ConfigurationError:
    return ConfigurationError(
        f"cannot parse fault {text!r} ({why}); {_GRAMMAR_HINT}"
    )


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, as the user states it.

    Attributes:
        kind: ``"crash"`` (replica leaves service, in-flight requests
            fail over), ``"slowdown"`` (replica serves ``factor`` times
            slower), or ``"brownout"`` (every replica serves ``factor``
            times slower — a fleet-wide link/bandwidth event).
        replica: Target replica id (static fleet only); ``None`` for
            brownouts, which are fleet-wide by definition.
        start_s: Virtual time the fault begins.
        duration_s: How long it lasts; ``None`` makes a crash permanent
            (slowdowns and brownouts always need a duration).
        factor: Service-time multiplier of a slowdown or brownout
            (strictly greater than 1; crashes ignore it).
    """

    kind: str
    replica: Optional[int] = None
    start_s: float = 0.0
    duration_s: Optional[float] = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from "
                + ", ".join(FAULT_KINDS)
            )
        if self.start_s < 0:
            raise ConfigurationError(
                f"fault start_s must be non-negative, got {self.start_s}"
            )
        if self.duration_s is not None and self.duration_s <= 0:
            raise ConfigurationError(
                f"fault duration_s must be positive, got {self.duration_s}"
            )
        if self.kind == "brownout":
            if self.replica is not None:
                raise ConfigurationError(
                    "a brownout is fleet-wide; it cannot target a replica"
                )
        else:
            if self.replica is None or self.replica < 0:
                raise ConfigurationError(
                    f"a {self.kind} fault needs a non-negative replica id"
                )
        if self.kind in ("slowdown", "brownout"):
            if self.duration_s is None:
                raise ConfigurationError(
                    f"a {self.kind} fault needs a duration"
                )
            if self.factor <= 1.0:
                raise ConfigurationError(
                    f"a {self.kind} factor must be greater than 1, "
                    f"got {self.factor}"
                )

    @property
    def end_s(self) -> Optional[float]:
        """When the fault clears (``None``: a permanent crash)."""
        if self.duration_s is None:
            return None
        return self.start_s + self.duration_s

    @classmethod
    def parse(cls, text: str) -> "FaultEvent":
        """Parse the shorthand grammar shared by the CLI and specs.

        * ``crash:REPLICA@START`` — permanent crash;
        * ``crash:REPLICA@START+DURATION`` — crash-and-recover window;
        * ``slow:REPLICA@START+DURATIONxFACTOR`` — straggler replica;
        * ``brownout@START+DURATIONxFACTOR`` — fleet-wide slowdown.
        """
        original = text.strip()
        head, sep, when = original.partition("@")
        if not sep or not when:
            raise _fault_error(original, "missing @START")
        kind_text, _, replica_text = head.partition(":")
        kind = {"crash": "crash", "slow": "slowdown",
                "slowdown": "slowdown", "brownout": "brownout"}.get(kind_text)
        if kind is None:
            raise _fault_error(original, f"unknown kind {kind_text!r}")
        replica: Optional[int] = None
        if kind == "brownout":
            if replica_text:
                raise _fault_error(original, "brownouts are fleet-wide")
        else:
            try:
                replica = int(replica_text)
            except ValueError:
                raise _fault_error(original, "bad replica id") from None
        factor = 1.0
        duration: Optional[float] = None
        span, x_sep, factor_text = when.partition("x")
        start_text, plus_sep, duration_text = span.partition("+")
        try:
            start = float(start_text)
            if plus_sep:
                duration = float(duration_text)
            if x_sep:
                factor = float(factor_text)
        except ValueError:
            raise _fault_error(original, "bad number") from None
        try:
            return cls(kind=kind, replica=replica, start_s=start,
                       duration_s=duration, factor=factor)
        except ConfigurationError as error:
            raise _fault_error(original, str(error)) from None


@dataclass(frozen=True)
class FaultModel:
    """The full fault schedule of one fleet run, plus degradation policy.

    Attributes:
        events: Explicit fault events (any kind, any overlap).
        crash_mtbf_s: Mean time between failures of the seeded random
            crash layer, per static replica; ``None`` disables it.
        crash_mttr_s: Mean time to recover of the random crash layer.
        horizon_s: Virtual-time horizon the random layer is drawn over
            (required when ``crash_mtbf_s`` is set).
        seed: Seed of the random crash layer.
        shed_below: Healthy-capacity fraction below which admission
            starts shedding low-priority classes; ``None`` disables
            graceful degradation (arrivals during a total outage are
            always shed — there is nothing to dispatch to).
        shed_keep: How many of the highest-priority SLO classes keep
            being admitted while the fleet is degraded.
    """

    events: Tuple[FaultEvent, ...] = ()
    crash_mtbf_s: Optional[float] = None
    crash_mttr_s: float = 30.0
    horizon_s: Optional[float] = None
    seed: int = 0
    shed_below: Optional[float] = None
    shed_keep: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"FaultModel events must be FaultEvent, got {event!r}"
                )
        if self.crash_mtbf_s is not None:
            if self.crash_mtbf_s <= 0:
                raise ConfigurationError(
                    f"crash_mtbf_s must be positive, got {self.crash_mtbf_s}"
                )
            if self.horizon_s is None or self.horizon_s <= 0:
                raise ConfigurationError(
                    "a random crash layer needs a positive horizon_s to "
                    "draw failures over"
                )
        if self.crash_mttr_s <= 0:
            raise ConfigurationError(
                f"crash_mttr_s must be positive, got {self.crash_mttr_s}"
            )
        if self.shed_below is not None and not 0.0 < self.shed_below <= 1.0:
            raise ConfigurationError(
                f"shed_below must be in (0, 1], got {self.shed_below}"
            )
        if self.shed_keep < 1:
            raise ConfigurationError(
                f"shed_keep must be at least 1, got {self.shed_keep}"
            )

    @classmethod
    def parse(cls, tokens: Sequence[str], **overrides: object) -> "FaultModel":
        """Build a model from CLI ``--faults`` shorthand tokens.

        Each token is either a :meth:`FaultEvent.parse` event or
        ``random:MTBF[:MTTR[:HORIZON]]`` configuring the seeded random
        crash layer; keyword overrides (``seed``, ``shed_below``, …)
        pass through to the constructor.
        """
        events = []
        fields: dict = dict(overrides)
        for token in tokens:
            text = token.strip()
            if text.startswith("random:"):
                parts = text[len("random:"):].split(":")
                if not 1 <= len(parts) <= 3 or not all(parts):
                    raise _fault_error(text, "bad random layer")
                try:
                    fields["crash_mtbf_s"] = float(parts[0])
                    if len(parts) > 1:
                        fields["crash_mttr_s"] = float(parts[1])
                    if len(parts) > 2:
                        fields["horizon_s"] = float(parts[2])
                except ValueError:
                    raise _fault_error(text, "bad number") from None
            else:
                events.append(FaultEvent.parse(text))
        return cls(events=tuple(events), **fields)  # type: ignore[arg-type]

    def schedule(self, replica_ids: Sequence[int]) -> Tuple[FaultEvent, ...]:
        """All concrete fault events of a run, deterministically ordered.

        Materialises the random crash layer (if any) for every replica in
        ``replica_ids`` using a string-seeded PRNG — stable across
        processes regardless of hash randomisation — then merges it with
        the explicit events and sorts by ``(start, kind, replica)``.
        """
        events = list(self.events)
        if self.crash_mtbf_s is not None:
            assert self.horizon_s is not None  # enforced in __post_init__
            for replica_id in replica_ids:
                rng = random.Random(
                    f"repro.fleet.faults:{self.seed}:{replica_id}"
                )
                now = 0.0
                while True:
                    now += rng.expovariate(1.0 / self.crash_mtbf_s)
                    if now >= self.horizon_s:
                        break
                    repair = rng.expovariate(1.0 / self.crash_mttr_s)
                    events.append(
                        FaultEvent(
                            kind="crash",
                            replica=replica_id,
                            start_s=now,
                            duration_s=repair,
                        )
                    )
                    now += repair
        events.sort(
            key=lambda e: (
                e.start_s,
                FAULT_KINDS.index(e.kind),
                -1 if e.replica is None else e.replica,
                e.duration_s if e.duration_s is not None else -1.0,
            )
        )
        return tuple(events)

    def validate_replicas(self, replica_count: int) -> None:
        """Reject events targeting replicas outside the static fleet."""
        for event in self.events:
            if event.replica is not None and event.replica >= replica_count:
                raise ConfigurationError(
                    f"fault targets replica {event.replica}, but the fleet "
                    f"has {replica_count} static replica(s); faults only "
                    "apply to statically configured replicas"
                )


@dataclass(frozen=True)
class RetryPolicy:
    """How the fleet fails over and abandons requests under faults.

    Attributes:
        max_retries: Bounded re-dispatch budget after a crash (0 fails
            requests on their first crash).
        backoff_s: Virtual-time delay before the first re-dispatch.
        backoff_multiplier: Exponential growth of successive backoffs.
        timeout_s: Deadline, from arrival, by which a request must have
            *entered service*; expired requests are abandoned (counted
            as timed out).  Per-class ``timeout_s`` on an
            :class:`~repro.fleet.admission.SLOClass` overrides this.
        hedge_after_s: Queue time after which a second copy of a
            not-yet-scheduled request is dispatched to another replica;
            the first copy to enter service wins and the other is
            cancelled.  ``None`` disables hedging.
    """

    max_retries: int = 2
    backoff_s: float = 0.0
    backoff_multiplier: float = 2.0
    timeout_s: Optional[float] = None
    hedge_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_s < 0:
            raise ConfigurationError(
                f"backoff_s must be non-negative, got {self.backoff_s}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                "backoff_multiplier must be at least 1, "
                f"got {self.backoff_multiplier}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ConfigurationError(
                f"hedge_after_s must be positive, got {self.hedge_after_s}"
            )

    def backoff_for(self, attempt: int) -> float:
        """Backoff before re-dispatch number ``attempt`` (1-based)."""
        if attempt <= 1:
            return self.backoff_s
        return self.backoff_s * self.backoff_multiplier ** (attempt - 1)

    @classmethod
    def parse(cls, text: str) -> "RetryPolicy":
        """Parse the CLI shorthand ``[TIMEOUT][:RETRIES[:BACKOFF[:HEDGE]]]``.

        Empty positions keep their defaults: ``30`` is a 30 s timeout,
        ``:3`` is three retries with no timeout, ``30:3:0.5:2`` adds a
        0.5 s backoff and a 2 s hedge.
        """
        original = text.strip()
        parts = original.split(":")
        if len(parts) > 4:
            raise ConfigurationError(
                f"cannot parse retry policy {original!r} (too many fields); "
                "expected [TIMEOUT][:RETRIES[:BACKOFF[:HEDGE]]]"
            )
        fields: dict = {}
        try:
            if parts[0]:
                fields["timeout_s"] = float(parts[0])
            if len(parts) > 1 and parts[1]:
                fields["max_retries"] = int(parts[1])
            if len(parts) > 2 and parts[2]:
                fields["backoff_s"] = float(parts[2])
            if len(parts) > 3 and parts[3]:
                fields["hedge_after_s"] = float(parts[3])
        except ValueError:
            raise ConfigurationError(
                f"cannot parse retry policy {original!r} (bad number); "
                "expected [TIMEOUT][:RETRIES[:BACKOFF[:HEDGE]]]"
            ) from None
        try:
            return cls(**fields)  # type: ignore[arg-type]
        except ConfigurationError as error:
            raise ConfigurationError(
                f"cannot parse retry policy {original!r} ({error})"
            ) from None
