"""Reactive autoscaling of fleet replicas from registered presets.

The autoscaler wakes up every ``check_interval_s`` of virtual time and
looks at two signals since its last wake-up: the mean queue depth per
in-service replica, and (optionally) the windowed TTFT SLO attainment.
Deep queues or missed SLOs add one replica of the configured platform
preset (up to ``max_extra``); a drained-out fleet removes the most
recently added extra replica, which finishes its queue and retires —
the engine never routes new work to a draining replica.

The decision rule itself (:meth:`Autoscaler.decide`) is a pure function
of the window's numbers, so it unit-tests without a simulation, and the
engine records every action into a timeline
(:class:`ScaleEvent`) that ships with the fleet metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import ConfigurationError

__all__ = ["Autoscaler", "AutoscalerConfig", "ScaleEvent"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs of the reactive autoscaler.

    Attributes:
        preset: Registered platform preset new replicas are built from.
        chips: Chip count of scaled replicas (the preset's default when
            ``None``).
        max_extra: Cap on replicas the autoscaler may add beyond the
            fleet's static configuration.
        check_interval_s: Virtual-time spacing of scaling decisions.
        scale_up_depth: Add a replica when the mean queue depth per
            in-service replica exceeds this.
        scale_down_depth: Drain an extra replica when the mean depth
            falls below this (and the SLO signal, if any, is healthy).
        ttft_slo_s: Optional TTFT target; the window's attainment against
            it becomes a second scale-up trigger.
        min_attainment: Scale up when windowed attainment drops below
            this fraction (only with ``ttft_slo_s`` set).
    """

    preset: str = "siracusa-mipi"
    chips: Optional[int] = None
    max_extra: int = 4
    check_interval_s: float = 60.0
    scale_up_depth: float = 4.0
    scale_down_depth: float = 0.5
    ttft_slo_s: Optional[float] = None
    min_attainment: float = 0.95

    def __post_init__(self) -> None:
        if self.max_extra < 1:
            raise ConfigurationError("max_extra must be at least 1")
        if self.check_interval_s <= 0:
            raise ConfigurationError("check_interval_s must be positive")
        if self.scale_up_depth <= self.scale_down_depth:
            raise ConfigurationError(
                "scale_up_depth must exceed scale_down_depth "
                f"({self.scale_up_depth} <= {self.scale_down_depth})"
            )
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ConfigurationError("ttft_slo_s must be positive")
        if not 0.0 < self.min_attainment <= 1.0:
            raise ConfigurationError("min_attainment must be in (0, 1]")
        if self.chips is not None and self.chips <= 0:
            raise ConfigurationError("chips must be positive")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action on the fleet timeline.

    Attributes:
        time_s: Virtual time of the action.
        action: ``"add"`` (replica enters service), ``"drain"`` (replica
            stops taking new work), or ``"retire"`` (a draining replica
            emptied its queue and left).
        replica_id: The replica acted on.
        reason: Which signal triggered the action.
        replicas: In-service replica count *after* the action.
    """

    time_s: float
    action: str
    replica_id: int
    reason: str
    replicas: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time_s": self.time_s,
            "action": self.action,
            "replica_id": self.replica_id,
            "reason": self.reason,
            "replicas": self.replicas,
        }


class Autoscaler:
    """The decision half of the reactive autoscaler.

    The fleet engine owns the replica lifecycle; this class only turns
    one decision window's numbers into ``"up"``/``"down"``/``None`` and
    tracks how many extras are outstanding.
    """

    def __init__(self, config: AutoscalerConfig) -> None:
        self.config = config
        self.extras = 0  # replicas added and not yet drained

    def decide(
        self,
        *,
        queue_depth_per_replica: float,
        window_completed: int,
        window_slo_met: int,
    ) -> Optional[str]:
        """One scaling decision; returns the reason string or ``None``.

        Returned reasons are ``"queue-depth"`` / ``"slo-attainment"``
        (scale up) and ``"drained"`` (scale down); the engine maps them
        to :class:`ScaleEvent` actions.
        """
        config = self.config
        slo_unhealthy = False
        if config.ttft_slo_s is not None and window_completed > 0:
            attainment = window_slo_met / window_completed
            slo_unhealthy = attainment < config.min_attainment
        if self.extras < config.max_extra:
            if queue_depth_per_replica > config.scale_up_depth:
                return "queue-depth"
            if slo_unhealthy:
                return "slo-attainment"
        if (
            self.extras > 0
            and not slo_unhealthy
            and queue_depth_per_replica < config.scale_down_depth
        ):
            return "drained"
        return None
