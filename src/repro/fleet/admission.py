"""Multi-tenant admission control with per-class rate limits.

A fleet serves several *SLO classes* (tenants, traffic tiers): each class
carries a scheduling priority, an optional sustained admission-rate limit
with a burst allowance, and an optional per-class TTFT target reported in
the fleet metrics.  The :class:`AdmissionController` maps every arriving
request to its class (the request's ``priority`` field indexes the class
list, clamped to the last entry) and runs one deterministic token bucket
per limited class: a request is admitted if its class has a token left
and rejected otherwise — rejected requests never reach the router.

Everything is virtual-time arithmetic on the arrival stream, so admission
decisions are exactly reproducible for equal traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..serving.request import Request

__all__ = ["AdmissionController", "ClassStats", "SLOClass"]


@dataclass(frozen=True)
class SLOClass:
    """One tenant class of the fleet's admission policy.

    Attributes:
        name: Class name (reported per class in the fleet metrics).
        rate_rps: Sustained admission-rate limit in requests per second;
            ``None`` admits everything.
        burst: Token-bucket capacity — how many requests the class may
            admit back-to-back before the sustained limit bites.
        priority: Scheduling priority stamped onto admitted requests of
            this class (larger wins under the ``priority`` policy).
        ttft_slo_s: Optional per-class TTFT target; attainment against it
            is reported in the per-class fleet metrics.
        timeout_s: Optional per-class service deadline under a
            :class:`~repro.fleet.faults.RetryPolicy` — overrides the
            policy's ``timeout_s`` for requests of this class.
    """

    name: str = "default"
    rate_rps: Optional[float] = None
    burst: int = 1
    priority: int = 0
    ttft_slo_s: Optional[float] = None
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("an SLO class needs a non-empty name")
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ConfigurationError(
                f"class {self.name!r}: rate_rps must be positive"
            )
        if self.burst < 1:
            raise ConfigurationError(
                f"class {self.name!r}: burst must be at least 1"
            )
        if self.ttft_slo_s is not None and self.ttft_slo_s <= 0:
            raise ConfigurationError(
                f"class {self.name!r}: ttft_slo_s must be positive"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError(
                f"class {self.name!r}: timeout_s must be positive"
            )


@dataclass
class ClassStats:
    """Mutable per-class counters the controller and engine accumulate."""

    slo_class: SLOClass
    arrived: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    completed: int = 0
    slo_met: int = 0
    tokens: float = field(default=0.0)
    refill_s: float = field(default=0.0)

    def attainment(self) -> Optional[float]:
        """Fraction of completions meeting the class TTFT target."""
        if self.slo_class.ttft_slo_s is None or self.completed == 0:
            return None
        return self.slo_met / self.completed


class AdmissionController:
    """Deterministic token-bucket admission over a fixed class list.

    Args:
        classes: The fleet's SLO classes in priority-index order; an
            arriving request's ``priority`` field selects
            ``classes[min(priority, len(classes) - 1)]``.  Defaults to a
            single unlimited class, so a fleet without tenants admits
            everything.
    """

    def __init__(self, classes: Sequence[SLOClass] = ()) -> None:
        chosen: Tuple[SLOClass, ...] = tuple(classes) or (SLOClass(),)
        names = [cls.name for cls in chosen]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                "SLO class names must be unique, got " + ", ".join(names)
            )
        self.classes = chosen
        self._stats: List[ClassStats] = [
            ClassStats(slo_class=cls, tokens=float(cls.burst))
            for cls in chosen
        ]

    def class_index(self, request: Request) -> int:
        """The class an arriving request belongs to."""
        return min(request.priority, len(self.classes) - 1)

    def admit(self, request: Request) -> Tuple[bool, SLOClass]:
        """Decide one arrival; returns ``(admitted, its class)``."""
        index = self.class_index(request)
        stats = self._stats[index]
        slo_class = stats.slo_class
        stats.arrived += 1
        if slo_class.rate_rps is None:
            stats.admitted += 1
            return True, slo_class
        elapsed = request.arrival_s - stats.refill_s
        stats.tokens = min(
            float(slo_class.burst), stats.tokens + elapsed * slo_class.rate_rps
        )
        stats.refill_s = request.arrival_s
        if stats.tokens >= 1.0:
            stats.tokens -= 1.0
            stats.admitted += 1
            return True, slo_class
        stats.rejected += 1
        return False, slo_class

    def shed(self, request: Request) -> SLOClass:
        """Count one arrival shed by graceful degradation.

        Shed requests are neither admitted nor rejected: the fleet turned
        them away because healthy capacity dropped (or hit zero), not
        because the class was over its rate limit.  Returns the class for
        the engine's bookkeeping.
        """
        stats = self._stats[self.class_index(request)]
        stats.arrived += 1
        stats.shed += 1
        return stats.slo_class

    def complete(self, class_index: int, ttft_s: float) -> None:
        """Record one completion (per-class TTFT attainment)."""
        stats = self._stats[class_index]
        stats.completed += 1
        target = stats.slo_class.ttft_slo_s
        if target is None or ttft_s <= target:
            stats.slo_met += 1

    @property
    def stats(self) -> Tuple[ClassStats, ...]:
        """Per-class counters, in class order."""
        return tuple(self._stats)

    def index_of(self, slo_class: SLOClass) -> int:
        """Position of ``slo_class`` in the class list."""
        return self.classes.index(slo_class)

    def to_dicts(self, *, include_shed: bool = False) -> List[Dict[str, object]]:
        """JSON-ready per-class summary, in class order.

        ``include_shed`` adds the graceful-degradation ``shed`` counter;
        the fault-free engine leaves it off so its documents stay
        byte-identical to runs of the pre-resilience engine.
        """
        rows: List[Dict[str, object]] = []
        for stats in self._stats:
            cls = stats.slo_class
            row: Dict[str, object] = {
                "name": cls.name,
                "priority": cls.priority,
                "rate_rps": cls.rate_rps,
                "arrived": stats.arrived,
                "admitted": stats.admitted,
                "rejected": stats.rejected,
                "completed": stats.completed,
            }
            if include_shed:
                row["shed"] = stats.shed
            if cls.ttft_slo_s is not None:
                row["ttft_slo_s"] = cls.ttft_slo_s
                row["slo_attainment"] = stats.attainment()
            rows.append(row)
        return rows
