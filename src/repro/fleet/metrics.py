"""Streaming fleet analytics: bounded-memory aggregation and the report.

A fleet run can complete millions of requests, so — unlike the
single-platform serving metrics, which aggregate a list of per-request
records after the fact — the fleet engine streams every completion into
:class:`StreamingSummary` accumulators as it happens.  Up to a
configurable ``record_threshold`` the summaries keep the exact values
(percentiles match :func:`repro.serving.metrics.percentile` exactly);
above it they drop the value lists and answer percentiles from a fixed
log-spaced histogram (16 bins per decade, so an approximate percentile
is within ~15 % of the true value), while counts, means, maxima, and
SLO attainment stay exact at any scale.  Memory is therefore bounded by
the threshold plus the histogram, never by the trace length.

:class:`FleetResult` is the aggregated outcome, and
:class:`FleetReport` adds provenance (model, strategy, router, seed) and
the deterministic JSON form behind ``repro fleet --json`` and the
``fleet`` study stages.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..serving.metrics import DEFAULT_SLO_TTFT_TARGETS_S, LatencySummary
from .autoscaler import ScaleEvent

__all__ = [
    "DEFAULT_RECORD_THRESHOLD",
    "FleetReport",
    "FleetResult",
    "ReplicaStats",
    "ResilienceStats",
    "StreamingSummary",
]

#: Completions beyond which summaries switch from exact values to the
#: histogram (the fleet engine's default ``record_threshold``).
DEFAULT_RECORD_THRESHOLD = 100_000

#: Histogram geometry: log-spaced bins over [1e-4 s, 1e4 s).
_HIST_LO = 1e-4
_HIST_BINS_PER_DECADE = 16
_HIST_DECADES = 8
_HIST_BINS = _HIST_BINS_PER_DECADE * _HIST_DECADES


class StreamingSummary:
    """One latency distribution, aggregated in bounded memory.

    Exact below ``threshold`` samples; histogram-approximated above it
    (mean and max stay exact either way).
    """

    __slots__ = ("count", "total", "max_value", "threshold", "_values", "_bins")

    def __init__(self, threshold: int = DEFAULT_RECORD_THRESHOLD) -> None:
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self.threshold = threshold
        self._values: Optional[List[float]] = []
        self._bins = [0] * (_HIST_BINS + 2)  # + underflow and overflow

    def add(self, value: float) -> None:
        """Stream one sample in."""
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if value < _HIST_LO:
            index = 0
        else:
            offset = int(
                _HIST_BINS_PER_DECADE * math.log10(value / _HIST_LO)
            )
            index = 1 + min(offset, _HIST_BINS)
        self._bins[index] += 1
        if self._values is not None:
            self._values.append(value)
            if self.count > self.threshold:
                self._values = None  # exact mode ends; histogram takes over

    @property
    def approximate(self) -> bool:
        """Whether percentiles now come from the histogram."""
        return self._values is None

    def _bin_quantile(self, q: float) -> float:
        rank = (self.count - 1) * (q / 100.0)
        cumulative = 0
        for index, bin_count in enumerate(self._bins):
            cumulative += bin_count
            if cumulative > rank:
                if index == 0:
                    return 0.0
                if index == _HIST_BINS + 1:
                    return self.max_value
                # Upper edge of the bin: conservative and deterministic.
                return min(
                    _HIST_LO * 10.0 ** (index / _HIST_BINS_PER_DECADE),
                    self.max_value,
                )
        return self.max_value

    def summary(self) -> LatencySummary:
        """The five-number summary (exact or histogram-approximated)."""
        if self.count == 0:
            return LatencySummary.zero()
        if self._values is not None:
            return LatencySummary.of(self._values)
        return LatencySummary(
            mean=self.total / self.count,
            p50=self._bin_quantile(50),
            p95=self._bin_quantile(95),
            p99=self._bin_quantile(99),
            max=self.max_value,
        )


@dataclass(frozen=True)
class ReplicaStats:
    """Per-replica accounting of one fleet run.

    Attributes:
        replica_id: Fleet-wide replica id.
        preset: Platform preset the replica ran.
        chips: Chip count of its platform.
        role: Routing-pool tag (``any``/``prefill``/``decode``).
        source: ``"static"`` (configured) or ``"autoscaled"``.
        completed: Requests this replica finished.
        busy_s: Virtual time the replica spent serving.
        added_s: When the replica entered service.
        drained_s: When it retired, ``None`` if in service at the end.
        utilisation: ``busy_s`` over the replica's in-service span.
    """

    replica_id: int
    preset: str
    chips: int
    role: str
    source: str
    completed: int
    busy_s: float
    added_s: float
    drained_s: Optional[float]
    utilisation: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "replica_id": self.replica_id,
            "preset": self.preset,
            "chips": self.chips,
            "role": self.role,
            "source": self.source,
            "completed": self.completed,
            "busy_s": self.busy_s,
            "added_s": self.added_s,
            "drained_s": self.drained_s,
            "utilisation": self.utilisation,
        }


@dataclass(frozen=True)
class ResilienceStats:
    """Fault-and-failover accounting of one fleet run.

    Only produced when a fault model or retry policy is configured — a
    fault-free run reports nothing here, keeping its output bit-identical
    to the fault-free engine.

    Attributes:
        crashes: Crash events that actually took a replica down.
        recoveries: Crashed replicas that re-entered service.
        retries: Re-dispatches of requests failed over from a crash.
        failed: Admitted requests lost to crashes after exhausting the
            retry budget (or with no retry policy configured).
        timed_out: Admitted requests abandoned because they never
            entered service by their (class) deadline.
        shed: Arrivals turned away by graceful degradation — either the
            fleet was in total outage, or healthy capacity dropped below
            the fault model's ``shed_below`` and the request's SLO class
            was not among the ``shed_keep`` protected classes.
        hedges: Hedged second dispatches issued.
        hedge_wins: Hedged copies that entered service before the
            primary copy (the primary was cancelled).
        first_attempt_completed: Completions that never failed over —
            the numerator of goodput.
        goodput_rps: First-attempt completions per virtual second, to
            compare against ``throughput_rps`` (which counts retried
            completions too).
        wasted_busy_s: Replica-seconds of service lost to crashes
            (partial grants whose work was discarded).
        replica_downtime_s: Summed crashed time across replicas.
        unavailable_s: Virtual time with zero replicas in service.
        unavailable_windows: How many distinct total-outage windows the
            run saw.
        healthy_completed / degraded_completed: Completions split by
            whether any fault was active when they finished.
        slo_curve_healthy / slo_curve_degraded: TTFT attainment at the
            fleet SLO targets, split the same way.
    """

    crashes: int = 0
    recoveries: int = 0
    retries: int = 0
    failed: int = 0
    timed_out: int = 0
    shed: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    first_attempt_completed: int = 0
    goodput_rps: float = 0.0
    wasted_busy_s: float = 0.0
    replica_downtime_s: float = 0.0
    unavailable_s: float = 0.0
    unavailable_windows: int = 0
    healthy_completed: int = 0
    degraded_completed: int = 0
    slo_curve_healthy: Tuple[Tuple[float, float], ...] = ()
    slo_curve_degraded: Tuple[Tuple[float, float], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "retries": self.retries,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "shed": self.shed,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "first_attempt_completed": self.first_attempt_completed,
            "goodput_rps": self.goodput_rps,
            "wasted_busy_s": self.wasted_busy_s,
            "replica_downtime_s": self.replica_downtime_s,
            "unavailable_s": self.unavailable_s,
            "unavailable_windows": self.unavailable_windows,
            "healthy_completed": self.healthy_completed,
            "degraded_completed": self.degraded_completed,
            "slo_curve_healthy": [
                {"ttft_target_s": target, "attainment": fraction}
                for target, fraction in self.slo_curve_healthy
            ],
            "slo_curve_degraded": [
                {"ttft_target_s": target, "attainment": fraction}
                for target, fraction in self.slo_curve_degraded
            ],
        }


@dataclass(frozen=True)
class FleetResult:
    """Aggregated outcome of one fleet simulation.

    Attributes:
        router: Canonical name of the routing policy that dispatched.
        policy: Per-replica scheduling policy name.
        arrived: Requests the trace generated.
        admitted: Requests admission control let through.
        rejected: Requests admission control turned away.
        completed: Requests that finished.
        in_flight: Admitted requests still unfinished at the horizon
            (zero: the engine drains every admitted request).
        makespan_s: Virtual time of the last completion.
        generated_tokens: Output tokens across completed requests.
        prompt_tokens: Prompt tokens across completed requests.
        total_energy_joules: Energy across completed requests.
        queue_wait / ttft / tpot / e2e: Latency summaries.
        approximate: Whether the percentile summaries came from the
            streaming histogram (completions exceeded the threshold).
        record_threshold: The exact/streaming switch-over used.
        slo_curve: Exact TTFT attainment at each target.
        classes: Per-SLO-class admission and attainment rows.
        replicas: Per-replica accounting, id order.
        timeline: ``(window_end_s, queue_depth, replicas, utilisation)``
            per aggregation window.
        scaling_events: The autoscaler's action timeline.
        resilience: Fault-and-failover accounting; ``None`` for a
            fault-free run (its serialised form then carries no
            resilience key, keeping fault-free output bit-identical to
            the fault-free engine).
    """

    router: str
    policy: str
    arrived: int
    admitted: int
    rejected: int
    completed: int
    in_flight: int
    makespan_s: float
    generated_tokens: int
    prompt_tokens: int
    total_energy_joules: float
    queue_wait: LatencySummary
    ttft: LatencySummary
    tpot: LatencySummary
    e2e: LatencySummary
    approximate: bool
    record_threshold: int
    slo_curve: Tuple[Tuple[float, float], ...]
    classes: Tuple[Dict[str, Any], ...]
    replicas: Tuple[ReplicaStats, ...]
    timeline: Tuple[Tuple[float, int, int, float], ...]
    scaling_events: Tuple[ScaleEvent, ...]
    resilience: Optional[ResilienceStats] = None

    @property
    def throughput_rps(self) -> float:
        """Completed requests per virtual second."""
        if self.makespan_s <= 0:
            return 0.0
        return self.completed / self.makespan_s

    @property
    def throughput_tps(self) -> float:
        """Generated (output) tokens per virtual second."""
        if self.makespan_s <= 0:
            return 0.0
        return self.generated_tokens / self.makespan_s

    @property
    def utilisation(self) -> float:
        """Fleet busy time over the summed in-service replica spans."""
        span = 0.0
        busy = 0.0
        for replica in self.replicas:
            end = (
                replica.drained_s
                if replica.drained_s is not None
                else self.makespan_s
            )
            span += max(0.0, end - replica.added_s)
            busy += replica.busy_s
        if span <= 0:
            return 0.0
        return busy / span

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (nested under the report document).

        The ``resilience`` key appears only when fault injection or a
        retry policy was configured: a fault-free run's document is
        byte-identical to one from the fault-free engine.
        """
        data: Dict[str, Any] = {
            "requests": {
                "arrived": self.arrived,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "in_flight": self.in_flight,
            },
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "throughput_tps": self.throughput_tps,
            "generated_tokens": self.generated_tokens,
            "prompt_tokens": self.prompt_tokens,
            "total_energy_joules": self.total_energy_joules,
            "queue_wait_s": self.queue_wait.to_dict(),
            "ttft_s": self.ttft.to_dict(),
            "tpot_s": self.tpot.to_dict(),
            "e2e_s": self.e2e.to_dict(),
            "utilisation": self.utilisation,
            "approximate_percentiles": self.approximate,
            "record_threshold": self.record_threshold,
            "slo_curve": [
                {"ttft_target_s": target, "attainment": fraction}
                for target, fraction in self.slo_curve
            ],
            "classes": list(self.classes),
            "replicas": [replica.to_dict() for replica in self.replicas],
            "autoscaler_events": [
                event.to_dict() for event in self.scaling_events
            ],
            "timeline": [
                {
                    "window_end_s": end,
                    "queue_depth": depth,
                    "replicas": replicas,
                    "utilisation": utilisation,
                }
                for end, depth, replicas, utilisation in self.timeline
            ],
        }
        if self.resilience is not None:
            data["resilience"] = self.resilience.to_dict()
        return data


@dataclass(frozen=True)
class FleetReport:
    """A fleet simulation plus its provenance — the ``fleet`` deliverable.

    Attributes:
        model: Name of the served model configuration.
        strategy: Partitioning strategy behind the phase costs.
        router: Routing policy that dispatched.
        policy: Per-replica scheduling policy.
        seed: Trace seed.
        result: The aggregated outcome.
    """

    model: str
    strategy: str
    router: str
    policy: str
    seed: int
    result: FleetResult

    def to_dict(self, *, cache=None) -> Dict[str, Any]:
        """JSON-serialisable form (the ``repro fleet --json`` document).

        Pass the evaluating session's
        :meth:`~repro.api.Session.cache_info` as ``cache`` to make the
        phase-cost memoisation reuse observable in the output.
        """
        document: Dict[str, Any] = {
            "model": self.model,
            "strategy": self.strategy,
            "router": self.router,
            "policy": self.policy,
            "seed": self.seed,
            "metrics": self.result.to_dict(),
        }
        if cache is not None:
            document["cache"] = cache.to_dict()
        return document

    def to_json(self, *, indent: int = 2, cache=None) -> str:
        """Deterministic JSON document (sorted keys, stable float reprs)."""
        return json.dumps(
            self.to_dict(cache=cache), indent=indent, sort_keys=True
        )

    def render(self) -> str:
        """Plain-text summary of the headline fleet numbers."""
        result = self.result
        static = sum(1 for r in result.replicas if r.source == "static")
        scaled = len(result.replicas) - static
        lines: List[str] = [
            (
                f"Fleet served {result.completed} requests of {self.model} "
                f"on {len(result.replicas)} replica(s) "
                f"[router={self.router}, policy={self.policy}, "
                f"strategy={self.strategy}, seed={self.seed}]"
            ),
            (
                f"  requests    : {result.arrived} arrived, "
                f"{result.admitted} admitted, {result.rejected} rejected, "
                f"{result.in_flight} in flight"
            ),
            (
                f"  makespan    : {result.makespan_s:.2f} s  "
                f"(utilisation {result.utilisation * 100:.1f}%)"
            ),
            (
                f"  throughput  : {result.throughput_rps:.3f} req/s, "
                f"{result.throughput_tps:.2f} tok/s"
            ),
            _latency_line("queue wait", result.queue_wait),
            _latency_line("TTFT", result.ttft),
            _latency_line("TPOT", result.tpot),
            _latency_line("e2e", result.e2e),
            (
                f"  replicas    : {static} static + {scaled} autoscaled, "
                f"{len(result.scaling_events)} scaling event(s)"
            ),
            "  SLO (TTFT)  : "
            + ", ".join(
                f"<{target:g}s: {fraction * 100:.1f}%"
                for target, fraction in result.slo_curve
            ),
        ]
        resilience = result.resilience
        if resilience is not None:
            lines.append(
                f"  resilience  : {resilience.crashes} crash(es), "
                f"{resilience.retries} retried, {resilience.failed} failed, "
                f"{resilience.timed_out} timed out, {resilience.shed} shed, "
                f"{resilience.hedges} hedged ({resilience.hedge_wins} won)"
            )
            lines.append(
                f"  goodput     : {resilience.goodput_rps:.3f} req/s "
                f"first-attempt (vs {result.throughput_rps:.3f} req/s "
                f"throughput), {resilience.wasted_busy_s:.2f} s wasted"
            )
            lines.append(
                f"  availability: {resilience.replica_downtime_s:.1f} "
                f"replica-s down, {resilience.unavailable_s:.1f} s total "
                f"outage over {resilience.unavailable_windows} window(s)"
            )
        if result.approximate:
            lines.append(
                "  note        : percentiles are histogram approximations "
                f"(completions exceeded {result.record_threshold})"
            )
        return "\n".join(lines)


def _latency_line(label: str, summary: LatencySummary) -> str:
    return (
        f"  {label:<11} : p50 {summary.p50 * 1e3:.1f} ms, "
        f"p95 {summary.p95 * 1e3:.1f} ms, p99 {summary.p99 * 1e3:.1f} ms, "
        f"max {summary.max * 1e3:.1f} ms"
    )


#: Default TTFT targets of the fleet SLO curve (shared with serving).
DEFAULT_FLEET_SLO_TARGETS_S = DEFAULT_SLO_TTFT_TARGETS_S
