"""Table I: comparison of model-partitioning approaches.

The paper's Table I is qualitative (model class, scale, platform,
pipelining, weight duplication).  This experiment reproduces that table
verbatim and extends it with a quantitative ablation: the weight-replicated
sequence-parallel scheme, the layer-wise pipeline scheme, and the paper's
tensor-parallel scheme all run on the same simulated Siracusa platform and
workload, so "no weight duplication" and "no pipelining" can be backed with
measured latency, energy, and off-chip traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.tables import comparison_table
from ..api.result import EvalResult
from ..api.session import default_session
from ..baselines.compare import qualitative_table, render_comparison
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from ..hw.presets import siracusa_platform
from .fig4 import tinyllama_autoregressive_workload

#: Default chip count of the quantitative ablation.
DEFAULT_NUM_CHIPS = 8


@dataclass(frozen=True)
class Table1Result:
    """Qualitative table plus measured ablation results."""

    workload: Workload
    platform: MultiChipPlatform
    measured: List[EvalResult]

    def ours(self) -> EvalResult:
        """The paper's approach, from the measured ablation."""
        return self.measured[-1]

    def speedup_over_best_baseline(self) -> float:
        """Speedup of the paper's scheme over the best multi-chip baseline."""
        ours = self.ours()
        baselines = [
            result
            for result in self.measured
            if result is not ours and result.num_chips == ours.num_chips
        ]
        if not baselines:
            baselines = [result for result in self.measured if result is not ours]
        best = min(baselines, key=lambda result: result.block_cycles)
        return ours.speedup_over(best)


def run_table1(
    workload: Workload | None = None,
    num_chips: int = DEFAULT_NUM_CHIPS,
) -> Table1Result:
    """Run the Table I ablation through the strategy registry."""
    workload = workload or tinyllama_autoregressive_workload()
    platform = siracusa_platform(num_chips)
    comparison = default_session().compare(workload, platform=platform)
    return Table1Result(
        workload=workload,
        platform=platform,
        measured=list(comparison.results),
    )


def render_table1(result: Table1Result) -> str:
    """Plain-text rendering: the paper's table plus the measured ablation."""
    headers = ["Model", "Scale", "Platform", "Pipelining", "Weight Duplication"]
    parts = [
        "Table I (as published): qualitative comparison of prior work",
        comparison_table(qualitative_table(), headers),
        "",
        (
            f"Quantitative ablation on {result.platform.num_chips} chips, "
            f"workload {result.workload.name}"
        ),
        render_comparison(result.measured),
    ]
    return "\n".join(parts)


def main() -> None:
    """Run and print Table I."""
    print(render_table1(run_table1()))


if __name__ == "__main__":
    main()
