"""Figure 4: runtime breakdown and speedup for the three workloads.

The paper's Fig. 4 shows, for (a) TinyLlama autoregressive mode, (b)
TinyLlama prompt mode, and (c) MobileBERT, the per-block runtime broken
down into computation, L3<->L2 DMA, L2<->L1 DMA, and chip-to-chip
communication, together with the speedup over a single chip and the linear
scaling reference.  This module regenerates those series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..analysis.sweep import SweepResult
from ..analysis.tables import runtime_breakdown_table
from ..api.session import default_session
from ..graph.workload import Workload, autoregressive, encoder, prompt
from ..models.mobilebert import MOBILEBERT_SEQ_LEN, mobilebert
from ..models.tinyllama import (
    TINYLLAMA_AUTOREGRESSIVE_SEQ_LEN,
    TINYLLAMA_PROMPT_SEQ_LEN,
    tinyllama_42m,
)

#: Chip counts used in Fig. 4(a) and 4(b).
TINYLLAMA_CHIP_COUNTS = (1, 2, 4, 8)

#: Chip counts used in Fig. 4(c).
MOBILEBERT_CHIP_COUNTS = (1, 2, 4)


@dataclass(frozen=True)
class Fig4Result:
    """The three sweeps behind Fig. 4."""

    autoregressive: SweepResult
    prompt: SweepResult
    mobilebert: SweepResult

    def speedups(self) -> Dict[str, Dict[int, float]]:
        """Speedup series of the three panels."""
        return {
            "tinyllama_autoregressive": self.autoregressive.speedups(),
            "tinyllama_prompt": self.prompt.speedups(),
            "mobilebert": self.mobilebert.speedups(),
        }


def tinyllama_autoregressive_workload() -> Workload:
    """The workload of Fig. 4(a): TinyLlama, KV-cached decoding, S=128."""
    return autoregressive(tinyllama_42m(), TINYLLAMA_AUTOREGRESSIVE_SEQ_LEN)


def tinyllama_prompt_workload() -> Workload:
    """The workload of Fig. 4(b): TinyLlama prompt mode, S=16."""
    return prompt(tinyllama_42m(), TINYLLAMA_PROMPT_SEQ_LEN)


def mobilebert_workload() -> Workload:
    """The workload of Fig. 4(c): MobileBERT encoder, S=268."""
    return encoder(mobilebert(), MOBILEBERT_SEQ_LEN)


def session_sweep(workload: Workload, chip_counts: Sequence[int]) -> SweepResult:
    """Run one figure sweep through the shared evaluation session."""
    return default_session().sweep(workload, chip_counts).to_sweep_result()


def run_fig4a(chip_counts: Sequence[int] = TINYLLAMA_CHIP_COUNTS) -> SweepResult:
    """Fig. 4(a): TinyLlama autoregressive mode, 1-8 chips."""
    return session_sweep(tinyllama_autoregressive_workload(), chip_counts)


def run_fig4b(chip_counts: Sequence[int] = TINYLLAMA_CHIP_COUNTS) -> SweepResult:
    """Fig. 4(b): TinyLlama prompt mode, 1-8 chips."""
    return session_sweep(tinyllama_prompt_workload(), chip_counts)


def run_fig4c(chip_counts: Sequence[int] = MOBILEBERT_CHIP_COUNTS) -> SweepResult:
    """Fig. 4(c): MobileBERT, 1-4 chips."""
    return session_sweep(mobilebert_workload(), chip_counts)


def run_fig4() -> Fig4Result:
    """Run all three panels of Fig. 4."""
    return Fig4Result(
        autoregressive=run_fig4a(),
        prompt=run_fig4b(),
        mobilebert=run_fig4c(),
    )


def render_fig4(result: Fig4Result) -> str:
    """Plain-text rendering of the three panels."""
    sections = [
        ("Fig. 4(a) TinyLlama autoregressive mode", result.autoregressive),
        ("Fig. 4(b) TinyLlama prompt mode", result.prompt),
        ("Fig. 4(c) MobileBERT", result.mobilebert),
    ]
    parts = []
    for title, sweep in sections:
        parts.append(title)
        parts.append(runtime_breakdown_table(sweep))
        parts.append("")
    return "\n".join(parts)


def main() -> None:
    """Run and print Fig. 4."""
    print(render_fig4(run_fig4()))


if __name__ == "__main__":
    main()
