"""Headline numbers of the paper (abstract and Sec. V-B).

The abstract reports, for the 8-chip TinyLlama system in autoregressive
mode, an energy of 0.64 mJ, a latency of 0.54 ms, a super-linear speedup of
26.1x, and an EDP improvement of 27.2x over a single chip; 9.9x for prompt
mode, 4.7x for MobileBERT on 4 chips, and 60.1x / 1.3x energy reduction for
the scaled-up model on 64 chips.  This experiment measures the same
quantities with our simulator and reports them side by side with the
paper's values, flagging whether the qualitative claim (who wins, and
whether the scaling is super-linear) still holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.tables import format_table
from ..graph.workload import autoregressive, prompt
from ..models.tinyllama import (
    TINYLLAMA_AUTOREGRESSIVE_SEQ_LEN,
    TINYLLAMA_PROMPT_SEQ_LEN,
    tinyllama_scaled,
)
from .fig4 import run_fig4a, run_fig4b, run_fig4c, session_sweep


@dataclass(frozen=True)
class HeadlineMetric:
    """One paper-reported number next to its measured counterpart."""

    name: str
    paper_value: float
    measured_value: float
    unit: str
    higher_is_better: bool = True

    @property
    def ratio(self) -> float:
        """Measured / paper value."""
        if self.paper_value == 0:
            return float("inf")
        return self.measured_value / self.paper_value


@dataclass(frozen=True)
class HeadlineResult:
    """All headline metrics of the paper."""

    metrics: List[HeadlineMetric]

    def metric(self, name: str) -> HeadlineMetric:
        """Look up a metric by name."""
        for metric in self.metrics:
            if metric.name == name:
                return metric
        raise KeyError(f"no headline metric named {name!r}")


def run_headline() -> HeadlineResult:
    """Measure every headline number of the paper."""
    autoregressive_sweep = run_fig4a()
    prompt_sweep = run_fig4b()
    mobilebert_sweep = run_fig4c()

    ar8 = autoregressive_sweep.report_for(8)
    ar1 = autoregressive_sweep.report_for(1)
    speedups_ar = autoregressive_sweep.speedups()
    speedups_prompt = prompt_sweep.speedups()
    speedups_mb = mobilebert_sweep.speedups()

    edp_improvement = (
        ar1.energy_delay_product / ar8.energy_delay_product
        if ar8.energy_delay_product > 0
        else float("inf")
    )

    scaled = tinyllama_scaled()
    scaled_ar_sweep = session_sweep(
        autoregressive(scaled, TINYLLAMA_AUTOREGRESSIVE_SEQ_LEN), (1, 64)
    )
    scaled_prompt_sweep = session_sweep(
        prompt(scaled, TINYLLAMA_PROMPT_SEQ_LEN), (1, 8)
    )
    scaled_speedup = scaled_ar_sweep.speedups()[64]
    scaled_energy_gain = (
        scaled_ar_sweep.report_for(1).block_energy_joules
        / scaled_ar_sweep.report_for(64).block_energy_joules
    )

    metrics = [
        HeadlineMetric(
            name="tinyllama_autoregressive_speedup_8_chips",
            paper_value=26.1,
            measured_value=speedups_ar[8],
            unit="x",
        ),
        HeadlineMetric(
            name="tinyllama_autoregressive_energy_8_chips",
            paper_value=0.64e-3,
            measured_value=ar8.block_energy_joules,
            unit="J",
            higher_is_better=False,
        ),
        HeadlineMetric(
            name="tinyllama_autoregressive_latency_8_chips",
            paper_value=0.54e-3,
            measured_value=ar8.block_runtime_seconds,
            unit="s",
            higher_is_better=False,
        ),
        HeadlineMetric(
            name="tinyllama_autoregressive_edp_improvement_8_chips",
            paper_value=27.2,
            measured_value=edp_improvement,
            unit="x",
        ),
        HeadlineMetric(
            name="tinyllama_prompt_speedup_8_chips",
            paper_value=9.9,
            measured_value=speedups_prompt[8],
            unit="x",
        ),
        HeadlineMetric(
            name="mobilebert_speedup_4_chips",
            paper_value=4.7,
            measured_value=speedups_mb[4],
            unit="x",
        ),
        HeadlineMetric(
            name="scaled_tinyllama_speedup_64_chips",
            paper_value=60.1,
            measured_value=scaled_speedup,
            unit="x",
        ),
        HeadlineMetric(
            name="scaled_tinyllama_energy_reduction_64_chips",
            paper_value=1.3,
            measured_value=scaled_energy_gain,
            unit="x",
        ),
        HeadlineMetric(
            name="scaled_tinyllama_prompt_speedup_8_chips",
            paper_value=9.9,
            measured_value=scaled_prompt_sweep.speedups()[8],
            unit="x",
        ),
    ]
    return HeadlineResult(metrics=metrics)


def render_headline(result: HeadlineResult) -> str:
    """Plain-text paper-vs-measured comparison."""
    rows = []
    for metric in result.metrics:
        rows.append(
            [
                metric.name,
                f"{metric.paper_value:g} {metric.unit}",
                f"{metric.measured_value:g} {metric.unit}",
                f"{metric.ratio:.2f}",
            ]
        )
    return format_table(["Metric", "Paper", "Measured", "Measured/Paper"], rows)


def main() -> None:
    """Run and print the headline comparison."""
    print(render_headline(run_headline()))


if __name__ == "__main__":
    main()
