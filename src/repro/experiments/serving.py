"""Capacity-vs-SLO study: how much traffic can the platform absorb?

The paper sizes one request; this experiment asks the serving question on
top of it: sweeping the offered Poisson load on the 8-chip TinyLlama
system, at what arrival rate does each scheduling policy stop meeting a
time-to-first-token SLO?  The output is an attainment matrix (rate x
policy) plus each policy's maximum sustainable rate — the number a
deployment would actually be provisioned from.

All simulations share :func:`repro.api.default_session`, so the handful of
block evaluations behind the phase costs are computed once across the
whole sweep (and shared with the figure harnesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..api.session import default_session
from ..models.registry import get_model
from ..serving.metrics import ServingMetrics, slo_attainment
from ..serving.traces import LengthModel, PoissonTrace

__all__ = [
    "ServingCapacityPoint",
    "ServingCapacityResult",
    "render_serving",
    "run_serving",
]

#: Offered loads of the sweep, in requests per second.
DEFAULT_RATES_RPS: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0)

#: Compared scheduling policies, in presentation order.
DEFAULT_POLICIES: Tuple[str, ...] = ("fifo", "shortest_prompt", "continuous")

#: The SLO of the study: first token within this many seconds.
DEFAULT_TTFT_SLO_S = 1.0

#: Required fraction of requests meeting the SLO.
DEFAULT_TARGET_ATTAINMENT = 0.95


@dataclass(frozen=True)
class ServingCapacityPoint:
    """One (arrival rate, policy) cell of the capacity matrix."""

    rate_rps: float
    policy: str
    metrics: ServingMetrics
    attainment: float

    @property
    def meets_slo(self) -> bool:
        """Whether the cell clears the study's attainment target."""
        return self.attainment >= DEFAULT_TARGET_ATTAINMENT


@dataclass(frozen=True)
class ServingCapacityResult:
    """The full capacity-vs-SLO matrix of one model/platform."""

    model: str
    num_chips: int
    ttft_slo_s: float
    target_attainment: float
    points: Tuple[ServingCapacityPoint, ...]

    def policies(self) -> Tuple[str, ...]:
        ordered: Dict[str, None] = {}
        for point in self.points:
            ordered.setdefault(point.policy, None)
        return tuple(ordered)

    def rates(self) -> Tuple[float, ...]:
        ordered: Dict[float, None] = {}
        for point in self.points:
            ordered.setdefault(point.rate_rps, None)
        return tuple(ordered)

    def point(self, rate_rps: float, policy: str) -> ServingCapacityPoint:
        for candidate in self.points:
            if candidate.rate_rps == rate_rps and candidate.policy == policy:
                return candidate
        raise KeyError(f"no point for rate={rate_rps}, policy={policy}")

    def max_sustainable_rate(self, policy: str) -> Optional[float]:
        """Largest swept rate the policy serves within the SLO, if any."""
        sustainable = [
            point.rate_rps
            for point in self.points
            if point.policy == policy and point.meets_slo
        ]
        return max(sustainable) if sustainable else None


def run_serving(
    *,
    model: str = "tinyllama-42m",
    chips: int = 8,
    rates_rps: Tuple[float, ...] = DEFAULT_RATES_RPS,
    policies: Tuple[str, ...] = DEFAULT_POLICIES,
    duration_s: float = 60.0,
    seed: int = 0,
    ttft_slo_s: float = DEFAULT_TTFT_SLO_S,
) -> ServingCapacityResult:
    """Sweep offered load across scheduling policies on one platform."""
    session = default_session()
    config = get_model(model)
    lengths = LengthModel()
    points = []
    for rate in rates_rps:
        trace = PoissonTrace(
            rate_rps=rate, duration_s=duration_s, lengths=lengths
        )
        for policy in policies:
            report = session.serve(
                config,
                trace,
                policy=policy,
                chips=chips,
                seed=seed,
                slo_targets=(ttft_slo_s,),
            )
            points.append(
                ServingCapacityPoint(
                    rate_rps=rate,
                    policy=policy,
                    metrics=report.metrics,
                    attainment=slo_attainment(
                        report.result.records, ttft_s=ttft_slo_s
                    ),
                )
            )
    return ServingCapacityResult(
        model=config.name,
        num_chips=chips,
        ttft_slo_s=ttft_slo_s,
        target_attainment=DEFAULT_TARGET_ATTAINMENT,
        points=tuple(points),
    )


def render_serving(result: ServingCapacityResult) -> str:
    """Plain-text capacity matrix plus per-policy sustainable rates."""
    from ..analysis.tables import format_table

    policies = result.policies()
    header = ["Rate (req/s)"] + [
        f"{policy} att. / p95 TTFT" for policy in policies
    ]
    rows = []
    for rate in result.rates():
        row = [f"{rate:g}"]
        for policy in policies:
            point = result.point(rate, policy)
            row.append(
                f"{point.attainment * 100:5.1f}% / "
                f"{point.metrics.ttft.p95 * 1e3:7.1f} ms"
            )
        rows.append(row)
    lines = [
        (
            f"Capacity vs. SLO on {result.model}, {result.num_chips} chips "
            f"(TTFT < {result.ttft_slo_s:g} s for "
            f">= {result.target_attainment * 100:.0f}% of requests)"
        ),
        format_table(header, rows),
        "",
    ]
    for policy in policies:
        sustainable = result.max_sustainable_rate(policy)
        verdict = (
            f"{sustainable:g} req/s"
            if sustainable is not None
            else "below the swept range"
        )
        lines.append(f"max sustainable rate [{policy:<16}]: {verdict}")
    return "\n".join(lines)
