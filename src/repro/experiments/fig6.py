"""Figure 6: scalability of the partitioning scheme up to 64 chips.

The paper scales the TinyLlama head count from 8 to 64 (leaving every other
parameter unchanged) and distributes inference over 1-64 chips, reporting
the speedup of the autoregressive and prompt modes against a single chip
next to the ideal linear-scaling line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..analysis.sweep import SweepResult
from ..analysis.tables import scaling_table
from ..graph.workload import autoregressive, prompt
from ..models.tinyllama import (
    TINYLLAMA_AUTOREGRESSIVE_SEQ_LEN,
    TINYLLAMA_PROMPT_SEQ_LEN,
    TINYLLAMA_SCALED_NUM_HEADS,
    tinyllama_scaled,
)
from .fig4 import session_sweep

#: Chip counts of the scalability study (Fig. 6).
SCALABILITY_CHIP_COUNTS = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class Fig6Result:
    """The two speedup curves of Fig. 6."""

    autoregressive: SweepResult
    prompt: SweepResult

    def speedups(self) -> Dict[str, Dict[int, float]]:
        """Speedup series for both modes."""
        return {
            "autoregressive": self.autoregressive.speedups(),
            "prompt": self.prompt.speedups(),
        }


def run_fig6(
    chip_counts: Sequence[int] = SCALABILITY_CHIP_COUNTS,
    num_heads: int = TINYLLAMA_SCALED_NUM_HEADS,
) -> Fig6Result:
    """Run the scalability study on the scaled-up TinyLlama."""
    scaled = tinyllama_scaled(num_heads)
    return Fig6Result(
        autoregressive=session_sweep(
            autoregressive(scaled, TINYLLAMA_AUTOREGRESSIVE_SEQ_LEN), chip_counts
        ),
        prompt=session_sweep(
            prompt(scaled, TINYLLAMA_PROMPT_SEQ_LEN), chip_counts
        ),
    )


def render_fig6(result: Fig6Result) -> str:
    """Plain-text rendering of the two speedup curves."""
    parts = [
        scaling_table(
            result.autoregressive.scaling(),
            title="Fig. 6 Scaled-up TinyLlama, autoregressive mode",
        ),
        "",
        scaling_table(
            result.prompt.scaling(),
            title="Fig. 6 Scaled-up TinyLlama, prompt mode",
        ),
    ]
    return "\n".join(parts)


def main() -> None:
    """Run and print Fig. 6."""
    print(render_fig6(run_fig6()))


if __name__ == "__main__":
    main()
