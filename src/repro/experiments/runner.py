"""Run every experiment of the paper in one go.

``python -m repro.experiments.runner`` prints the reproduction of every
figure and table plus the headline comparison; this is also what
EXPERIMENTS.md is generated from.
"""

from __future__ import annotations

from dataclasses import dataclass

from .fig4 import Fig4Result, render_fig4, run_fig4
from .fig5 import Fig5Result, render_fig5, run_fig5
from .fig6 import Fig6Result, render_fig6, run_fig6
from .headline import HeadlineResult, render_headline, run_headline
from .table1 import Table1Result, render_table1, run_table1


@dataclass(frozen=True)
class FullReproduction:
    """Results of every experiment in the paper's evaluation section."""

    fig4: Fig4Result
    fig5: Fig5Result
    fig6: Fig6Result
    table1: Table1Result
    headline: HeadlineResult


def run_all() -> FullReproduction:
    """Run every experiment (takes a few seconds on a laptop)."""
    return FullReproduction(
        fig4=run_fig4(),
        fig5=run_fig5(),
        fig6=run_fig6(),
        table1=run_table1(),
        headline=run_headline(),
    )


def render_all(results: FullReproduction) -> str:
    """Plain-text report covering every figure and table."""
    sections = [
        ("=" * 72, ""),
        ("Figure 4 — runtime breakdown and speedup", render_fig4(results.fig4)),
        ("Figure 5 — energy vs. runtime", render_fig5(results.fig5)),
        ("Figure 6 — scalability study (scaled-up TinyLlama)", render_fig6(results.fig6)),
        ("Table I — partitioning-approach comparison", render_table1(results.table1)),
        ("Headline numbers — paper vs. measured", render_headline(results.headline)),
    ]
    parts = []
    for title, body in sections:
        if body:
            parts.append(title)
            parts.append("-" * len(title))
            parts.append(body)
            parts.append("")
        else:
            parts.append(title)
    return "\n".join(parts)


def main() -> None:
    """Entry point for ``python -m repro.experiments.runner``."""
    print(render_all(run_all()))


if __name__ == "__main__":
    main()
