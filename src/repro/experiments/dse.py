"""Budget-vs-Pareto-front study: how much search does a deployer need?

The DSE engine can enumerate the standard platform space exhaustively,
which gives the *true* latency/hardware-cost Pareto front; the practical
question is how close the cheaper searchers get on a fraction of that
budget.  This experiment runs each registered stochastic searcher at a
range of evaluation budgets against the exhaustive reference and reports
the share of the true front each (searcher, budget) pair recovers — the
number that tells a deployer whether 25 simulations are enough or the
full grid is warranted.

All runs share :func:`repro.api.default_session`, so a design point
simulated by one searcher is a cache hit for every other searcher and
budget (observable in the reported cache statistics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..api.session import default_session
from ..dse.engine import TuneResult
from ..dse.space import ChoiceAxis, FloatAxis, SearchSpace
from ..graph.workload import Workload, autoregressive
from ..models.tinyllama import tinyllama_42m

__all__ = [
    "DseStudyPoint",
    "DseStudyResult",
    "render_dse",
    "run_dse",
]

#: Evaluation budgets of the study (the reference grid has 24 points).
DEFAULT_BUDGETS: Tuple[int, ...] = (6, 12, 24)

#: Compared stochastic searchers, in presentation order.
DEFAULT_SEARCHERS: Tuple[str, ...] = (
    "random",
    "anneal",
    "evolution",
    "halving",
    "surrogate",
)

#: The study's Pareto objectives.
DEFAULT_OBJECTIVES: Tuple[str, ...] = ("latency", "hw_cost")


def study_space() -> SearchSpace:
    """The finite 24-point platform space of the study."""
    return SearchSpace(
        axes=(
            ChoiceAxis("chips", (1, 2, 4, 8)),
            FloatAxis("link_gbps", 0.25, 1.0, levels=(0.25, 0.5, 1.0)),
            ChoiceAxis("l2_kib", (2048, 4096)),
            ChoiceAxis("strategy", ("paper",)),
        )
    )


@dataclass(frozen=True)
class DseStudyPoint:
    """One (searcher, budget) cell of the study matrix."""

    searcher: str
    budget: int
    result: TuneResult
    recovered_fraction: float

    @property
    def unique_evaluations(self) -> int:
        """Distinct design points the searcher actually simulated."""
        return len(self.result.candidates)

    @property
    def front_size(self) -> int:
        """Size of the front the searcher believes it found."""
        return len(self.result.front)


@dataclass(frozen=True)
class DseStudyResult:
    """The full budget-vs-front matrix plus the exhaustive reference."""

    workload: Workload
    reference: TuneResult
    points: Tuple[DseStudyPoint, ...]

    def point(self, searcher: str, budget: int) -> DseStudyPoint:
        """One cell of the matrix."""
        for candidate in self.points:
            if candidate.searcher == searcher and candidate.budget == budget:
                return candidate
        raise KeyError(f"no study point for searcher={searcher}, budget={budget}")

    def searchers(self) -> Tuple[str, ...]:
        ordered: Dict[str, None] = {}
        for point in self.points:
            ordered.setdefault(point.searcher, None)
        return tuple(ordered)

    def budgets(self) -> Tuple[int, ...]:
        ordered: Dict[int, None] = {}
        for point in self.points:
            ordered.setdefault(point.budget, None)
        return tuple(ordered)


def run_dse(
    *,
    budgets: Tuple[int, ...] = DEFAULT_BUDGETS,
    searchers: Tuple[str, ...] = DEFAULT_SEARCHERS,
    objectives: Tuple[str, ...] = DEFAULT_OBJECTIVES,
    seed: int = 0,
) -> DseStudyResult:
    """Run every searcher at every budget against the exhaustive reference."""
    session = default_session()
    workload = autoregressive(tinyllama_42m(), 128)
    space = study_space()
    grid_size = space.size
    assert grid_size is not None
    reference = session.tune(
        workload,
        space,
        searcher="grid",
        budget=grid_size,
        seed=seed,
        objectives=objectives,
    )
    reference_points = {candidate.point for candidate in reference.front}
    points = []
    for searcher in searchers:
        for budget in budgets:
            result = session.tune(
                workload,
                space,
                searcher=searcher,
                budget=budget,
                seed=seed,
                objectives=objectives,
            )
            found = {candidate.point for candidate in result.front}
            recovered = (
                len(found & reference_points) / len(reference_points)
                if reference_points
                else 1.0
            )
            points.append(
                DseStudyPoint(
                    searcher=searcher,
                    budget=budget,
                    result=result,
                    recovered_fraction=recovered,
                )
            )
    return DseStudyResult(
        workload=workload, reference=reference, points=tuple(points)
    )


def render_dse(result: DseStudyResult) -> str:
    """Plain-text matrix: recovered front share per searcher and budget."""
    from ..analysis.tables import format_table

    budgets = result.budgets()
    header = ["Searcher"] + [f"budget {budget}" for budget in budgets]
    rows = []
    for searcher in result.searchers():
        row = [searcher]
        for budget in budgets:
            point = result.point(searcher, budget)
            row.append(
                f"{point.recovered_fraction * 100:5.1f}% "
                f"({point.unique_evaluations} evals)"
            )
        rows.append(row)
    cache = result.points[-1].result.cache if result.points else None
    lines = [
        (
            f"Budget vs. Pareto front on {result.workload.name} "
            f"(space of {result.reference.space.size} points, "
            f"reference front {len(result.reference.front)} points, "
            f"objectives: {', '.join(result.reference.objective_names)})"
        ),
        format_table(header, rows),
        "",
        (
            "Cells show the share of the exhaustive-grid Pareto front each "
            "searcher recovers and the distinct designs it simulated."
        ),
    ]
    if cache is not None:
        lines.append(
            f"shared session cache after the study: {cache.hits} hits, "
            f"{cache.misses} misses ({cache.size} entries)"
        )
    return "\n".join(lines)
