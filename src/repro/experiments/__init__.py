"""Experiment drivers: one module per figure/table of the paper."""

from .dse import DseStudyPoint, DseStudyResult, render_dse, run_dse
from .fig4 import Fig4Result, render_fig4, run_fig4, run_fig4a, run_fig4b, run_fig4c
from .fig5 import Fig5Result, render_fig5, run_fig5
from .fig6 import Fig6Result, render_fig6, run_fig6
from .headline import HeadlineMetric, HeadlineResult, render_headline, run_headline
from .serving import (
    ServingCapacityPoint,
    ServingCapacityResult,
    render_serving,
    run_serving,
)
from .table1 import Table1Result, render_table1, run_table1

__all__ = [
    "DseStudyPoint",
    "DseStudyResult",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "HeadlineMetric",
    "HeadlineResult",
    "ServingCapacityPoint",
    "ServingCapacityResult",
    "Table1Result",
    "render_dse",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_headline",
    "render_serving",
    "render_table1",
    "run_dse",
    "run_fig4",
    "run_fig4a",
    "run_fig4b",
    "run_fig4c",
    "run_fig5",
    "run_fig6",
    "run_headline",
    "run_serving",
    "run_table1",
]
