"""Figure 5: energy versus runtime for the three workloads.

The paper's Fig. 5 plots per-block energy against per-block runtime for
TinyLlama autoregressive mode, TinyLlama prompt mode, and MobileBERT; the
default-configuration points (1-8 chips for TinyLlama, 1-4 for MobileBERT)
are shown as crosses and the scaled-up (64-head) model's 16-64 chip points
as circles.  This module regenerates both series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..analysis.sweep import SweepResult
from ..analysis.tables import energy_runtime_table
from ..graph.workload import autoregressive, prompt
from ..models.tinyllama import (
    TINYLLAMA_AUTOREGRESSIVE_SEQ_LEN,
    TINYLLAMA_PROMPT_SEQ_LEN,
    tinyllama_scaled,
)
from .fig4 import (
    MOBILEBERT_CHIP_COUNTS,
    TINYLLAMA_CHIP_COUNTS,
    mobilebert_workload,
    run_fig4a,
    run_fig4b,
    run_fig4c,
    session_sweep,
)

#: Chip counts of the scaled-up model shown as circles in Fig. 5(a)/(b).
SCALED_CHIP_COUNTS = (16, 32, 64)


@dataclass(frozen=True)
class Fig5Result:
    """The energy/runtime series behind Fig. 5."""

    autoregressive: SweepResult
    autoregressive_scaled: SweepResult
    prompt: SweepResult
    prompt_scaled: SweepResult
    mobilebert: SweepResult

    def points(self) -> Dict[str, List[Tuple[int, float, float]]]:
        """(chips, cycles, energy_joules) tuples per panel and series."""
        def series(sweep: SweepResult) -> List[Tuple[int, float, float]]:
            return [
                (report.num_chips, report.block_cycles, report.block_energy_joules)
                for report in sweep.reports
            ]

        return {
            "tinyllama_autoregressive": series(self.autoregressive),
            "tinyllama_autoregressive_scaled": series(self.autoregressive_scaled),
            "tinyllama_prompt": series(self.prompt),
            "tinyllama_prompt_scaled": series(self.prompt_scaled),
            "mobilebert": series(self.mobilebert),
        }


def run_fig5(
    original_chip_counts: Sequence[int] = TINYLLAMA_CHIP_COUNTS,
    scaled_chip_counts: Sequence[int] = SCALED_CHIP_COUNTS,
    mobilebert_chip_counts: Sequence[int] = MOBILEBERT_CHIP_COUNTS,
) -> Fig5Result:
    """Run every series of Fig. 5."""
    scaled = tinyllama_scaled()
    return Fig5Result(
        autoregressive=run_fig4a(original_chip_counts),
        autoregressive_scaled=session_sweep(
            autoregressive(scaled, TINYLLAMA_AUTOREGRESSIVE_SEQ_LEN),
            scaled_chip_counts,
        ),
        prompt=run_fig4b(original_chip_counts),
        prompt_scaled=session_sweep(
            prompt(scaled, TINYLLAMA_PROMPT_SEQ_LEN), scaled_chip_counts
        ),
        mobilebert=run_fig4c(mobilebert_chip_counts),
    )


def render_fig5(result: Fig5Result) -> str:
    """Plain-text rendering of the five series."""
    sections = [
        ("Fig. 5(a) TinyLlama autoregressive (original model)", result.autoregressive),
        (
            "Fig. 5(a) TinyLlama autoregressive (scaled-up, 64 heads)",
            result.autoregressive_scaled,
        ),
        ("Fig. 5(b) TinyLlama prompt (original model)", result.prompt),
        ("Fig. 5(b) TinyLlama prompt (scaled-up, 64 heads)", result.prompt_scaled),
        ("Fig. 5(c) MobileBERT", result.mobilebert),
    ]
    parts = []
    for title, sweep in sections:
        parts.append(title)
        parts.append(energy_runtime_table(sweep))
        parts.append("")
    return "\n".join(parts)


def main() -> None:
    """Run and print Fig. 5."""
    print(render_fig5(run_fig5()))


if __name__ == "__main__":
    main()
