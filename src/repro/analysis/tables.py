"""Plain-text renderers for the paper's figures and tables.

The benchmark harness prints the same rows and series the paper plots, so
the shapes can be compared by eye (and asserted programmatically in the
test suite) without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.schedule import RuntimeCategory
from ..units import format_bytes, format_energy, format_time
from .metrics import ScalingPoint
from .sweep import SweepResult

_BREAKDOWN_ORDER = (
    RuntimeCategory.COMPUTE,
    RuntimeCategory.DMA_L3_L2,
    RuntimeCategory.DMA_L2_L1,
    RuntimeCategory.CHIP_TO_CHIP,
    RuntimeCategory.IDLE,
)

_BREAKDOWN_LABELS = {
    RuntimeCategory.COMPUTE: "Computation",
    RuntimeCategory.DMA_L3_L2: "DMA L3<->L2",
    RuntimeCategory.DMA_L2_L1: "DMA L2<->L1",
    RuntimeCategory.CHIP_TO_CHIP: "Chip-to-Chip",
    RuntimeCategory.IDLE: "Idle",
}


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a simple fixed-width text table."""
    columns = len(headers)
    widths = [len(header) for header in headers]
    for row in rows:
        if len(row) != columns:
            raise ValueError("all rows must have the same number of columns")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = " | ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rows:
        lines.append(
            " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def runtime_breakdown_table(sweep: SweepResult) -> str:
    """Fig. 4-style table: runtime breakdown and speedup per chip count."""
    headers = ["Chips", "Cycles"] + [
        _BREAKDOWN_LABELS[category] for category in _BREAKDOWN_ORDER
    ] + ["Speedup", "Linear", "On-chip"]
    speedups = sweep.speedups()
    rows: List[List[str]] = []
    for report in sweep.reports:
        breakdown = report.runtime_breakdown()
        row = [str(report.num_chips), f"{report.block_cycles:,.0f}"]
        row.extend(
            f"{breakdown.get(category, 0.0):,.0f}" for category in _BREAKDOWN_ORDER
        )
        row.append(f"{speedups[report.num_chips]:.2f}x")
        row.append(f"{report.num_chips:.2f}x")
        row.append("yes" if report.runs_from_on_chip_memory else "no")
        rows.append(row)
    return format_table(headers, rows)


def energy_runtime_table(sweep: SweepResult) -> str:
    """Fig. 5-style table: runtime vs. energy per chip count."""
    headers = [
        "Chips",
        "Cycles",
        "Runtime",
        "Energy/block",
        "EDP (uJ*s)",
        "L3 traffic",
        "C2C traffic",
    ]
    rows: List[List[str]] = []
    for report in sweep.reports:
        rows.append(
            [
                str(report.num_chips),
                f"{report.block_cycles:,.0f}",
                format_time(report.block_runtime_seconds),
                format_energy(report.block_energy_joules),
                f"{report.energy_delay_product * 1e6:.3f}",
                format_bytes(report.total_l3_bytes),
                format_bytes(report.total_c2c_bytes),
            ]
        )
    return format_table(headers, rows)


def scaling_table(points: Sequence[ScalingPoint], title: str = "") -> str:
    """Fig. 6-style table: speedup vs. chip count with linear reference."""
    headers = [
        "Chips",
        "Speedup",
        "Linear",
        "Efficiency",
        "Energy gain",
        "EDP gain",
        "On-chip",
    ]
    rows = []
    for point in points:
        rows.append(
            [
                str(point.num_chips),
                f"{point.speedup:.2f}x",
                f"{point.num_chips:.2f}x",
                f"{point.parallel_efficiency:.2f}",
                f"{point.energy_improvement:.2f}x",
                f"{point.edp_improvement:.2f}x",
                "yes" if point.runs_from_on_chip_memory else "no",
            ]
        )
    table = format_table(headers, rows)
    if title:
        return f"{title}\n{table}"
    return table


def comparison_table(rows: Dict[str, Dict[str, str]], headers: Sequence[str]) -> str:
    """Table-I-style qualitative comparison of partitioning approaches."""
    table_rows = []
    for name, values in rows.items():
        table_rows.append([name] + [values.get(column, "-") for column in headers])
    return format_table(["Approach"] + list(headers), table_rows)
