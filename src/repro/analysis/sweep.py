"""Chip-count sweeps: the backbone of every figure in the paper.

Since the :mod:`repro.api` redesign, sweeps are executed by
:meth:`repro.api.Session.sweep`; :class:`ChipCountSweep` and
:func:`chip_count_sweep` remain as thin shims that run the ``"paper"``
strategy through a session and convert the result back to the classic
:class:`SweepResult` of :class:`BlockReport` objects the figure renderers
consume.  Sweeps sharing the default platform preset share the process-wide
session cache, so a chip count simulated for one figure is reused by all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.placement import PrefetchAccounting
from ..core.schedule import RuntimeCategory
from ..errors import AnalysisError
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from ..hw.presets import siracusa_platform
from ..kernels.library import KernelLibrary
from .evaluate import BlockReport
from .metrics import ScalingPoint, scaling_points

#: Factory signature used to build a platform for a given chip count.
PlatformFactory = Callable[[int], MultiChipPlatform]


@dataclass(frozen=True)
class SweepResult:
    """Evaluations of one workload across several chip counts.

    Attributes:
        workload: The swept workload.
        reports: One :class:`BlockReport` per chip count, in sweep order.
    """

    workload: Workload
    reports: Tuple[BlockReport, ...]

    def __post_init__(self) -> None:
        if not self.reports:
            raise AnalysisError("a sweep needs at least one chip count")

    @cached_property
    def _reports_by_chip_count(self) -> Dict[int, BlockReport]:
        return {report.num_chips: report for report in self.reports}

    @property
    def chip_counts(self) -> List[int]:
        """Chip counts of the sweep, in order."""
        return [report.num_chips for report in self.reports]

    @property
    def baseline(self) -> BlockReport:
        """The first (reference) report, normally the single-chip system."""
        return self.reports[0]

    def report_for(self, num_chips: int) -> BlockReport:
        """The report of one particular chip count."""
        try:
            return self._reports_by_chip_count[num_chips]
        except KeyError:
            raise AnalysisError(
                f"sweep has no entry for {num_chips} chips"
            ) from None

    def scaling(self) -> List[ScalingPoint]:
        """Speedups/energy ratios relative to the first chip count."""
        return scaling_points(list(self.reports))

    def speedups(self) -> Dict[int, float]:
        """Chip count -> speedup relative to the sweep's first entry."""
        return {point.num_chips: point.speedup for point in self.scaling()}

    def energies_joules(self) -> Dict[int, float]:
        """Chip count -> per-block energy in joules."""
        return {
            report.num_chips: report.block_energy_joules for report in self.reports
        }

    def cycles(self) -> Dict[int, float]:
        """Chip count -> per-block runtime in cycles."""
        return {report.num_chips: report.block_cycles for report in self.reports}

    def breakdowns(self) -> Dict[int, Dict[RuntimeCategory, float]]:
        """Chip count -> average per-chip runtime breakdown."""
        return {
            report.num_chips: report.runtime_breakdown() for report in self.reports
        }


@dataclass
class ChipCountSweep:
    """Runs one workload across a list of chip counts (legacy shim).

    Evaluation is delegated to a private :class:`repro.api.Session`, whose
    content-hash memoisation replaces the seed's hand-rolled cache.

    Attributes:
        platform_factory: Builds the platform for each chip count; defaults
            to the Siracusa + MIPI preset used throughout the paper.
        prefetch_accounting: Prefetch runtime-accounting policy.
        kernel_library: Optional custom kernel cost models (shared across
            chip counts).
    """

    platform_factory: PlatformFactory = siracusa_platform
    prefetch_accounting: PrefetchAccounting = PrefetchAccounting.HIDDEN
    kernel_library: Optional[KernelLibrary] = None
    _session: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        from ..api.session import Session

        self._session = Session(
            platform_factory=self.platform_factory,
            kernels=self.kernel_library,
            prefetch_accounting=self.prefetch_accounting,
        )

    def run(self, workload: Workload, chip_counts: Sequence[int]) -> SweepResult:
        """Evaluate ``workload`` on every chip count of ``chip_counts``."""
        return self._session.sweep(
            workload, chip_counts, strategy="paper"
        ).to_sweep_result()


def chip_count_sweep(
    workload: Workload,
    chip_counts: Sequence[int],
    *,
    platform_factory: PlatformFactory = siracusa_platform,
    prefetch_accounting: PrefetchAccounting = PrefetchAccounting.HIDDEN,
) -> SweepResult:
    """Sweep ``workload`` over ``chip_counts`` with the paper's strategy.

    Default-configured sweeps share the process-wide
    :func:`repro.api.default_session` cache; customised sweeps get a
    private session.
    """
    from ..api.session import Session, default_session

    if (
        platform_factory is siracusa_platform
        and prefetch_accounting is PrefetchAccounting.HIDDEN
    ):
        session = default_session()
    else:
        session = Session(
            platform_factory=platform_factory,
            prefetch_accounting=prefetch_accounting,
        )
    return session.sweep(workload, chip_counts, strategy="paper").to_sweep_result()
