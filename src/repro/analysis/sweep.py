"""Chip-count sweeps: the backbone of every figure in the paper."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.placement import PrefetchAccounting
from ..core.schedule import RuntimeCategory
from ..errors import AnalysisError
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from ..hw.presets import siracusa_platform
from ..kernels.library import KernelLibrary
from .evaluate import BlockReport, evaluate_block
from .metrics import ScalingPoint, scaling_points

#: Factory signature used to build a platform for a given chip count.
PlatformFactory = Callable[[int], MultiChipPlatform]


@dataclass(frozen=True)
class SweepResult:
    """Evaluations of one workload across several chip counts.

    Attributes:
        workload: The swept workload.
        reports: One :class:`BlockReport` per chip count, in sweep order.
    """

    workload: Workload
    reports: tuple

    def __post_init__(self) -> None:
        if not self.reports:
            raise AnalysisError("a sweep needs at least one chip count")

    @property
    def chip_counts(self) -> List[int]:
        """Chip counts of the sweep, in order."""
        return [report.num_chips for report in self.reports]

    @property
    def baseline(self) -> BlockReport:
        """The first (reference) report, normally the single-chip system."""
        return self.reports[0]

    def report_for(self, num_chips: int) -> BlockReport:
        """The report of one particular chip count."""
        for report in self.reports:
            if report.num_chips == num_chips:
                return report
        raise AnalysisError(f"sweep has no entry for {num_chips} chips")

    def scaling(self) -> List[ScalingPoint]:
        """Speedups/energy ratios relative to the first chip count."""
        return scaling_points(list(self.reports))

    def speedups(self) -> Dict[int, float]:
        """Chip count -> speedup relative to the sweep's first entry."""
        return {point.num_chips: point.speedup for point in self.scaling()}

    def energies_joules(self) -> Dict[int, float]:
        """Chip count -> per-block energy in joules."""
        return {
            report.num_chips: report.block_energy_joules for report in self.reports
        }

    def cycles(self) -> Dict[int, float]:
        """Chip count -> per-block runtime in cycles."""
        return {report.num_chips: report.block_cycles for report in self.reports}

    def breakdowns(self) -> Dict[int, Dict[RuntimeCategory, float]]:
        """Chip count -> average per-chip runtime breakdown."""
        return {
            report.num_chips: report.runtime_breakdown() for report in self.reports
        }


@dataclass
class ChipCountSweep:
    """Runs one workload across a list of chip counts.

    Attributes:
        platform_factory: Builds the platform for each chip count; defaults
            to the Siracusa + MIPI preset used throughout the paper.
        prefetch_accounting: Prefetch runtime-accounting policy.
        kernel_library: Optional custom kernel cost models (shared across
            chip counts).
    """

    platform_factory: PlatformFactory = siracusa_platform
    prefetch_accounting: PrefetchAccounting = PrefetchAccounting.HIDDEN
    kernel_library: Optional[KernelLibrary] = None
    _cache: Dict[tuple, BlockReport] = field(default_factory=dict, repr=False)

    def run(self, workload: Workload, chip_counts: Sequence[int]) -> SweepResult:
        """Evaluate ``workload`` on every chip count of ``chip_counts``."""
        if not chip_counts:
            raise AnalysisError("chip_counts must not be empty")
        reports = []
        for num_chips in chip_counts:
            if num_chips <= 0:
                raise AnalysisError(f"invalid chip count {num_chips}")
            reports.append(self._evaluate(workload, num_chips))
        return SweepResult(workload=workload, reports=tuple(reports))

    def _evaluate(self, workload: Workload, num_chips: int) -> BlockReport:
        key = (workload.name, workload.seq_len, num_chips, self.prefetch_accounting)
        if key not in self._cache:
            platform = self.platform_factory(num_chips)
            self._cache[key] = evaluate_block(
                workload,
                platform,
                kernel_library=self.kernel_library,
                prefetch_accounting=self.prefetch_accounting,
            )
        return self._cache[key]


def chip_count_sweep(
    workload: Workload,
    chip_counts: Sequence[int],
    *,
    platform_factory: PlatformFactory = siracusa_platform,
    prefetch_accounting: PrefetchAccounting = PrefetchAccounting.HIDDEN,
) -> SweepResult:
    """Convenience wrapper around :class:`ChipCountSweep`."""
    sweep = ChipCountSweep(
        platform_factory=platform_factory,
        prefetch_accounting=prefetch_accounting,
    )
    return sweep.run(workload, chip_counts)
