"""Evaluation, metrics, sweeps, and plain-text figure rendering."""

from .evaluate import BlockReport, evaluate_block
from .export import (
    comparison_to_json,
    eval_result_to_dict,
    eval_sweep_to_json,
    fleet_report_to_dict,
    fleet_report_to_json,
    report_to_dict,
    search_state_to_dict,
    search_state_to_json,
    sweep_to_csv,
    sweep_to_json,
    sweep_to_records,
    write_sweep,
)
from .generation import GenerationReport, GenerationStep, evaluate_generation
from .metrics import (
    ScalingPoint,
    edp_improvement,
    energy_ratio,
    is_super_linear,
    parallel_efficiency,
    scaling_points,
    speedup,
)
from .sweep import ChipCountSweep, SweepResult, chip_count_sweep
from .tables import (
    comparison_table,
    energy_runtime_table,
    format_table,
    runtime_breakdown_table,
    scaling_table,
)

__all__ = [
    "BlockReport",
    "ChipCountSweep",
    "GenerationReport",
    "GenerationStep",
    "ScalingPoint",
    "SweepResult",
    "chip_count_sweep",
    "comparison_table",
    "comparison_to_json",
    "eval_result_to_dict",
    "eval_sweep_to_json",
    "edp_improvement",
    "energy_ratio",
    "energy_runtime_table",
    "evaluate_block",
    "evaluate_generation",
    "fleet_report_to_dict",
    "fleet_report_to_json",
    "format_table",
    "is_super_linear",
    "parallel_efficiency",
    "report_to_dict",
    "runtime_breakdown_table",
    "scaling_points",
    "search_state_to_dict",
    "search_state_to_json",
    "scaling_table",
    "speedup",
    "sweep_to_csv",
    "sweep_to_json",
    "sweep_to_records",
    "write_sweep",
]
