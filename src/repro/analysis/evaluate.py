"""Evaluation engine of the paper's partitioning scheme.

:func:`evaluate_block` takes a workload and a platform, partitions one
Transformer block with the paper's scheme, schedules it, simulates it, and
applies the energy model.  The resulting :class:`BlockReport` carries
everything the examples, benchmarks, and figure harnesses need: runtime,
runtime breakdown, traffic, energy, energy-delay product, and the
weight-residency regime of every chip.

This module is the computational backend of the ``"paper"`` strategy in
:mod:`repro.api`; new code should prefer the unified front door::

    from repro.api import Session

    result = Session().run(workload, strategy="paper", chips=8)

:func:`evaluate_block` remains supported as the engine that strategy calls
(and as a convenience shim for one-off evaluations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.placement import PrefetchAccounting, WeightResidency
from ..core.schedule import BlockProgram, RuntimeCategory
from ..core.scheduler import BlockScheduler
from ..energy.model import EnergyModel, EnergyReport
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from ..kernels.library import KernelLibrary
from ..sim.simulator import simulate_block
from ..sim.trace import SimulationResult


@dataclass(frozen=True)
class BlockReport:
    """Complete evaluation of one Transformer block on one platform.

    Attributes:
        workload: The evaluated workload.
        platform: The platform it ran on.
        program: The scheduled block program.
        simulation: The simulation trace.
        energy: The energy report derived from the trace.
    """

    workload: Workload
    platform: MultiChipPlatform
    program: BlockProgram
    simulation: SimulationResult
    energy: EnergyReport

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------
    @property
    def num_chips(self) -> int:
        """Number of chips used."""
        return self.platform.num_chips

    @property
    def block_cycles(self) -> float:
        """Runtime of one Transformer block in cycles."""
        return self.simulation.total_cycles

    @property
    def block_runtime_seconds(self) -> float:
        """Runtime of one Transformer block in seconds."""
        return self.simulation.runtime_seconds

    @property
    def inference_cycles(self) -> float:
        """Estimated runtime of a full forward pass (all blocks) in cycles.

        The paper reports per-block numbers; the full pass is the per-block
        cost times the layer count (embedding lookup and the LM head are
        outside the scope of the partitioning scheme and are not modelled).
        """
        return self.block_cycles * self.workload.config.num_layers

    @property
    def inference_runtime_seconds(self) -> float:
        """Estimated runtime of a full forward pass in seconds."""
        return self.inference_cycles / self.platform.frequency_hz

    def runtime_breakdown(self) -> Dict[RuntimeCategory, float]:
        """Average per-chip cycles by category (the Fig. 4 stacked bars)."""
        return self.simulation.breakdown_average()

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    @property
    def block_energy_joules(self) -> float:
        """Energy of one Transformer block in joules."""
        return self.energy.total_joules

    @property
    def inference_energy_joules(self) -> float:
        """Estimated energy of a full forward pass in joules."""
        return self.block_energy_joules * self.workload.config.num_layers

    @property
    def energy_delay_product(self) -> float:
        """Per-block energy-delay product in joule-seconds."""
        return self.energy.energy_delay_product

    # ------------------------------------------------------------------
    # Memory placement
    # ------------------------------------------------------------------
    def residencies(self) -> Dict[int, WeightResidency]:
        """Weight-residency regime selected for every chip."""
        return {
            chip_id: plan.residency
            for chip_id, plan in self.program.memory_plans.items()
        }

    @property
    def runs_from_on_chip_memory(self) -> bool:
        """Whether every chip executes the block with on-chip weights."""
        return all(
            residency.is_on_chip for residency in self.residencies().values()
        )

    @property
    def total_l3_bytes(self) -> float:
        """Off-chip traffic of one block, summed over chips."""
        return self.simulation.total_l3_l2_bytes

    @property
    def total_c2c_bytes(self) -> float:
        """Chip-to-chip traffic of one block."""
        return self.simulation.total_c2c_bytes

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload.name} on {self.num_chips} chip(s): "
            f"{self.block_cycles:.0f} cycles/block, "
            f"{self.block_energy_joules * 1e3:.3f} mJ/block, "
            f"on-chip={self.runs_from_on_chip_memory}"
        )


def evaluate_block(
    workload: Workload,
    platform: MultiChipPlatform,
    *,
    kernel_library: Optional[KernelLibrary] = None,
    prefetch_accounting: PrefetchAccounting = PrefetchAccounting.HIDDEN,
    record_events: bool = False,
    energy_model: Optional[EnergyModel] = None,
) -> BlockReport:
    """Partition, schedule, simulate, and measure one Transformer block.

    Args:
        workload: The model/mode/sequence-length combination to evaluate.
        platform: The multi-chip platform to run on.
        kernel_library: Optional custom kernel cost models.
        prefetch_accounting: How double-buffered weight prefetches are
            charged to runtime (the paper's accounting is ``HIDDEN``).
        record_events: Keep per-step trace events for debugging.
        energy_model: Optional custom energy model; defaults to the paper's
            analytical model on ``platform``.

    Returns:
        A :class:`BlockReport` with runtime, energy, and placement details.
    """
    scheduler = BlockScheduler(
        platform=platform,
        kernel_library=kernel_library,
        prefetch_accounting=prefetch_accounting,
    )
    program = scheduler.build(workload)
    simulation = simulate_block(program, record_events=record_events)
    if energy_model is None:
        energy_model = EnergyModel(platform)
    energy = energy_model.from_simulation(simulation)
    return BlockReport(
        workload=workload,
        platform=platform,
        program=program,
        simulation=simulation,
        energy=energy,
    )
