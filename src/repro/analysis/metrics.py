"""Derived metrics: speedups, energy ratios, EDP improvements."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import AnalysisError
from .evaluate import BlockReport


def speedup(baseline_cycles: float, cycles: float) -> float:
    """Runtime speedup of ``cycles`` relative to ``baseline_cycles``."""
    if cycles <= 0:
        raise AnalysisError("cycles must be positive to compute a speedup")
    if baseline_cycles < 0:
        raise AnalysisError("baseline cycles cannot be negative")
    return baseline_cycles / cycles


def energy_ratio(baseline_joules: float, joules: float) -> float:
    """Energy improvement factor relative to a baseline (>1 means better)."""
    if joules <= 0:
        raise AnalysisError("energy must be positive to compute a ratio")
    if baseline_joules < 0:
        raise AnalysisError("baseline energy cannot be negative")
    return baseline_joules / joules


def edp_improvement(baseline_edp: float, edp: float) -> float:
    """Energy-delay-product improvement factor relative to a baseline."""
    if edp <= 0:
        raise AnalysisError("EDP must be positive to compute an improvement")
    if baseline_edp < 0:
        raise AnalysisError("baseline EDP cannot be negative")
    return baseline_edp / edp


def is_super_linear(speedup_value: float, num_chips: int) -> bool:
    """Whether a speedup exceeds the ideal linear scaling for a chip count."""
    if num_chips <= 0:
        raise AnalysisError("num_chips must be positive")
    return speedup_value > num_chips


def parallel_efficiency(speedup_value: float, num_chips: int) -> float:
    """Speedup divided by the chip count (1.0 = perfectly linear)."""
    if num_chips <= 0:
        raise AnalysisError("num_chips must be positive")
    return speedup_value / num_chips


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a chip-count scaling study."""

    num_chips: int
    cycles: float
    energy_joules: float
    speedup: float
    energy_improvement: float
    edp_improvement: float
    runs_from_on_chip_memory: bool

    @property
    def parallel_efficiency(self) -> float:
        """Speedup per chip."""
        return self.speedup / self.num_chips

    @property
    def is_super_linear(self) -> bool:
        """Whether this point scales better than linearly."""
        return self.speedup > self.num_chips


def scaling_points(reports: Sequence[BlockReport]) -> list[ScalingPoint]:
    """Turn a chip-count sweep into scaling points relative to its first entry.

    The first report of the sequence is used as the baseline (the paper
    always normalises to the single-chip system).

    Raises:
        AnalysisError: If the sequence is empty or mixes workloads.
    """
    if not reports:
        raise AnalysisError("cannot compute scaling points of an empty sweep")
    names = {report.workload.name for report in reports}
    if len(names) > 1:
        raise AnalysisError(f"sweep mixes different workloads: {sorted(names)}")
    baseline = reports[0]
    points = []
    for report in reports:
        points.append(
            ScalingPoint(
                num_chips=report.num_chips,
                cycles=report.block_cycles,
                energy_joules=report.block_energy_joules,
                speedup=speedup(baseline.block_cycles, report.block_cycles),
                energy_improvement=energy_ratio(
                    baseline.block_energy_joules, report.block_energy_joules
                ),
                edp_improvement=edp_improvement(
                    baseline.energy_delay_product, report.energy_delay_product
                ),
                runs_from_on_chip_memory=report.runs_from_on_chip_memory,
            )
        )
    return points
