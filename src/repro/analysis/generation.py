"""Token-generation latency and energy model.

The figures of the paper report steady-state per-block numbers at a fixed
context length.  An application (the smart-glasses assistant of the paper's
introduction) cares about the cost of generating a whole reply: a prompt
pass over the query followed by token-by-token decoding with a *growing*
KV-cache.  This module composes per-block evaluations into that end-to-end
view, re-evaluating the block at several context lengths so the quadratic
attention term and the KV-cache growth are captured rather than assumed
constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.placement import PrefetchAccounting
from ..errors import AnalysisError
from ..graph.transformer import TransformerConfig
from ..graph.workload import autoregressive, prompt
from ..hw.platform import MultiChipPlatform
from .evaluate import BlockReport, evaluate_block


@dataclass(frozen=True)
class GenerationStep:
    """Cost of decoding one token at a given context length."""

    token_index: int
    context_length: int
    block_cycles: float
    inference_cycles: float
    inference_energy_joules: float


@dataclass(frozen=True)
class GenerationReport:
    """End-to-end cost of one prompt pass plus ``N`` generated tokens.

    Attributes:
        config: The model used.
        platform_chips: Number of chips of the platform.
        prompt_tokens: Length of the prompt processed in prompt mode.
        generated_tokens: Number of tokens decoded autoregressively.
        prompt_report: Per-block report of the prompt pass.
        steps: Per-token decoding costs (sampled and interpolated).
    """

    config: TransformerConfig
    platform_chips: int
    prompt_tokens: int
    generated_tokens: int
    prompt_report: BlockReport
    steps: List[GenerationStep]

    @property
    def prompt_cycles(self) -> float:
        """Cycles of the full prompt pass (all layers)."""
        return self.prompt_report.inference_cycles

    @property
    def decode_cycles(self) -> float:
        """Cycles of decoding all generated tokens (all layers each)."""
        return sum(step.inference_cycles for step in self.steps)

    @property
    def total_cycles(self) -> float:
        """Cycles of the whole reply (prompt pass plus decoding)."""
        return self.prompt_cycles + self.decode_cycles

    @property
    def total_energy_joules(self) -> float:
        """Energy of the whole reply."""
        decode = sum(step.inference_energy_joules for step in self.steps)
        return self.prompt_report.inference_energy_joules + decode

    def total_seconds(self, frequency_hz: float = 500e6) -> float:
        """Wall-clock duration of the whole reply."""
        if frequency_hz <= 0:
            raise AnalysisError("frequency must be positive")
        return self.total_cycles / frequency_hz

    @property
    def mean_time_per_token_cycles(self) -> float:
        """Average decoding cost per generated token."""
        if not self.steps:
            return 0.0
        return self.decode_cycles / len(self.steps)


def _sample_context_lengths(start: int, end: int, samples: int) -> List[int]:
    """Pick ``samples`` context lengths between start and end (inclusive)."""
    if samples <= 1 or end <= start:
        return [max(start, 1)]
    span = end - start
    return sorted({start + round(span * i / (samples - 1)) for i in range(samples)})


def evaluate_generation(
    config: TransformerConfig,
    platform: MultiChipPlatform,
    *,
    prompt_tokens: int,
    generated_tokens: int,
    context_samples: int = 4,
    prefetch_accounting: PrefetchAccounting = PrefetchAccounting.HIDDEN,
) -> GenerationReport:
    """Size one full reply: a prompt pass plus autoregressive decoding.

    The decoder is evaluated at ``context_samples`` context lengths between
    the prompt length and the final length; intermediate tokens reuse the
    nearest evaluated context (piecewise-constant interpolation), which
    keeps the number of simulator runs small while still reflecting the
    growth of the attention and KV-cache terms.

    Args:
        config: Model configuration.
        platform: Multi-chip platform to run on.
        prompt_tokens: Number of prompt tokens processed in prompt mode.
        generated_tokens: Number of tokens to decode (0 sizes a pure
            prompt pass, e.g. classification or scoring).
        context_samples: Number of distinct context lengths to simulate.
        prefetch_accounting: Runtime accounting policy for weight prefetches.

    Raises:
        AnalysisError: If ``prompt_tokens`` is not positive or
            ``generated_tokens`` is negative.
    """
    if prompt_tokens <= 0:
        raise AnalysisError("prompt_tokens must be positive")
    if generated_tokens < 0:
        raise AnalysisError("generated_tokens cannot be negative")
    if context_samples <= 0:
        raise AnalysisError("context_samples must be positive")

    prompt_report = evaluate_block(
        prompt(config, prompt_tokens),
        platform,
        prefetch_accounting=prefetch_accounting,
    )
    if generated_tokens == 0:
        return GenerationReport(
            config=config,
            platform_chips=platform.num_chips,
            prompt_tokens=prompt_tokens,
            generated_tokens=0,
            prompt_report=prompt_report,
            steps=[],
        )

    final_context = prompt_tokens + generated_tokens
    sampled_lengths = _sample_context_lengths(
        prompt_tokens + 1, final_context, context_samples
    )
    sampled_reports: Dict[int, BlockReport] = {
        length: evaluate_block(
            autoregressive(config, length),
            platform,
            prefetch_accounting=prefetch_accounting,
        )
        for length in sampled_lengths
    }

    steps: List[GenerationStep] = []
    for token_index in range(generated_tokens):
        context_length = prompt_tokens + token_index + 1
        nearest = min(sampled_lengths, key=lambda length: abs(length - context_length))
        report = sampled_reports[nearest]
        steps.append(
            GenerationStep(
                token_index=token_index,
                context_length=context_length,
                block_cycles=report.block_cycles,
                inference_cycles=report.inference_cycles,
                inference_energy_joules=report.inference_energy_joules,
            )
        )

    return GenerationReport(
        config=config,
        platform_chips=platform.num_chips,
        prompt_tokens=prompt_tokens,
        generated_tokens=generated_tokens,
        prompt_report=prompt_report,
        steps=steps,
    )
