"""Export of evaluation results to CSV and JSON.

Sweeps and reports are plain Python objects; these helpers serialise them
into formats that downstream tooling (plotting scripts, spreadsheets,
regression dashboards) can consume without importing the library.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Any, Dict, List

from ..core.schedule import RuntimeCategory
from ..errors import AnalysisError
from .evaluate import BlockReport
from .sweep import SweepResult

if TYPE_CHECKING:  # pragma: no cover - avoids an import cycle with repro.api
    from ..api.result import EvalResult
    from ..api.session import CacheInfo, Comparison, EvalSweep
    from ..dse.engine import TuneResult
    from ..dse.orchestrator import SearchState
    from ..fleet.metrics import FleetReport

#: Column order of the sweep CSV export.
SWEEP_CSV_COLUMNS = (
    "workload",
    "num_chips",
    "block_cycles",
    "block_runtime_seconds",
    "block_energy_joules",
    "energy_delay_product",
    "speedup",
    "l3_bytes",
    "c2c_bytes",
    "on_chip",
    "compute_cycles",
    "dma_l3_l2_cycles",
    "dma_l2_l1_cycles",
    "chip_to_chip_cycles",
    "idle_cycles",
)


def report_to_dict(report: BlockReport, speedup: float | None = None) -> Dict[str, Any]:
    """Flatten one :class:`BlockReport` into JSON-serialisable primitives."""
    breakdown = report.runtime_breakdown()
    record: Dict[str, Any] = {
        "workload": report.workload.name,
        "num_chips": report.num_chips,
        "block_cycles": report.block_cycles,
        "block_runtime_seconds": report.block_runtime_seconds,
        "block_energy_joules": report.block_energy_joules,
        "energy_delay_product": report.energy_delay_product,
        "l3_bytes": report.total_l3_bytes,
        "c2c_bytes": report.total_c2c_bytes,
        "on_chip": report.runs_from_on_chip_memory,
        "residencies": {
            str(chip_id): residency.value
            for chip_id, residency in report.residencies().items()
        },
        "compute_cycles": breakdown[RuntimeCategory.COMPUTE],
        "dma_l3_l2_cycles": breakdown[RuntimeCategory.DMA_L3_L2],
        "dma_l2_l1_cycles": breakdown[RuntimeCategory.DMA_L2_L1],
        "chip_to_chip_cycles": breakdown[RuntimeCategory.CHIP_TO_CHIP],
        "idle_cycles": breakdown[RuntimeCategory.IDLE],
        "energy_breakdown_joules": {
            "compute": report.energy.total.compute,
            "l2_l1": report.energy.total.l2_l1,
            "l3_l2": report.energy.total.l3_l2,
            "chip_to_chip": report.energy.total.chip_to_chip,
        },
    }
    if speedup is not None:
        record["speedup"] = speedup
    return record


def sweep_to_records(sweep: SweepResult) -> List[Dict[str, Any]]:
    """Flatten a sweep into one record per chip count."""
    speedups = sweep.speedups()
    return [
        report_to_dict(report, speedup=speedups[report.num_chips])
        for report in sweep.reports
    ]


def sweep_to_json(sweep: SweepResult, *, indent: int = 2) -> str:
    """Serialise a sweep to a JSON document."""
    document = {
        "workload": sweep.workload.name,
        "chip_counts": sweep.chip_counts,
        "results": sweep_to_records(sweep),
    }
    return json.dumps(document, indent=indent, sort_keys=True)


#: :func:`report_to_dict` fields only the simulator-backed report can fill;
#: the analytical branch of :func:`eval_result_to_dict` exports them as
#: ``None`` so both branches always share one schema.
_SIMULATOR_ONLY_FIELDS = (
    "on_chip",
    "residencies",
    "compute_cycles",
    "dma_l3_l2_cycles",
    "dma_l2_l1_cycles",
    "chip_to_chip_cycles",
    "idle_cycles",
    "energy_breakdown_joules",
)


def eval_result_to_dict(
    result: "EvalResult", speedup: float | None = None
) -> Dict[str, Any]:
    """Flatten one :class:`~repro.api.EvalResult` of *any* strategy.

    Simulator-backed results reuse :func:`report_to_dict` so the keys match
    the classic sweep export exactly; analytical baselines fill the
    simulator-only fields (breakdowns, residencies) with ``None``.  The
    strategy metadata columns are appended in both cases, giving every CLI
    command one shared machine-readable schema.
    """
    if result.report is not None:
        record = report_to_dict(result.report, speedup=speedup)
    else:
        record = {
            "workload": result.workload.name,
            "num_chips": result.num_chips,
            "block_cycles": result.block_cycles,
            "block_runtime_seconds": result.block_runtime_seconds,
            "block_energy_joules": result.block_energy_joules,
            "energy_delay_product": result.energy_delay_product,
            "l3_bytes": result.l3_bytes_per_block,
            "c2c_bytes": result.c2c_bytes_per_block,
        }
        for field in _SIMULATOR_ONLY_FIELDS:
            record[field] = None
        if speedup is not None:
            record["speedup"] = speedup
    record.update(
        {
            "strategy": result.strategy,
            "approach": result.approach,
            "weight_bytes_per_chip": result.weight_bytes_per_chip,
            "weights_replicated": result.weights_replicated,
            "synchronisations_per_block": result.synchronisations_per_block,
            "uses_pipelining": result.uses_pipelining,
            "notes": result.notes,
        }
    )
    return record


def cache_info_to_dict(cache: "CacheInfo") -> Dict[str, int]:
    """Flatten a session's memoisation statistics for JSON export.

    ``dropped_writes`` only appears once a persistent-store write has
    actually been dropped (a rare contention signal), keeping the cache
    block of healthy runs identical to earlier releases.
    """
    return cache.to_dict()


def eval_sweep_to_dict(sweep: "EvalSweep") -> Dict[str, Any]:
    """Flatten any strategy's chip-count sweep into primitives.

    This is the cache-free body of :func:`eval_sweep_to_json`, and the
    per-stage artifact form the :class:`~repro.api.study.Study` runner
    writes (cache statistics are deliberately absent: they depend on what
    ran earlier in the session, so including them would break the
    byte-determinism of study artifacts).
    """
    speedups = sweep.speedups()
    return {
        "workload": sweep.workload.name,
        "strategy": sweep.strategy,
        "chip_counts": sweep.chip_counts,
        "results": [
            eval_result_to_dict(result, speedup=speedups[result.num_chips])
            for result in sweep.results
        ],
    }


def eval_sweep_to_json(
    sweep: "EvalSweep", *, indent: int = 2, cache: "CacheInfo | None" = None
) -> str:
    """Serialise any strategy's chip-count sweep to a JSON document.

    Pass the evaluating session's :meth:`~repro.api.Session.cache_info`
    as ``cache`` to make memoisation reuse observable in the output.
    """
    document = eval_sweep_to_dict(sweep)
    if cache is not None:
        document["cache"] = cache_info_to_dict(cache)
    return json.dumps(document, indent=indent, sort_keys=True)


def tune_result_to_dict(
    result: "TuneResult", *, include_cache: bool = True
) -> Dict[str, Any]:
    """Flatten a :class:`~repro.dse.engine.TuneResult` into primitives.

    Candidates and the front appear in evaluation order; together with
    the deterministic searchers this makes the document byte-identical
    across runs for equal seed/space/budget.  ``include_cache=False``
    drops the session cache statistics (which depend on evaluation
    history, not on the tuning inputs) — the form study artifacts use.
    """
    document = {
        "workload": result.workload.name,
        "searcher": result.searcher,
        "seed": result.seed,
        "budget": result.budget,
        "objectives": [
            {"name": objective.name, "sense": objective.sense.value}
            for objective in result.objectives
        ],
        "constraints": [
            constraint.render() for constraint in result.constraints
        ],
        "space": {
            "axes": list(result.space.names),
            "size": result.space.size,
        },
        "evaluations_requested": result.evaluations_requested,
        "candidates": [candidate.as_dict() for candidate in result.candidates],
        "front": [candidate.as_dict() for candidate in result.front],
    }
    if include_cache:
        document["cache"] = cache_info_to_dict(result.cache)
    return document


def tune_result_to_json(result: "TuneResult", *, indent: int = 2) -> str:
    """Serialise a tuning run to a JSON document (``repro tune --json``)."""
    return json.dumps(tune_result_to_dict(result), indent=indent, sort_keys=True)


def search_state_to_dict(state: "SearchState") -> Dict[str, Any]:
    """Flatten a tuning checkpoint into JSON-serialisable primitives.

    The same schema-versioned document ``repro tune --checkpoint``
    writes (kind ``search_state``); see
    :class:`~repro.dse.orchestrator.SearchState`.
    """
    return state.to_spec().to_dict()


def search_state_to_json(state: "SearchState") -> str:
    """Serialise a tuning checkpoint exactly as written to disk."""
    return state.to_json()


def fleet_report_to_dict(
    report: "FleetReport", *, cache: "CacheInfo | None" = None
) -> Dict[str, Any]:
    """Flatten a :class:`~repro.fleet.FleetReport` into primitives.

    The cache-free form (``cache=None``) is what study artifacts use;
    fleet TTFT/TPOT/SLO/utilisation summaries, per-replica statistics,
    the windowed timeline, and the autoscaling event log all live under
    the ``metrics`` key.  Fault-injected runs (``--faults``/``--retry``)
    additionally carry a ``metrics.resilience`` block (goodput, retry
    and shed counts, unavailability windows, healthy/degraded SLO
    split — see ``docs/RESILIENCE.md``) and a ``shed`` column per SLO
    class; fault-free documents are byte-identical to earlier releases.
    """
    return report.to_dict(cache=cache)


def fleet_report_to_json(
    report: "FleetReport", *, indent: int = 2, cache: "CacheInfo | None" = None
) -> str:
    """Serialise a fleet run to a JSON document (``repro fleet --json``)."""
    return json.dumps(
        fleet_report_to_dict(report, cache=cache), indent=indent, sort_keys=True
    )


def comparison_to_dict(comparison: "Comparison") -> Dict[str, Any]:
    """Flatten a strategy ablation into primitives."""
    return {
        "workload": comparison.workload.name,
        "num_chips": comparison.num_chips,
        "strategies": comparison.strategies,
        "results": [
            eval_result_to_dict(result) for result in comparison.results
        ],
    }


def comparison_to_json(comparison: "Comparison", *, indent: int = 2) -> str:
    """Serialise a strategy ablation to a JSON document."""
    return json.dumps(comparison_to_dict(comparison), indent=indent, sort_keys=True)


def sweep_to_csv(sweep: SweepResult) -> str:
    """Serialise a sweep to CSV (one row per chip count)."""
    records = sweep_to_records(sweep)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=SWEEP_CSV_COLUMNS, extrasaction="ignore")
    writer.writeheader()
    for record in records:
        writer.writerow(record)
    return buffer.getvalue()


def write_sweep(sweep: SweepResult, path: str) -> None:
    """Write a sweep to ``path``; the format follows the file extension.

    ``.json`` produces the JSON document, ``.csv`` the CSV table.

    Raises:
        AnalysisError: For unsupported extensions.
    """
    lowered = path.lower()
    if lowered.endswith(".json"):
        payload = sweep_to_json(sweep)
    elif lowered.endswith(".csv"):
        payload = sweep_to_csv(sweep)
    else:
        raise AnalysisError(
            f"unsupported export extension for {path!r}; use .json or .csv"
        )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
