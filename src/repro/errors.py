"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A model, hardware, or partitioning configuration is invalid."""


class PartitioningError(ReproError):
    """A requested partitioning cannot be constructed.

    Raised, for example, when more chips are requested than attention heads
    are available to distribute, or when a partitioner is asked to place a
    workload it does not support.
    """


class SchedulingError(ReproError):
    """A per-chip schedule could not be built from a partition."""


class SimulationError(ReproError):
    """The event-driven simulator reached an inconsistent state.

    Typical causes are deadlocks (a chip waits on a message that is never
    sent) or schedules that reference unknown chips or channels.
    """


class MemoryCapacityError(ReproError):
    """A tensor or working set does not fit in the targeted memory level."""


class AnalysisError(ReproError):
    """An analysis or experiment was asked to combine incompatible results."""


class SearchInterrupted(ReproError):
    """A tuning run stopped before exhausting its evaluation budget.

    Raised by the DSE orchestrator when an interrupt is requested (the
    ``REPRO_TUNE_INTERRUPT_AFTER`` test hook).  When the run carried a
    checkpoint path, the state written at the last checkpoint boundary
    survives on disk and ``repro tune --resume`` (or a Study-stage
    re-run) continues the search without re-paying evaluated points.
    """


class ArchitectureError(ConfigurationError):
    """A declarative architecture description cannot be lowered to a model.

    Raised by :mod:`repro.arch` when an :class:`~repro.arch.ArchSpec`
    violates a structural constraint (a KV-head count that does not
    divide the query heads, a top-k exceeding the expert count,
    heterogeneous block groups in one stack, ...).  Design-space
    searchers treat it as an *infeasible point* rather than a failed
    search, so architecture axes can be explored safely.
    """


class SpecError(ConfigurationError):
    """A declarative spec document (:mod:`repro.spec`) is invalid.

    The message always starts with the JSON path of the offending field
    (``stages[2].spec.workload.seq_len: ...``) so that a user editing a
    study file can find the problem without reading a traceback.
    """


class UnknownStrategyError(ConfigurationError):
    """A partitioning strategy name is not present in the registry.

    The message lists the registered names so that callers (and CLI users)
    can see what is available without importing the registry module.
    """


class UnknownPolicyError(ConfigurationError):
    """A scheduling policy name is not present in the serving registry.

    The message lists the registered names so that callers (and CLI users)
    can see what is available without importing the registry module.
    """


class UnknownRouterError(ConfigurationError):
    """A fleet routing-policy name is not present in the router registry.

    The message lists the registered names so that callers (and CLI users)
    can see what is available without importing the registry module.
    """


class UnknownSearcherError(ConfigurationError):
    """A search-algorithm name is not present in the DSE registry.

    The message lists the registered names so that callers (and CLI users)
    can see what is available without importing the registry module.
    """


class UnknownObjectiveError(ConfigurationError):
    """An objective name is not present in the DSE objective registry.

    The message lists the registered names so that callers (and CLI users)
    can see what is available without importing the registry module.
    """


class UnknownPlatformPresetError(ConfigurationError):
    """A hardware-preset name is not present in the platform registry.

    The message lists the registered names so that callers (and CLI users)
    can see what is available without importing the registry module.
    """
