"""Persistent cross-process evaluation cache.

The in-memory memoisation of :class:`~repro.api.Session` dies with the
process, so every new CLI invocation, sweep worker, or notebook kernel
pays the full simulation price again.  :class:`EvalCache` is the on-disk
layer behind it: a content-hash-keyed sqlite store of pickled
:class:`~repro.api.EvalResult` objects that any number of processes can
read and write concurrently (sqlite WAL mode), shared by ``repro``'s
CLI, ``sweep --parallel`` workers, the serving
:class:`~repro.serving.costs.RequestCostModel`, and the DSE searchers —
all of which evaluate through a session.

Location (first match wins):

* an explicit ``Session(cache_dir=...)`` / ``--cache-dir`` path,
* the ``REPRO_CACHE_DIR`` environment variable,
* ``$XDG_CACHE_HOME/repro`` or ``~/.cache/repro``.

``REPRO_NO_CACHE=1`` (or ``--no-cache``) disables the default store.

Keys are salted with a schema version and the package version; using a
store written by a different schema or code version drops its entries,
so stale results never leak across releases.  The salt distinguishes
*releases*, not working trees: after editing cost-model code without
bumping ``repro.__version__``, run ``repro cache clear`` (or export
``REPRO_NO_CACHE=1``) so old results cannot mask the change.  Corrupt
stores are rebuilt (and unreadable entries treated as misses) rather
than raised: the cache is an accelerator, never a correctness
dependency.

Sessions configured with a custom ``energy`` factory never attach a
store: arbitrary callables content-hash by qualified name only, which
is sound within one process (the factory is fixed per session) but
would collide across processes.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "EvalCache",
    "default_cache_dir",
    "open_default_cache",
    "persistent_cache_disabled",
]

#: Bumped whenever the stored value layout changes incompatibly.
CACHE_SCHEMA_VERSION = 1

#: File name of the store inside the cache directory.
_DB_NAME = "evals.sqlite"

#: Environment variable overriding the default cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable disabling the default persistent cache.
ENV_NO_CACHE = "REPRO_NO_CACHE"

_TRUTHY = {"1", "true", "yes", "on"}


def default_cache_dir() -> Path:
    """The default on-disk cache location (honouring the environment)."""
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def persistent_cache_disabled() -> bool:
    """Whether ``REPRO_NO_CACHE`` turns the default store off."""
    return os.environ.get(ENV_NO_CACHE, "").strip().lower() in _TRUTHY


def open_default_cache() -> Optional["EvalCache"]:
    """The default store, or ``None`` when disabled by the environment."""
    if persistent_cache_disabled():
        return None
    return EvalCache(default_cache_dir())


@dataclass(frozen=True)
class CacheStats:
    """Summary of one on-disk store (``repro cache stats``)."""

    path: str
    entries: int
    size_bytes: int
    schema_version: int
    code_version: str


def _code_version() -> str:
    from .. import __version__

    return __version__


class EvalCache:
    """A content-hash-keyed persistent store of evaluation results.

    Args:
        directory: Directory holding the sqlite file (created on demand).

    The store is deliberately forgiving: every sqlite or unpickling
    failure degrades to a cache miss (rebuilding the store when it is
    corrupt), so a broken cache file can never break an evaluation.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory).expanduser()
        self.path = self.directory / _DB_NAME
        self._connection: Optional[sqlite3.Connection] = None
        self._broken = False
        #: Writes dropped after the bounded retry (store locked or
        #: unusable); surfaced as ``dropped_writes`` in
        #: :meth:`repro.api.Session.cache_info`.
        self.dropped_writes = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        """Open, configure, and version-check the store (may raise)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(
            str(self.path), timeout=10.0, isolation_level=None
        )
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        # Wait out writer contention inside sqlite itself before an
        # OperationalError surfaces (WAL readers never block, but two
        # writers can still collide on the exclusive commit lock).
        connection.execute("PRAGMA busy_timeout=5000")
        self._initialise(connection)
        return connection

    def _connect(self) -> Optional[sqlite3.Connection]:
        if self._connection is not None or self._broken:
            return self._connection
        try:
            self._connection = self._open()
        except sqlite3.OperationalError:
            # Transient (locked by another process, briefly unopenable):
            # behave like a miss now and retry on the next call.  Never
            # rebuild here — deleting a merely-busy store would wipe the
            # cache out from under its other users.
            self._connection = None
        except (sqlite3.Error, OSError):
            self._connection = self._rebuild()
        return self._connection

    def _initialise(self, connection: sqlite3.Connection) -> None:
        connection.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        connection.execute(
            "CREATE TABLE IF NOT EXISTS evals ("
            "key TEXT PRIMARY KEY, value BLOB NOT NULL)"
        )
        rows = dict(
            connection.execute("SELECT key, value FROM meta").fetchall()
        )
        expected = {
            "schema_version": str(CACHE_SCHEMA_VERSION),
            "code_version": _code_version(),
        }
        if rows != expected:
            # Schema or code version changed: every stored result is
            # suspect, so the store is emptied rather than consulted.
            # INSERT OR REPLACE keeps concurrent first-time
            # initialisation idempotent (two processes racing here must
            # not conjure an IntegrityError out of a healthy store).
            connection.execute("DELETE FROM evals")
            connection.execute("DELETE FROM meta")
            connection.executemany(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                sorted(expected.items()),
            )

    def _rebuild(self) -> Optional[sqlite3.Connection]:
        """Last resort for a corrupt store: delete the file and retry once."""
        try:
            if self._connection is not None:
                self._connection.close()
        except sqlite3.Error:
            pass
        self._connection = None
        try:
            for suffix in ("", "-wal", "-shm"):
                stale = Path(str(self.path) + suffix)
                if stale.exists():
                    stale.unlink()
            return self._open()
        except (sqlite3.Error, OSError):
            # The location is unusable (read-only filesystem, ...): mark
            # the store broken and behave like a permanently empty cache.
            self._broken = True
            return None

    def close(self) -> None:
        """Close the underlying sqlite connection (reopened on demand)."""
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            self._connection = None

    # ------------------------------------------------------------------
    # Store operations
    # ------------------------------------------------------------------
    def get(self, key: str):
        """The stored result for ``key``, or ``None`` on any kind of miss."""
        connection = self._connect()
        if connection is None:
            return None
        try:
            row = connection.execute(
                "SELECT value FROM evals WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.OperationalError:
            return None  # transient (locked): miss now, retry later
        except sqlite3.Error:
            self._connection = self._rebuild()
            return None
        if row is None:
            return None
        try:
            return pickle.loads(row[0])
        except Exception:
            # The entry does not unpickle (truncated write, renamed class,
            # ...): drop it and treat the lookup as a miss.
            try:
                connection.execute("DELETE FROM evals WHERE key = ?", (key,))
            except sqlite3.OperationalError:
                pass
            except sqlite3.Error:
                self._connection = self._rebuild()
            return None

    def put(self, key: str, result) -> None:
        """Store ``result`` under ``key`` (best effort, never raises).

        A locked store gets one bounded retry (after a short sleep, on
        top of sqlite's own ``busy_timeout``); a write dropped after
        that is counted in :attr:`dropped_writes` so sustained
        contention is observable instead of silent.
        """
        connection = self._connect()
        if connection is None:
            self.dropped_writes += 1
            return
        try:
            payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return  # unpicklable result (custom models): skip persisting
        for attempt in range(2):
            try:
                connection.execute(
                    "INSERT OR REPLACE INTO evals (key, value) VALUES (?, ?)",
                    (key, payload),
                )
                return
            except sqlite3.OperationalError:
                if attempt == 0:
                    time.sleep(0.05)  # one bounded retry, then give up
            except sqlite3.Error:
                self._connection = self._rebuild()
                break
        self.dropped_writes += 1

    def clear(self) -> int:
        """Drop every stored entry; returns how many were removed.

        The count is taken before connecting, so entries a version
        mismatch would wipe on connect are still reported as removed.
        """
        count = self.stats().entries
        connection = self._connect()
        if connection is None:
            return 0
        try:
            connection.execute("DELETE FROM evals")
            return count
        except sqlite3.OperationalError:
            return 0
        except sqlite3.Error:
            self._connection = self._rebuild()
            return 0

    def __len__(self) -> int:
        connection = self._connect()
        if connection is None:
            return 0
        try:
            (count,) = connection.execute(
                "SELECT COUNT(*) FROM evals"
            ).fetchone()
            return int(count)
        except sqlite3.OperationalError:
            return 0
        except sqlite3.Error:
            self._connection = self._rebuild()
            return 0

    def stats(self) -> CacheStats:
        """Entry count, file size, and version stamps of the store.

        Read-only: the store is inspected as-is (reporting the versions
        it was *written* with), so looking at a store from another
        release never empties it — only the mutating operations
        (``get``/``put``/``clear``/``len``) apply the version-mismatch
        invalidation.
        """
        entries = 0
        schema = CACHE_SCHEMA_VERSION
        code = _code_version()
        size = 0
        if self.path.exists():
            try:
                size = self.path.stat().st_size
            except OSError:
                size = 0
            try:
                connection = sqlite3.connect(
                    f"file:{self.path}?mode=ro", uri=True, timeout=10.0
                )
                try:
                    meta = dict(
                        connection.execute(
                            "SELECT key, value FROM meta"
                        ).fetchall()
                    )
                    schema = int(meta.get("schema_version", schema))
                    code = meta.get("code_version", code)
                    (entries,) = connection.execute(
                        "SELECT COUNT(*) FROM evals"
                    ).fetchone()
                finally:
                    connection.close()
            except (sqlite3.Error, ValueError):
                pass  # unreadable or corrupt: report what is knowable
        return CacheStats(
            path=str(self.path),
            entries=int(entries),
            size_bytes=size,
            schema_version=schema,
            code_version=code,
        )
