"""The unified evaluation result shared by every partitioning strategy.

:class:`EvalResult` is the one schema every registered strategy produces,
whether the strategy runs the full event-driven simulator (the paper's
scheme) or an analytical cost model (the Table I baselines).  It absorbs
both of the seed's result types:

* :class:`repro.analysis.evaluate.BlockReport` — the simulator-backed
  report of the paper's tensor-parallel scheme (runtime breakdown, traces,
  memory plans), carried in the optional :attr:`EvalResult.report` field;
* :class:`repro.baselines.types.BaselineResult` — the comparison-table
  summary of the ablation baselines, recoverable exactly through
  :meth:`EvalResult.to_baseline_result`.

All strategies therefore expose the same runtime, energy, traffic, and
placement fields, which is what makes :meth:`repro.api.Session.compare`
and cross-strategy sweeps possible without per-strategy special cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..analysis.evaluate import BlockReport
from ..baselines.types import BaselineResult
from ..core.placement import WeightResidency
from ..core.schedule import RuntimeCategory
from ..errors import AnalysisError
from ..graph.workload import Workload


@dataclass(frozen=True)
class EvalResult:
    """Evaluation of one workload under one partitioning strategy.

    Attributes:
        strategy: Registry name of the strategy (e.g. ``"paper"``).
        approach: Human-readable approach label (the Table I row name).
        workload: The evaluated workload.
        num_chips: Number of chips of the evaluated platform.
        frequency_hz: Cluster clock frequency of the platform.
        block_cycles: Runtime of one Transformer block in cycles.
        block_energy_joules: Energy of one Transformer block in joules.
        l3_bytes_per_block: Off-chip (L3) traffic per block, over all chips.
        weight_bytes_per_chip: Block weight bytes each chip must store
            (the maximum over chips for uneven partitions).
        weights_replicated: Whether weights are duplicated across chips.
        synchronisations_per_block: Inter-chip synchronisation points per
            block (0 on a single chip).
        uses_pipelining: Whether the strategy relies on pipeline
            parallelism (and therefore on batching for utilisation).
        notes: Free-form remarks shown in comparison tables.
        c2c_bytes_per_block: Chip-to-chip traffic per block, when the
            strategy measures it (``None`` for analytical baselines that
            fold communication into the cycle count).
        report: The full simulator-backed :class:`BlockReport` when the
            strategy ran the multi-chip simulator, else ``None``.
    """

    strategy: str
    approach: str
    workload: Workload
    num_chips: int
    frequency_hz: float
    block_cycles: float
    block_energy_joules: float
    l3_bytes_per_block: float
    weight_bytes_per_chip: int
    weights_replicated: bool
    synchronisations_per_block: int
    uses_pipelining: bool = False
    notes: str = ""
    c2c_bytes_per_block: Optional[float] = None
    report: Optional[BlockReport] = None

    def __post_init__(self) -> None:
        if not self.strategy:
            raise AnalysisError("strategy name must not be empty")
        if self.num_chips <= 0:
            raise AnalysisError("num_chips must be positive")
        if self.frequency_hz <= 0:
            raise AnalysisError("frequency_hz must be positive")
        if self.block_cycles <= 0:
            raise AnalysisError("block_cycles must be positive")
        if self.block_energy_joules < 0 or self.l3_bytes_per_block < 0:
            raise AnalysisError("energy and traffic cannot be negative")
        if self.weight_bytes_per_chip < 0:
            raise AnalysisError("weight bytes cannot be negative")

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------
    @property
    def block_runtime_seconds(self) -> float:
        """Runtime of one Transformer block in seconds."""
        if self.report is not None:
            return self.report.block_runtime_seconds
        return self.block_cycles / self.frequency_hz

    @property
    def inference_cycles(self) -> float:
        """Estimated runtime of a full forward pass (all blocks) in cycles."""
        return self.block_cycles * self.workload.config.num_layers

    @property
    def inference_runtime_seconds(self) -> float:
        """Estimated runtime of a full forward pass in seconds."""
        return self.inference_cycles / self.frequency_hz

    def runtime_breakdown(self) -> Optional[Dict[RuntimeCategory, float]]:
        """Average per-chip cycles by category, when the simulator ran."""
        if self.report is None:
            return None
        return self.report.runtime_breakdown()

    def speedup_over(self, other: Union["EvalResult", BaselineResult]) -> float:
        """Runtime speedup of this result over another."""
        return other.block_cycles / self.block_cycles

    # ------------------------------------------------------------------
    # Energy
    # ------------------------------------------------------------------
    @property
    def inference_energy_joules(self) -> float:
        """Estimated energy of a full forward pass in joules."""
        return self.block_energy_joules * self.workload.config.num_layers

    @property
    def energy_delay_product(self) -> float:
        """Per-block energy-delay product in joule-seconds."""
        if self.report is not None:
            return self.report.energy_delay_product
        return self.block_energy_joules * self.block_runtime_seconds

    @property
    def edp_joule_cycles(self) -> float:
        """EDP proxy in joule-cycles (frequency-independent comparison)."""
        return self.block_energy_joules * self.block_cycles

    # ------------------------------------------------------------------
    # Memory placement
    # ------------------------------------------------------------------
    def residencies(self) -> Optional[Dict[int, WeightResidency]]:
        """Per-chip weight-residency regimes, when the simulator ran."""
        if self.report is None:
            return None
        return self.report.residencies()

    @property
    def runs_from_on_chip_memory(self) -> Optional[bool]:
        """Whether every chip runs with on-chip weights (``None`` if unknown)."""
        if self.report is None:
            return None
        return self.report.runs_from_on_chip_memory

    # ------------------------------------------------------------------
    # Presentation and conversion
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"[{self.strategy}] {self.workload.name} on {self.num_chips} "
            f"chip(s): {self.block_cycles:,.0f} cycles/block, "
            f"{self.block_energy_joules * 1e3:.3f} mJ/block"
        )

    def to_baseline_result(self) -> BaselineResult:
        """Project this result onto the seed's comparison-table schema."""
        return BaselineResult(
            approach=self.approach,
            num_chips=self.num_chips,
            block_cycles=self.block_cycles,
            block_energy_joules=self.block_energy_joules,
            l3_bytes_per_block=self.l3_bytes_per_block,
            weight_bytes_per_chip=self.weight_bytes_per_chip,
            weights_replicated=self.weights_replicated,
            synchronisations_per_block=self.synchronisations_per_block,
            uses_pipelining=self.uses_pipelining,
            notes=self.notes,
        )

    @classmethod
    def from_block_report(
        cls,
        report: BlockReport,
        *,
        strategy: str,
        approach: str,
        weights_replicated: bool = False,
        synchronisations_per_block: Optional[int] = None,
        uses_pipelining: bool = False,
        notes: str = "",
    ) -> "EvalResult":
        """Wrap a simulator-backed :class:`BlockReport` as an :class:`EvalResult`."""
        if synchronisations_per_block is None:
            synchronisations_per_block = 0 if report.num_chips == 1 else 2
        weight_bytes_per_chip = max(
            plan.block_weight_bytes
            for plan in report.program.memory_plans.values()
        )
        return cls(
            strategy=strategy,
            approach=approach,
            workload=report.workload,
            num_chips=report.num_chips,
            frequency_hz=report.platform.frequency_hz,
            block_cycles=report.block_cycles,
            block_energy_joules=report.block_energy_joules,
            l3_bytes_per_block=report.total_l3_bytes,
            weight_bytes_per_chip=weight_bytes_per_chip,
            weights_replicated=weights_replicated,
            synchronisations_per_block=synchronisations_per_block,
            uses_pipelining=uses_pipelining,
            notes=notes,
            c2c_bytes_per_block=report.total_c2c_bytes,
            report=report,
        )

    @classmethod
    def from_baseline_result(
        cls,
        result: BaselineResult,
        *,
        strategy: str,
        workload: Workload,
        frequency_hz: float,
        report: Optional[BlockReport] = None,
    ) -> "EvalResult":
        """Lift a seed :class:`BaselineResult` into the unified schema."""
        return cls(
            strategy=strategy,
            approach=result.approach,
            workload=workload,
            num_chips=result.num_chips,
            frequency_hz=frequency_hz,
            block_cycles=result.block_cycles,
            block_energy_joules=result.block_energy_joules,
            l3_bytes_per_block=result.l3_bytes_per_block,
            weight_bytes_per_chip=result.weight_bytes_per_chip,
            weights_replicated=result.weights_replicated,
            synchronisations_per_block=result.synchronisations_per_block,
            uses_pipelining=result.uses_pipelining,
            notes=result.notes,
            c2c_bytes_per_block=(
                report.total_c2c_bytes if report is not None else None
            ),
            report=report,
        )
