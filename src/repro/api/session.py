"""The unified evaluation session.

:class:`Session` is the library's front door: one object that evaluates
any registered partitioning strategy on any workload/platform combination,
memoises repeated evaluations by content hash (optionally persisting them
on disk for other processes — see :mod:`repro.api.cache`), and fans
sweeps out over a process pool when asked to::

    from repro.api import Session

    session = Session()                      # Siracusa + MIPI preset
    ours = session.run(workload, strategy="paper", chips=8)
    sweep = session.sweep(workload, chips=(1, 2, 4, 8))
    table = session.compare(workload, chips=8)

The seed's ``evaluate_block``/``chip_count_sweep``/``compare_approaches``
entry points survive as thin shims over this class, so existing callers
and the figure harnesses keep working unchanged.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from functools import cached_property
from pathlib import Path
from typing import (
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.placement import PrefetchAccounting
from ..errors import AnalysisError, ReproError
from ..graph.transformer import TransformerConfig
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from ..hw.presets import siracusa_platform
from ..kernels.library import KernelLibrary
from .cache import EvalCache, open_default_cache
from .registry import EnergyModelFactory, EvalOptions, get_strategy
from .result import EvalResult
from .strategies import BASELINE_STRATEGIES, PAPER_STRATEGY

__all__ = [
    "CacheInfo",
    "Comparison",
    "EvalSweep",
    "Session",
    "default_session",
    "set_default_session",
]


# ----------------------------------------------------------------------
# Content hashing
# ----------------------------------------------------------------------
#: Frozen input types whose canonical form is memoised on the instance.
#: Workloads, platforms, and model configurations are hashed on every
#: ``Session.run`` — serving simulations and design-space searches hash
#: the same objects thousands of times, so recomputing the walk each
#: time leaves the profile entirely.
_MEMOISED_CANONICAL_TYPES = (
    Workload,
    MultiChipPlatform,
    TransformerConfig,
    EvalOptions,
)

_CANONICAL_MEMO_ATTR = "_repro_canonical_memo"


def _canonical(obj) -> str:
    """Deterministic textual form of an evaluation input for hashing.

    Walks dataclasses field by field (skipping derived ``init=False``
    fields), so two platforms or workloads with equal configuration hash
    equally regardless of object identity.  The canonical form of frozen
    workloads/platforms/configs is memoised on the instance, since those
    are immutable and hashed repeatedly.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return repr(obj)
    if isinstance(obj, Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    if is_dataclass(obj) and not isinstance(obj, type):
        memoise = isinstance(obj, _MEMOISED_CANONICAL_TYPES)
        if memoise:
            cached = obj.__dict__.get(_CANONICAL_MEMO_ATTR)
            if cached is not None:
                return cached
        parts = ",".join(
            f"{field.name}={_canonical(getattr(obj, field.name))}"
            for field in fields(obj)
            if field.init
        )
        text = f"{type(obj).__qualname__}({parts})"
        if memoise:
            try:
                object.__setattr__(obj, _CANONICAL_MEMO_ATTR, text)
            except (AttributeError, TypeError):
                pass  # __slots__ or exotic subclass: skip the memo
        return text
    if isinstance(obj, (tuple, list)):
        return "[" + ",".join(_canonical(item) for item in obj) + "]"
    if isinstance(obj, dict):
        items = sorted((repr(key), _canonical(value)) for key, value in obj.items())
        return "{" + ",".join(f"{key}:{value}" for key, value in items) + "}"
    if callable(obj):
        module = getattr(obj, "__module__", "?")
        qualname = getattr(obj, "__qualname__", repr(obj))
        return f"<callable {module}.{qualname}>"
    return repr(obj)


def content_hash(*parts) -> str:
    """SHA-256 content hash of a tuple of evaluation inputs."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(_canonical(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class CacheInfo(NamedTuple):
    """Memoisation statistics of one :class:`Session`.

    Attributes:
        hits: In-memory content-hash cache hits.
        misses: Evaluations that actually ran a strategy's engine
            (including points evaluated by ``sweep --parallel`` workers).
        size: Entries in the in-memory cache.
        disk_hits: Evaluations answered by the persistent on-disk cache
            (:mod:`repro.api.cache`) instead of running the engine.
        dropped_writes: Persistent-cache writes dropped after the
            bounded retry (store locked or unusable) — nonzero means
            results were recomputed later instead of read back.
    """

    hits: int
    misses: int
    size: int
    disk_hits: int = 0
    dropped_writes: int = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-serialisable form (the ``cache`` block of CLI documents).

        ``dropped_writes`` only appears once a persistent-store write
        has actually been dropped (a rare contention signal), keeping
        the cache block of healthy runs identical to earlier releases.
        """
        record = dict(self._asdict())
        if not record["dropped_writes"]:
            del record["dropped_writes"]
        return record


# ----------------------------------------------------------------------
# Aggregate results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvalSweep:
    """Evaluations of one workload/strategy across several chip counts.

    Attributes:
        workload: The swept workload.
        strategy: Registry name of the evaluated strategy.
        results: One :class:`EvalResult` per chip count, in sweep order.
    """

    workload: Workload
    strategy: str
    results: Tuple[EvalResult, ...]

    def __post_init__(self) -> None:
        if not self.results:
            raise AnalysisError("a sweep needs at least one chip count")

    @cached_property
    def _by_chip_count(self) -> Dict[int, EvalResult]:
        return {result.num_chips: result for result in self.results}

    @property
    def chip_counts(self) -> List[int]:
        """Chip counts of the sweep, in order."""
        return [result.num_chips for result in self.results]

    @property
    def baseline(self) -> EvalResult:
        """The first (reference) result, normally the single-chip system."""
        return self.results[0]

    def result_for(self, num_chips: int) -> EvalResult:
        """The result of one particular chip count."""
        try:
            return self._by_chip_count[num_chips]
        except KeyError:
            raise AnalysisError(
                f"sweep has no entry for {num_chips} chips"
            ) from None

    def speedups(self) -> Dict[int, float]:
        """Chip count -> speedup relative to the sweep's first entry."""
        return {
            result.num_chips: result.speedup_over(self.baseline)
            for result in self.results
        }

    def cycles(self) -> Dict[int, float]:
        """Chip count -> per-block runtime in cycles."""
        return {result.num_chips: result.block_cycles for result in self.results}

    def energies_joules(self) -> Dict[int, float]:
        """Chip count -> per-block energy in joules."""
        return {
            result.num_chips: result.block_energy_joules
            for result in self.results
        }

    def to_sweep_result(self):
        """Convert to the seed's :class:`~repro.analysis.sweep.SweepResult`.

        Only possible when every point carries a simulator-backed
        :class:`~repro.analysis.evaluate.BlockReport` (i.e. the ``paper``
        strategy); the figure harnesses rely on this bridge.
        """
        from ..analysis.sweep import SweepResult

        if any(result.report is None for result in self.results):
            raise AnalysisError(
                f"strategy {self.strategy!r} does not produce BlockReports; "
                "only report-backed sweeps convert to SweepResult"
            )
        return SweepResult(
            workload=self.workload,
            reports=tuple(result.report for result in self.results),
        )


@dataclass(frozen=True)
class Comparison:
    """Strategy ablation of one workload on one platform.

    Attributes:
        workload: The compared workload.
        num_chips: Chip count of the evaluated platform.
        results: One :class:`EvalResult` per strategy, in request order.
    """

    workload: Workload
    num_chips: int
    results: Tuple[EvalResult, ...]

    def __post_init__(self) -> None:
        if not self.results:
            raise AnalysisError("a comparison needs at least one strategy")

    @property
    def strategies(self) -> List[str]:
        """Registry names of the compared strategies, in order."""
        return [result.strategy for result in self.results]

    def result_for(self, strategy: str) -> EvalResult:
        """The result of one particular strategy."""
        for result in self.results:
            if result.strategy == strategy:
                return result
        raise AnalysisError(f"comparison has no entry for strategy {strategy!r}")

    def best(self) -> EvalResult:
        """The fastest strategy (minimum block cycles)."""
        return min(self.results, key=lambda result: result.block_cycles)

    def speedups_over(self, reference: str) -> Dict[str, float]:
        """Strategy name -> speedup over the named reference strategy."""
        base = self.result_for(reference)
        return {
            result.strategy: result.speedup_over(base) for result in self.results
        }

    def render(self) -> str:
        """Plain-text Table-I-style comparison of the measured columns."""
        from ..baselines.compare import render_comparison

        return render_comparison(list(self.results))


# ----------------------------------------------------------------------
# Process-pool fan-out
# ----------------------------------------------------------------------
def _strategy_is_persistable(impl) -> bool:
    """Whether a strategy's results may enter the cross-process store.

    The store's version salt covers this package's code only, so results
    of strategies registered from outside ``repro`` stay in memory — an
    edited user strategy must never be answered with its old results.
    """
    module = type(impl).__module__ or ""
    return module == "repro" or module.startswith("repro.")


#: Per-worker-process stores, keyed by cache directory, so a worker
#: evaluating several sweep points opens one sqlite connection, not one
#: per point.
_WORKER_STORES: Dict[str, EvalCache] = {}


def _worker_store(cache_dir: str) -> EvalCache:
    store = _WORKER_STORES.get(cache_dir)
    if store is None:
        store = _WORKER_STORES[cache_dir] = EvalCache(cache_dir)
    return store


def _evaluate_point(payload) -> Tuple[bool, EvalResult]:
    """Module-level worker so sweeps can fan out over a process pool.

    Workers share the parent's persistent cache: each one re-checks the
    on-disk store before simulating (another worker or process may have
    produced the point meanwhile) and writes its result back, so a
    repeated parallel sweep performs zero engine runs.  Returns
    ``(ran_engine, result)`` so the parent's cache statistics stay
    truthful under concurrent sweeps.
    """
    strategy_name, workload, platform, options, key, cache_dir = payload
    store = _worker_store(cache_dir) if cache_dir is not None else None
    if store is not None:
        cached = store.get(key)
        if cached is not None:
            return False, cached
    result = get_strategy(strategy_name).evaluate(workload, platform, options)
    if store is not None:
        store.put(key, result)
    return True, result


def _evaluate_chunk(payloads):
    """Evaluate a batch of points in one worker task.

    Chunking amortises the per-task submit/pickle round-trip over many
    points, which is what lets :meth:`Session.prefill` approach ideal
    speedup when individual evaluations are only milliseconds (the DSE
    orchestrator's regime).  Failures are per-point, not per-chunk: each
    entry of the returned list is ``(key, status, value)`` where status
    is ``"ok"`` (value is ``(ran_engine, result)``), ``"infeasible"``
    (a :class:`ReproError`; the serial path re-raises it cheaply and
    assigns it meaning), or ``"error"`` (value is the repr of an
    unexpected exception).
    """
    out = []
    for payload in payloads:
        key = payload[4]
        try:
            out.append((key, "ok", _evaluate_point(payload)))
        except ReproError:
            out.append((key, "infeasible", None))
        except Exception as error:  # pragma: no cover - defensive
            out.append((key, "error", repr(error)))
    return out


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------
class Session:
    """Evaluates registered partitioning strategies with memoisation.

    Args:
        platform: Optional default platform; ``chips=`` arguments derive
            platforms from it via
            :meth:`~repro.hw.platform.MultiChipPlatform.with_num_chips`.
        platform_factory: Builds a platform from a chip count when no
            default platform is set (defaults to the paper's Siracusa +
            MIPI preset).
        kernels: Optional custom kernel cost models.
        energy: Optional energy-model factory applied to each evaluated
            platform (defaults to the paper's analytical model).
        prefetch_accounting: Prefetch runtime-accounting policy.
        memoize: Keep a content-hash cache of evaluations (default on).
            ``memoize=False`` disables the persistent layer too.
        cache_dir: Directory of a persistent cross-process evaluation
            cache (:mod:`repro.api.cache`); results are stored on disk
            behind the in-memory memoisation and shared with every other
            process using the same directory.  Incompatible with
            ``memoize=False`` and with a custom ``energy`` factory
            (arbitrary callables cannot be content-hashed soundly across
            processes) — both raise instead of silently not persisting.
            Results of strategies registered outside the ``repro``
            package are never persisted (their code is not covered by
            the store's version salt).
        persistent: ``True`` opens the *default* persistent store
            (``REPRO_CACHE_DIR`` or ``~/.cache/repro``, unless
            ``REPRO_NO_CACHE`` is set); ``False`` forces it off.  The
            default ``None`` enables persistence only when ``cache_dir``
            is given, keeping plain library sessions in-memory-only.
    """

    def __init__(
        self,
        platform: Optional[MultiChipPlatform] = None,
        *,
        platform_factory=siracusa_platform,
        kernels: Optional[KernelLibrary] = None,
        energy: Optional[EnergyModelFactory] = None,
        prefetch_accounting: PrefetchAccounting = PrefetchAccounting.HIDDEN,
        memoize: bool = True,
        cache_dir: Optional[Union[str, Path]] = None,
        persistent: Optional[bool] = None,
    ) -> None:
        self.platform = platform
        self.platform_factory = platform_factory
        self.kernels = kernels
        self.energy = energy
        self.prefetch_accounting = prefetch_accounting
        self.memoize = memoize
        self._store: Optional[EvalCache] = None
        # Custom energy factories are arbitrary callables, which content-
        # hash by qualified name only — good enough within one process
        # (the factory is fixed per session) but unsound across processes
        # (two different lambdas share a qualname), so such sessions stay
        # off the shared on-disk store.  Custom kernel libraries are
        # frozen dataclasses and hash by value, so they are safe.
        if not memoize or energy is not None:
            if cache_dir is not None or persistent:
                requested = (
                    f"cache_dir={str(cache_dir)!r}"
                    if cache_dir is not None
                    else "persistent=True"
                )
                reason = (
                    "memoize=False disables all caching"
                    if not memoize
                    else "a custom energy factory cannot be content-hashed "
                    "soundly across processes"
                )
                raise AnalysisError(
                    f"{requested} cannot be honoured: {reason}"
                )
        elif persistent is not False:
            if cache_dir is not None:
                self._store = EvalCache(cache_dir)
            elif persistent:
                self._store = open_default_cache()
        self._cache: Dict[str, EvalResult] = {}
        self._default_options: Optional[EvalOptions] = None
        self._default_options_config: Optional[tuple] = None
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def options(self, *, record_events: bool = False) -> EvalOptions:
        """The :class:`EvalOptions` this session passes to strategies.

        The common (``record_events=False``) instance is shared while
        the session's configuration is unchanged, so its memoised
        canonical form keeps repeated cache-key hashing cheap; mutating
        ``kernels``/``energy``/``prefetch_accounting`` on a live session
        invalidates it.
        """
        config = (self.kernels, self.energy, self.prefetch_accounting)
        if (
            not record_events
            and self._default_options is not None
            and self._default_options_config == config
        ):
            return self._default_options
        built = EvalOptions(
            kernel_library=self.kernels,
            energy=self.energy,
            prefetch_accounting=self.prefetch_accounting,
            record_events=record_events,
        )
        if not record_events:
            self._default_options = built
            self._default_options_config = config
        return built

    def resolve_platform(
        self,
        chips: Optional[int] = None,
        platform: Optional[MultiChipPlatform] = None,
    ) -> MultiChipPlatform:
        """Resolve the platform for one evaluation.

        Precedence: an explicit ``platform`` argument, then ``chips``
        applied to the session's default platform (or platform factory),
        then the session's default platform.
        """
        if platform is not None:
            return platform
        if chips is not None:
            if chips <= 0:
                raise AnalysisError(f"invalid chip count {chips}")
            if self.platform is not None:
                return self.platform.with_num_chips(chips)
            return self.platform_factory(chips)
        if self.platform is not None:
            return self.platform
        raise AnalysisError(
            "no platform to evaluate on: pass chips=/platform= or construct "
            "the Session with a default platform"
        )

    @property
    def persistent_cache(self) -> Optional[EvalCache]:
        """The on-disk evaluation store, when this session has one."""
        return self._store

    def cache_info(self) -> CacheInfo:
        """Memoisation statistics (hits, misses, entries, disk hits)."""
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            size=len(self._cache),
            disk_hits=self._disk_hits,
            dropped_writes=(
                self._store.dropped_writes if self._store is not None else 0
            ),
        )

    def cache_clear(self) -> None:
        """Drop every in-memory memoised evaluation and reset the statistics.

        The persistent store (if any) is left untouched; clear it with
        ``session.persistent_cache.clear()`` or ``repro cache clear``.
        """
        self._cache.clear()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0

    def _cache_key(
        self,
        strategy: str,
        workload: Workload,
        platform: MultiChipPlatform,
        options: EvalOptions,
    ) -> str:
        canonical_name = get_strategy(strategy).name
        return content_hash(canonical_name, workload, platform, options)

    @staticmethod
    def _as_spec(value, spec_type, *, defaults_only: bool) -> Optional[object]:
        """``value`` as a runnable spec of ``spec_type``, if it is one.

        Each evaluating method accepts either today's imperative
        arguments or one spec object in the leading position; mixing the
        two is rejected so a spec stays the complete description of the
        call.
        """
        from ..spec.specs import SpecBase

        if not isinstance(value, SpecBase):
            return None
        if not isinstance(value, spec_type):
            raise AnalysisError(
                f"expected a {spec_type.__name__} (or imperative arguments), "
                f"got a {type(value).__name__}"
            )
        if not defaults_only:
            raise AnalysisError(
                f"a {spec_type.__name__} is a complete description of the "
                "call; pass either the spec or keyword arguments, not both"
            )
        return value

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def run(
        self,
        workload: Union[Workload, "object"],
        strategy: str = PAPER_STRATEGY,
        *,
        chips: Optional[int] = None,
        platform: Optional[MultiChipPlatform] = None,
        record_events: bool = False,
    ) -> EvalResult:
        """Evaluate one workload under one registered strategy.

        The first argument may also be a :class:`repro.spec.EvalSpec`,
        which fully describes the call (workload, platform preset,
        strategy) and executes through the same memoised path.

        Results are memoised by content hash of (strategy, workload,
        platform, options): repeated calls with equal inputs return the
        cached :class:`EvalResult` object without re-simulating.
        """
        # The isinstance gate keeps spec detection off the hot path:
        # serving and DSE call run() thousands of times with a Workload.
        if not isinstance(workload, Workload):
            from ..spec.specs import EvalSpec

            spec = self._as_spec(
                workload,
                EvalSpec,
                defaults_only=(
                    strategy == PAPER_STRATEGY
                    and chips is None
                    and platform is None
                    and not record_events
                ),
            )
            if spec is not None:
                from ..spec.runner import execute

                return execute(self, spec)
        resolved = self.resolve_platform(chips, platform)
        options = self.options(record_events=record_events)
        impl = get_strategy(strategy)
        if not self.memoize:
            return impl.evaluate(workload, resolved, options)
        key = self._cache_key(strategy, workload, resolved, options)
        if key in self._cache:
            self._hits += 1
            return self._cache[key]
        store = self._store if _strategy_is_persistable(impl) else None
        if store is not None:
            cached = store.get(key)
            if cached is not None:
                self._disk_hits += 1
                self._cache[key] = cached
                return cached
        self._misses += 1
        result = impl.evaluate(workload, resolved, options)
        self._cache[key] = result
        if store is not None:
            store.put(key, result)
        return result

    def sweep(
        self,
        workload: Union[Workload, "object"],
        chips: Sequence[int] = (),
        *,
        strategy: str = PAPER_STRATEGY,
        parallel: Optional[int] = None,
    ) -> EvalSweep:
        """Evaluate ``workload`` across several chip counts.

        The first argument may also be a :class:`repro.spec.SweepSpec`
        (with ``chips`` omitted), which fully describes the sweep.

        Args:
            workload: The workload to sweep (or a sweep spec).
            chips: Chip counts, in presentation order.
            strategy: Any registered strategy name.
            parallel: Optional process-pool width; uncached points are
                evaluated in worker processes when ``parallel > 1``.
                Sessions with custom kernel or energy models stay serial
                (the models may not survive pickling).
        """
        if not isinstance(workload, Workload):
            from ..spec.specs import SweepSpec

            spec = self._as_spec(
                workload,
                SweepSpec,
                defaults_only=(
                    not chips and strategy == PAPER_STRATEGY and parallel is None
                ),
            )
            if spec is not None:
                from ..spec.runner import execute

                return execute(self, spec)
        if not chips:
            raise AnalysisError("chip_counts must not be empty")
        # Validate the chip counts before resolving the strategy so a bad
        # count is reported even when paired with an unknown strategy name.
        for count in chips:
            if count <= 0:
                raise AnalysisError(f"invalid chip count {count}")
        impl = get_strategy(strategy)
        if (
            parallel is not None
            and parallel > 1
            and self.memoize
            and self.kernels is None
            and self.energy is None
        ):
            self._prefill_parallel(workload, chips, impl.name, parallel)
        results = tuple(
            self.run(workload, impl.name, chips=count) for count in chips
        )
        return EvalSweep(workload=workload, strategy=impl.name, results=results)

    def compare(
        self,
        workload: Workload,
        *,
        chips: Optional[int] = None,
        platform: Optional[MultiChipPlatform] = None,
        strategies: Sequence[str] = BASELINE_STRATEGIES,
    ) -> Comparison:
        """Evaluate several strategies on the same workload and platform.

        The first argument may also be a :class:`repro.spec.CompareSpec`,
        which fully describes the ablation.

        The default strategy list reproduces the seed's Table I ablation
        order: single chip, weight-replicated sequence parallelism,
        pipeline parallelism, then the paper's tensor-parallel scheme.
        """
        if not isinstance(workload, Workload):
            from ..spec.specs import CompareSpec

            spec = self._as_spec(
                workload,
                CompareSpec,
                defaults_only=(
                    chips is None
                    and platform is None
                    and tuple(strategies) == tuple(BASELINE_STRATEGIES)
                ),
            )
            if spec is not None:
                from ..spec.runner import execute

                return execute(self, spec)
        if not strategies:
            raise AnalysisError("compare needs at least one strategy")
        resolved = self.resolve_platform(chips, platform)
        results = tuple(
            self.run(workload, name, platform=resolved) for name in strategies
        )
        return Comparison(
            workload=workload,
            num_chips=resolved.num_chips,
            results=results,
        )

    def serve(
        self,
        config,
        trace=None,
        *,
        policy: str = "fifo",
        strategy: str = PAPER_STRATEGY,
        chips: Optional[int] = None,
        platform: Optional[MultiChipPlatform] = None,
        seed: int = 0,
        max_context: int = 1024,
        slo_targets: Optional[Sequence[float]] = None,
    ):
        """Simulate request-level serving of ``config`` under a traffic trace.

        The first argument may also be a :class:`repro.spec.ServingSpec`
        (with ``trace`` omitted), which fully describes the simulation.

        Materialises the trace deterministically from ``seed``, serves it
        with the named scheduling policy on a
        :class:`~repro.serving.simulator.ServingSimulator` whose phase
        costs are this session's memoised block evaluations, and returns
        the aggregated :class:`~repro.serving.metrics.ServingReport`.

        Args:
            config: The served :class:`~repro.graph.transformer.TransformerConfig`.
            trace: Any :class:`~repro.serving.traces.TrafficTrace`.
            policy: Registered scheduling policy name (or instance).
            strategy: Registered partitioning strategy producing the costs.
            chips: Chip count (resolved like :meth:`run`).
            platform: Explicit platform (overrides ``chips``).
            seed: Trace seed; equal seeds give byte-identical reports.
            max_context: Serving window.  The serve fails fast (before
                simulating) if any request of the materialised trace needs
                a longer context; closed-loop follow-ups are additionally
                checked at cost-lookup time.
            slo_targets: TTFT targets of the SLO-attainment curve
                (defaults to the serving package's standard grid).
        """
        if not isinstance(config, TransformerConfig):
            from ..spec.specs import ServingSpec

            spec = self._as_spec(
                config,
                ServingSpec,
                defaults_only=(
                    trace is None
                    and policy == "fifo"
                    and strategy == PAPER_STRATEGY
                    and chips is None
                    and platform is None
                    and seed == 0
                    and max_context == 1024
                    and slo_targets is None
                ),
            )
            if spec is not None:
                from ..spec.runner import execute

                return execute(self, spec)
        if trace is None:
            raise AnalysisError(
                "serve needs a traffic trace (or a ServingSpec as the "
                "single argument)"
            )
        from ..serving.costs import RequestCostModel
        from ..serving.metrics import (
            DEFAULT_SLO_TTFT_TARGETS_S,
            ServingMetrics,
            ServingReport,
        )
        from ..serving.simulator import ServingSimulator

        costs = RequestCostModel(
            self,
            config,
            chips=chips,
            platform=platform,
            strategy=strategy,
            max_context=max_context,
        )
        simulator = ServingSimulator(costs, policy)
        source = trace.build(seed)
        if not source.initial:
            raise AnalysisError(
                "the trace produced no requests (arrival rate x duration "
                "too small?); nothing to serve"
            )
        for request in source.initial:
            # The deepest context a request reaches is its prompt plus all
            # but the last output token (the prefill emits the first).
            required = request.prompt_tokens + request.output_tokens - 1
            if required > max_context:
                raise AnalysisError(
                    f"request {request.request_id} needs context {required} "
                    f"> max_context {max_context}; shorten the trace's "
                    "lengths or raise max_context"
                )
        result = simulator.run(source)
        metrics = ServingMetrics.from_result(
            result,
            slo_targets=(
                slo_targets if slo_targets is not None
                else DEFAULT_SLO_TTFT_TARGETS_S
            ),
        )
        return ServingReport(
            model=config.name,
            num_chips=costs.platform.num_chips,
            strategy=get_strategy(strategy).name,
            policy=result.policy,
            seed=seed,
            result=result,
            metrics=metrics,
        )

    def serve_fleet(
        self,
        config,
        trace=None,
        *,
        platforms: Optional[Sequence] = None,
        router: str = "round_robin",
        policy: str = "fifo",
        strategy: str = PAPER_STRATEGY,
        classes: Sequence = (),
        autoscaler=None,
        platform: Optional[MultiChipPlatform] = None,
        seed: int = 0,
        max_context: int = 1024,
        slo_targets: Optional[Sequence[float]] = None,
        record_threshold: Optional[int] = None,
        timeline_window_s: float = 60.0,
        faults=None,
        retry=None,
    ):
        """Simulate a fleet of heterogeneous platforms serving one trace.

        The first argument may also be a :class:`repro.spec.FleetSpec`
        (with ``trace`` omitted), which fully describes the simulation
        and produces the byte-identical report.

        Every fleet platform is a replica of a registered hardware preset
        backed by this session's memoised block evaluations (replicas of
        the same preset and chip count share one
        :class:`~repro.serving.costs.RequestCostModel`); arrivals pass
        multi-tenant admission control, are dispatched by the named
        routing policy, and each replica schedules its own queue with the
        named per-replica scheduling policy.  Metrics aggregate in
        bounded memory, so day-long million-request traces are fine.

        Args:
            config: The served :class:`~repro.graph.transformer.TransformerConfig`.
            trace: Any open-loop :class:`~repro.serving.traces.TrafficTrace`
                (traces with a ``stream`` method are consumed lazily).
            platforms: Fleet entries — :class:`~repro.fleet.FleetPlatform`
                objects or ``preset[:chips][xN][@role]`` strings; defaults
                to a single replica of the default preset.
            router: Registered router name (see ``repro routers``) or a
                fresh :class:`~repro.fleet.RoutingPolicy` instance.
            policy: Per-replica scheduling policy name (or instance).
            strategy: Registered partitioning strategy producing costs.
            classes: Multi-tenant :class:`~repro.fleet.SLOClass` list; a
                request's ``priority`` field selects its class.
            autoscaler: Optional :class:`~repro.fleet.AutoscalerConfig`
                enabling reactive replica scaling.
            platform: Explicit platform every replica (and autoscaled
                replica) runs instead of its preset — how a study's
                ``platform_from`` reference lands here.  Replica counts
                and roles of the ``platforms`` entries still apply;
                replicas are reported with the preset name ``"tuned"``.
            seed: Trace seed; equal seeds give byte-identical reports.
            max_context: Serving window of every replica's cost model.
            slo_targets: TTFT targets of the fleet SLO-attainment curve.
            record_threshold: Completions beyond which latency
                percentiles switch to the streaming histogram (bounded
                memory); defaults to
                :data:`repro.fleet.DEFAULT_RECORD_THRESHOLD`.
            timeline_window_s: Aggregation window of the fleet timeline.
            faults: Optional :class:`~repro.fleet.FaultModel` injecting
                replica crashes, stragglers, and brownouts; ``None``
                runs the exact fault-free engine (byte-identical
                output).
            retry: Optional :class:`~repro.fleet.RetryPolicy` governing
                failover of requests stranded by a crash (bounded
                retries, deterministic backoff, timeouts, hedging).
        """
        if not isinstance(config, TransformerConfig):
            from ..spec.specs import FleetSpec

            spec = self._as_spec(
                config,
                FleetSpec,
                defaults_only=(
                    trace is None
                    and platforms is None
                    and router == "round_robin"
                    and policy == "fifo"
                    and strategy == PAPER_STRATEGY
                    and not tuple(classes)
                    and autoscaler is None
                    and platform is None
                    and seed == 0
                    and max_context == 1024
                    and slo_targets is None
                    and record_threshold is None
                    and timeline_window_s == 60.0
                    and faults is None
                    and retry is None
                ),
            )
            if spec is not None:
                from ..spec.runner import execute

                return execute(self, spec)
        if trace is None:
            raise AnalysisError(
                "serve_fleet needs a traffic trace (or a FleetSpec as the "
                "single argument)"
            )
        from ..fleet import (
            DEFAULT_RECORD_THRESHOLD,
            AdmissionController,
            FleetPlatform,
            FleetReport,
            FleetSimulator,
            ReplicaTemplate,
            iter_requests,
        )
        from ..hw.presets import get_platform_preset
        from ..serving.costs import RequestCostModel
        from ..serving.metrics import DEFAULT_SLO_TTFT_TARGETS_S

        entries = []
        for entry in platforms if platforms is not None else (FleetPlatform(),):
            if isinstance(entry, str):
                entry = FleetPlatform.parse(entry)
            entries.append(entry)
        if not entries:
            raise AnalysisError("a fleet needs at least one platform entry")

        cost_models: Dict[Tuple[str, int], RequestCostModel] = {}

        def costs_for(preset_name: str, chips: Optional[int]):
            if platform is not None:
                # Every replica runs the explicit (e.g. tuned) platform.
                key = ("tuned", platform.num_chips)
                model = cost_models.get(key)
                if model is None:
                    model = RequestCostModel(
                        self,
                        config,
                        platform=platform,
                        strategy=strategy,
                        max_context=max_context,
                    )
                    cost_models[key] = model
                return "tuned", platform.num_chips, model
            preset = get_platform_preset(preset_name)
            count = chips if chips is not None else preset.default_chips
            key = (preset.name, count)
            model = cost_models.get(key)
            if model is None:
                model = RequestCostModel(
                    self,
                    config,
                    platform=preset.build(count),
                    strategy=strategy,
                    max_context=max_context,
                )
                cost_models[key] = model
            return preset.name, count, model

        templates = []
        for entry in entries:
            name, count, model = costs_for(entry.preset, entry.chips)
            template = ReplicaTemplate(
                preset=name, chips=count, role=entry.role, costs=model
            )
            templates.extend([template] * entry.replicas)

        scale_template = None
        if autoscaler is not None:
            name, count, model = costs_for(autoscaler.preset, autoscaler.chips)
            scale_template = ReplicaTemplate(
                preset=name, chips=count, role="any", costs=model
            )

        simulator = FleetSimulator(
            templates,
            router=router,
            policy=policy,
            admission=AdmissionController(classes),
            autoscaler=autoscaler,
            scale_template=scale_template,
            slo_targets=(
                slo_targets
                if slo_targets is not None
                else DEFAULT_SLO_TTFT_TARGETS_S
            ),
            record_threshold=(
                record_threshold
                if record_threshold is not None
                else DEFAULT_RECORD_THRESHOLD
            ),
            timeline_window_s=timeline_window_s,
            faults=faults,
            retry=retry,
        )
        result = simulator.run(iter_requests(trace, seed))
        return FleetReport(
            model=config.name,
            strategy=get_strategy(strategy).name,
            router=result.router,
            policy=result.policy,
            seed=seed,
            result=result,
        )

    def tune(
        self,
        workload: Union[Workload, "object"],
        space=None,
        *,
        searcher: str = "random",
        budget: int = 24,
        seed: int = 0,
        objectives: Sequence = ("latency", "energy"),
        constraints: Sequence = (),
        serving=None,
        parallel: Optional[int] = None,
        checkpoint=None,
        checkpoint_every: Optional[int] = None,
        resume=None,
    ):
        """Search a platform/partition design space for ``workload``.

        The first argument may also be a :class:`repro.spec.TuneSpec`,
        which fully describes the search (space included).

        Drives a registered search algorithm over a
        :class:`~repro.dse.space.SearchSpace` (the standard platform
        space around the paper's deployment point by default), measuring
        every unique design through this session — so repeated points hit
        the memoisation cache — and returns the
        :class:`~repro.dse.engine.TuneResult` with the constraint-feasible
        Pareto front of the named objectives.

        Args:
            workload: The workload to tune the platform for.
            space: Optional :class:`~repro.dse.space.SearchSpace`
                (defaults to :func:`repro.dse.default_space`).
            searcher: Registered search-algorithm name
                (see ``repro searchers``).
            budget: Maximum evaluation calls the searcher may issue
                (repeat visits included; they cost nothing).
            seed: Search seed; equal seeds give identical results.
            objectives: Registered objective names (or instances), in
                presentation order (see ``repro.dse.list_objectives``).
            constraints: Bounds like ``"latency<=0.01"`` (or
                :class:`~repro.dse.pareto.Constraint` instances);
                constraint-only objectives are measured automatically.
            serving: Optional :class:`~repro.dse.engine.ServingScenario`
                for serving-level objectives (``slo``,
                ``energy_per_request``).
            parallel: Optional worker-process count for batch prefill
                (:meth:`prefill`); results are byte-identical for any
                worker count — only wall-clock and cache statistics
                change.
            checkpoint: Optional path where the run's resumable
                :class:`~repro.dse.orchestrator.SearchState` is written
                (atomically) every ``checkpoint_every`` unique
                evaluations and on completion.
            checkpoint_every: Checkpoint cadence in unique evaluations
                (default :data:`repro.dse.DEFAULT_CHECKPOINT_EVERY`
                when a checkpoint path is set).
            resume: Optional path of a previously written checkpoint to
                resume from; the finished run is byte-identical to an
                uninterrupted one, and checkpointed points are never
                re-paid.
        """
        if not isinstance(workload, Workload):
            from ..spec.specs import TuneSpec

            spec = self._as_spec(
                workload,
                TuneSpec,
                defaults_only=(
                    space is None
                    and searcher == "random"
                    and budget == 24
                    and seed == 0
                    and tuple(objectives) == ("latency", "energy")
                    and not tuple(constraints)
                    and serving is None
                    and parallel is None
                    and checkpoint is None
                    and checkpoint_every is None
                    and resume is None
                ),
            )
            if spec is not None:
                from ..spec.runner import execute

                return execute(self, spec)
        from ..dse.engine import run_tune

        return run_tune(
            self,
            workload,
            space,
            searcher=searcher,
            budget=budget,
            seed=seed,
            objectives=objectives,
            constraints=constraints,
            serving=serving,
            parallel=parallel,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )

    def prefill(
        self,
        requests: Sequence[Tuple[Workload, str, MultiChipPlatform]],
        *,
        parallel: Optional[int] = None,
    ) -> None:
        """Warm the caches for a batch of evaluations using worker processes.

        Each request is a ``(workload, strategy, platform)`` triple; the
        uncached ones are evaluated in a process pool of up to
        ``parallel`` workers and merged into this session's caches, so
        the subsequent serial :meth:`run` calls are all cache hits.
        This is the fan-out behind ``repro sweep --parallel`` and the
        DSE orchestrator's parallel evaluation
        (:mod:`repro.dse.orchestrator`).

        Prefill is best-effort and never changes results — it only moves
        evaluations into workers ahead of time.  Points already warm in
        the in-memory *or* persistent cache never reach the pool; worker
        results are written back to the persistent store (when the
        session carries one), so a repeated parallel drive — even from a
        fresh process — performs zero engine runs.  Sessions without
        memoisation, or carrying custom kernel/energy models (which may
        not survive pickling), skip the pool silently; a failed pool or
        worker falls back to the serial path with a warning.
        """
        if parallel is None or parallel <= 1:
            return
        if not self.memoize or self.kernels is not None or self.energy is not None:
            return
        options = self.options()
        pending: List[Tuple[str, tuple]] = []
        seen = set()
        for workload, strategy, platform in requests:
            impl = get_strategy(strategy)
            store = self._store if _strategy_is_persistable(impl) else None
            cache_dir = str(store.directory) if store is not None else None
            key = self._cache_key(impl.name, workload, platform, options)
            if key in self._cache or key in seen:
                continue
            if store is not None:
                cached = store.get(key)
                if cached is not None:
                    self._disk_hits += 1
                    self._cache[key] = cached
                    continue
            seen.add(key)
            pending.append(
                (key, (impl.name, workload, platform, options, key, cache_dir))
            )
        if len(pending) < 2:
            return
        import warnings

        try:
            from concurrent.futures import ProcessPoolExecutor

            pool = ProcessPoolExecutor(max_workers=min(parallel, len(pending)))
        except Exception as error:
            # Pool creation failure (restricted environment, missing
            # semaphores, ...): prefill is best-effort, so fall back to
            # the serial path, which re-raises any genuine evaluation
            # error.
            warnings.warn(
                f"parallel prefill unavailable ({error}); "
                "evaluating serially",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        failures = 0
        first_error = None
        workers = min(parallel, len(pending))
        # Several points per task: the submit/pickle round-trip amortises
        # over the chunk, so millisecond-scale evaluations still win.
        # Four chunks per worker keeps the pool load-balanced when chunk
        # costs are uneven (mixed chip counts, infeasible points).
        chunk_size = max(1, -(-len(pending) // (workers * 4)))
        chunks = [
            [payload for _, payload in pending[start:start + chunk_size]]
            for start in range(0, len(pending), chunk_size)
        ]
        with pool:
            # The workers already wrote their results to the persistent
            # store; the parent only fills its in-memory layer.  A point
            # a worker answered from disk (written meanwhile by a
            # concurrent process) counts as a disk hit, not an engine
            # run.  A failed worker (spawn start method without the
            # strategy registered in the child, broken pool, ...) only
            # forfeits its own chunk: completed results are kept, and
            # the serial path re-evaluates the remainder, re-raising any
            # genuine evaluation error.  Infeasible designs
            # (partitioning, capacity, ...) are expected under
            # design-space search and fail identically — and cheaply —
            # on the serial path, which is what assigns them meaning, so
            # they are not warned about.
            futures = [pool.submit(_evaluate_chunk, chunk) for chunk in chunks]
            for chunk, future in zip(chunks, futures):
                try:
                    entries = future.result()
                except Exception as error:
                    failures += len(chunk)
                    if first_error is None:
                        first_error = error
                    continue
                for key, status, value in entries:
                    if status == "infeasible":
                        continue
                    if status != "ok":
                        failures += 1
                        if first_error is None:
                            first_error = value
                        continue
                    ran_engine, result = value
                    self._cache[key] = result
                    if ran_engine:
                        self._misses += 1
                    else:
                        self._disk_hits += 1
        if failures:
            warnings.warn(
                f"parallel prefill lost {failures} of "
                f"{len(pending)} point(s) ({first_error}); evaluating "
                "the remainder serially",
                RuntimeWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _prefill_parallel(
        self,
        workload: Workload,
        chips: Sequence[int],
        strategy: str,
        parallel: int,
    ) -> None:
        """Prefill one strategy's chip-count sweep (see :meth:`prefill`)."""
        self.prefill(
            [
                (workload, strategy, self.resolve_platform(count))
                for count in chips
            ],
            parallel=parallel,
        )


_DEFAULT_SESSION: Optional[Session] = None


def set_default_session(session: Optional[Session]) -> Optional[Session]:
    """Install ``session`` as the process-wide shared session.

    The experiment harnesses evaluate through :func:`default_session`;
    installing a configured session (e.g. one with a persistent cache,
    as ``repro experiments`` does) redirects them all.  Returns the
    previously installed session (``None`` if none existed yet) so
    callers can scope the override and restore it afterwards.
    """
    global _DEFAULT_SESSION
    previous = _DEFAULT_SESSION
    _DEFAULT_SESSION = session
    return previous


def default_session() -> Session:
    """The process-wide shared session on the paper's Siracusa preset.

    The experiment harnesses (Figs. 4-6, Table I, the headline numbers)
    share this session, so a workload/chip-count pair simulated for one
    figure is reused by every other figure instead of being recomputed.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION
