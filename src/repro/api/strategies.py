"""Built-in partitioning strategies.

Five strategies ship with the library, covering the paper's scheme and
every Table I baseline behind the single :class:`~repro.api.registry.
PartitionStrategy` interface:

``paper``
    The paper's tensor-parallel scheme run through the full pipeline
    (partition → schedule → event-driven simulation → energy model).  The
    returned :class:`~repro.api.EvalResult` carries the complete
    :class:`~repro.analysis.evaluate.BlockReport` and honours every
    :class:`~repro.api.EvalOptions` knob.

``single_chip``
    One chip of the platform executes the whole block (the reference every
    speedup is normalised to).  Simulator-backed, report attached.

``weight_replicated``
    Sequence parallelism with a full weight copy per chip (the "edge meets
    Transformers" family the paper criticises).

``pipeline_parallel``
    Layer-wise pipelining (the PipeEdge / Hermes family).

``tensor_parallel``
    The paper's scheme wrapped as a Table-I comparison entry — identical
    cycles and energy to ``paper`` under default options, presented with
    the ablation's metadata.  Simulator-backed, report attached.

The simulator-backed strategies invoke the same engine calls as the seed's
:mod:`repro.baselines` adapters, and the analytical ones delegate to them
directly, so every number is bit-identical to the seed's
``compare_approaches`` ablation (asserted by ``tests/api/test_parity.py``).
"""

from __future__ import annotations

from ..analysis.evaluate import evaluate_block
from ..baselines.pipeline_parallel import evaluate_pipeline_parallel
from ..baselines.weight_replicated import evaluate_weight_replicated
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from .registry import EvalOptions, register_strategy
from .result import EvalResult

#: Registry names of the Table I ablation, in the table's row order.
BASELINE_STRATEGIES = (
    "single_chip",
    "weight_replicated",
    "pipeline_parallel",
    "tensor_parallel",
)

#: Registry name of the paper's simulator-backed scheme.
PAPER_STRATEGY = "paper"


@register_strategy
class PaperStrategy:
    """The paper's tensor-parallel scheme through the full simulator."""

    name = PAPER_STRATEGY
    aliases = ("ours",)
    label = "Ours (tensor parallel, scattered weights)"

    def evaluate(
        self,
        workload: Workload,
        platform: MultiChipPlatform,
        options: EvalOptions,
    ) -> EvalResult:
        energy_model = (
            options.energy(platform) if options.energy is not None else None
        )
        report = evaluate_block(
            workload,
            platform,
            kernel_library=options.kernel_library,
            prefetch_accounting=options.prefetch_accounting,
            record_events=options.record_events,
            energy_model=energy_model,
        )
        return EvalResult.from_block_report(
            report,
            strategy=self.name,
            approach=self.label,
            notes="head-split MHSA, F-split FFN, hierarchical all-reduce",
        )


@register_strategy
class SingleChipStrategy:
    """Whole block on one chip of the platform."""

    name = "single_chip"
    label = "Single chip"

    def evaluate(
        self,
        workload: Workload,
        platform: MultiChipPlatform,
        options: EvalOptions,
    ) -> EvalResult:
        # Same engine invocation as the seed's evaluate_single_chip, but
        # keeping the simulator report attached to the unified result.
        report = evaluate_block(workload, platform.with_num_chips(1))
        return EvalResult.from_block_report(
            report,
            strategy=self.name,
            approach=self.label,
            synchronisations_per_block=0,
            notes="all weights and traffic on one chip",
        )


@register_strategy
class WeightReplicatedStrategy:
    """Sequence parallelism with a full weight copy per chip."""

    name = "weight_replicated"
    aliases = ("sequence_parallel",)
    label = "Sequence parallel, replicated weights"

    def evaluate(
        self,
        workload: Workload,
        platform: MultiChipPlatform,
        options: EvalOptions,
    ) -> EvalResult:
        result = evaluate_weight_replicated(workload, platform)
        return EvalResult.from_baseline_result(
            result,
            strategy=self.name,
            workload=workload,
            frequency_hz=platform.frequency_hz,
        )


@register_strategy
class PipelineParallelStrategy:
    """Layer-wise pipelining across the chips."""

    name = "pipeline_parallel"
    label = "Pipeline parallel (layer split)"

    def evaluate(
        self,
        workload: Workload,
        platform: MultiChipPlatform,
        options: EvalOptions,
    ) -> EvalResult:
        result = evaluate_pipeline_parallel(workload, platform)
        return EvalResult.from_baseline_result(
            result,
            strategy=self.name,
            workload=workload,
            frequency_hz=platform.frequency_hz,
        )


@register_strategy
class TensorParallelStrategy:
    """The paper's scheme presented as a Table-I comparison entry."""

    name = "tensor_parallel"
    label = "Ours (tensor parallel, scattered weights)"

    def evaluate(
        self,
        workload: Workload,
        platform: MultiChipPlatform,
        options: EvalOptions,
    ) -> EvalResult:
        # Same engine invocation (default options) as the seed's
        # evaluate_tensor_parallel, but keeping the report attached.
        report = evaluate_block(workload, platform)
        return EvalResult.from_block_report(
            report,
            strategy=self.name,
            approach=self.label,
            notes="head-split MHSA, F-split FFN, hierarchical all-reduce",
        )
