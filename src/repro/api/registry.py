"""Strategy protocol and registry.

A *partitioning strategy* is anything that can evaluate a workload on a
multi-chip platform and return the unified :class:`~repro.api.EvalResult`.
Strategies register themselves by name with :func:`register_strategy`, and
everything downstream — :class:`~repro.api.Session`, the CLI, the sweep
and comparison helpers — looks them up through :func:`get_strategy`, so a
new partitioning idea becomes available to every front end by writing one
class::

    from repro.api import EvalOptions, EvalResult, register_strategy

    @register_strategy
    class MyStrategy:
        name = "my_scheme"
        label = "My scheme (what the comparison table shows)"

        def evaluate(self, workload, platform, options):
            ...
            return EvalResult(...)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, runtime_checkable

from ..core.placement import PrefetchAccounting
from ..energy.model import EnergyModel
from ..errors import ConfigurationError, UnknownStrategyError
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from ..kernels.library import KernelLibrary
from .result import EvalResult

#: Factory building an energy model for a platform (``EnergyModel`` itself
#: satisfies this signature).
EnergyModelFactory = Callable[[MultiChipPlatform], EnergyModel]


@dataclass(frozen=True)
class EvalOptions:
    """Cross-cutting evaluation knobs passed to every strategy.

    A strategy honours the options that make sense for it: the simulator-
    backed ``paper`` strategy uses all of them, while the analytical
    baselines (which bake in their own cost models) ignore
    ``record_events`` and may ignore a custom kernel library.

    Attributes:
        kernel_library: Optional custom kernel cost models.
        energy: Optional energy-model factory (defaults to the paper's
            analytical :class:`~repro.energy.model.EnergyModel`).
        prefetch_accounting: How double-buffered weight prefetches are
            charged to runtime (the paper's accounting is ``HIDDEN``).
        record_events: Keep per-step trace events for debugging.
    """

    kernel_library: Optional[KernelLibrary] = None
    energy: Optional[EnergyModelFactory] = None
    prefetch_accounting: PrefetchAccounting = PrefetchAccounting.HIDDEN
    record_events: bool = False

    def __getstate__(self) -> dict:
        # The content-hash memo (repro.api.session) is per-process state
        # and would bloat every process-pool payload.
        state = dict(self.__dict__)
        state.pop("_repro_canonical_memo", None)
        return state


@runtime_checkable
class PartitionStrategy(Protocol):
    """What the registry requires of a partitioning strategy.

    Attributes:
        name: Registry key (lowercase snake_case by convention).
        label: Human-readable approach name shown in comparison tables.
    """

    name: str
    label: str

    def evaluate(
        self,
        workload: Workload,
        platform: MultiChipPlatform,
        options: EvalOptions,
    ) -> EvalResult:
        """Evaluate ``workload`` on ``platform`` and return the unified result."""
        ...


_STRATEGIES: Dict[str, PartitionStrategy] = {}
_ALIASES: Dict[str, str] = {}


def register_strategy(strategy):
    """Class decorator (or direct call) registering a partitioning strategy.

    Accepts either a strategy *class* (instantiated with no arguments) or a
    ready-made instance.  The strategy is registered under its ``name``
    attribute plus any names in an optional ``aliases`` attribute.

    Returns the argument unchanged so it can be used as a decorator.

    Raises:
        ConfigurationError: If the name is missing, already taken, or the
            object does not implement :class:`PartitionStrategy`.
    """
    instance = strategy() if isinstance(strategy, type) else strategy
    name = getattr(instance, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            "a strategy must define a non-empty string `name` attribute"
        )
    if not isinstance(instance, PartitionStrategy):
        raise ConfigurationError(
            f"strategy {name!r} does not implement the PartitionStrategy "
            "protocol (name, label, evaluate)"
        )
    for key in (name, *getattr(instance, "aliases", ())):
        if key in _STRATEGIES or key in _ALIASES:
            raise ConfigurationError(f"strategy name {key!r} already registered")
    _STRATEGIES[name] = instance
    for alias in getattr(instance, "aliases", ()):
        _ALIASES[alias] = name
    return strategy


def unregister_strategy(name: str) -> None:
    """Remove a strategy (and its aliases) from the registry."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _STRATEGIES:
        raise UnknownStrategyError(_unknown_message(name))
    instance = _STRATEGIES.pop(canonical)
    for alias in getattr(instance, "aliases", ()):
        _ALIASES.pop(alias, None)


def get_strategy(name: str) -> PartitionStrategy:
    """Look up a registered strategy by name or alias.

    Raises:
        UnknownStrategyError: If no strategy is registered under ``name``;
            the message lists the available names.
    """
    canonical = _ALIASES.get(name, name)
    try:
        return _STRATEGIES[canonical]
    except KeyError:
        raise UnknownStrategyError(_unknown_message(name)) from None


def list_strategies() -> List[str]:
    """Sorted canonical names of all registered strategies."""
    return sorted(_STRATEGIES)


def _unknown_message(name: str) -> str:
    known = ", ".join(list_strategies()) or "<none>"
    return f"unknown partitioning strategy {name!r}; registered: {known}"
