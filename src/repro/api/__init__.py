"""Unified strategy-plugin evaluation API.

One front door for the paper's partitioning scheme and every baseline:

* :class:`PartitionStrategy` — the protocol a partitioning idea implements,
* :func:`register_strategy` — the registry that makes it available
  everywhere by name (``Session.run``, ``Session.compare``, the CLI),
* :class:`EvalResult` — the single result schema every strategy returns,
* :class:`Session` — runs, sweeps, and compares strategies with
  content-hash memoisation and optional process-pool fan-out,
* :class:`EvalCache` — the persistent cross-process layer behind the
  memoisation (``Session(cache_dir=...)``, shared by CLI invocations,
  sweep workers, serving cost models, and DSE searchers).

See ``docs/API.md`` for the full protocol description and the migration
guide from the legacy ``evaluate_block``/``compare_approaches`` entry
points (which remain available as thin shims over this package).
"""

from .cache import (
    CacheStats,
    EvalCache,
    default_cache_dir,
    open_default_cache,
    persistent_cache_disabled,
)
from .registry import (
    EnergyModelFactory,
    EvalOptions,
    PartitionStrategy,
    get_strategy,
    list_strategies,
    register_strategy,
    unregister_strategy,
)
from .result import EvalResult
from .strategies import BASELINE_STRATEGIES, PAPER_STRATEGY
from .study import StageOutcome, Study, StudyResult
from .session import (
    CacheInfo,
    Comparison,
    EvalSweep,
    Session,
    content_hash,
    default_session,
    set_default_session,
)

__all__ = [
    "BASELINE_STRATEGIES",
    "CacheInfo",
    "CacheStats",
    "Comparison",
    "EvalCache",
    "EnergyModelFactory",
    "EvalOptions",
    "EvalResult",
    "EvalSweep",
    "PAPER_STRATEGY",
    "PartitionStrategy",
    "Session",
    "StageOutcome",
    "Study",
    "StudyResult",
    "content_hash",
    "default_cache_dir",
    "default_session",
    "get_strategy",
    "open_default_cache",
    "persistent_cache_disabled",
    "list_strategies",
    "register_strategy",
    "set_default_session",
    "unregister_strategy",
]
