"""Unified strategy-plugin evaluation API.

One front door for the paper's partitioning scheme and every baseline:

* :class:`PartitionStrategy` — the protocol a partitioning idea implements,
* :func:`register_strategy` — the registry that makes it available
  everywhere by name (``Session.run``, ``Session.compare``, the CLI),
* :class:`EvalResult` — the single result schema every strategy returns,
* :class:`Session` — runs, sweeps, and compares strategies with
  content-hash memoisation and optional process-pool fan-out.

See ``docs/API.md`` for the full protocol description and the migration
guide from the legacy ``evaluate_block``/``compare_approaches`` entry
points (which remain available as thin shims over this package).
"""

from .registry import (
    EnergyModelFactory,
    EvalOptions,
    PartitionStrategy,
    get_strategy,
    list_strategies,
    register_strategy,
    unregister_strategy,
)
from .result import EvalResult
from .strategies import BASELINE_STRATEGIES, PAPER_STRATEGY
from .session import (
    CacheInfo,
    Comparison,
    EvalSweep,
    Session,
    content_hash,
    default_session,
)

__all__ = [
    "BASELINE_STRATEGIES",
    "CacheInfo",
    "Comparison",
    "EnergyModelFactory",
    "EvalOptions",
    "EvalResult",
    "EvalSweep",
    "PAPER_STRATEGY",
    "PartitionStrategy",
    "Session",
    "content_hash",
    "default_session",
    "get_strategy",
    "list_strategies",
    "register_strategy",
    "unregister_strategy",
]
