"""The Study runner: execute a :class:`~repro.spec.StudySpec` end to end.

A *study* is a pipeline of named stages — any mix of evaluate, sweep,
compare, serve, fleet, and tune specs — executed in order through **one shared
session**, so a block evaluation performed by the sweep stage is a cache
hit for the compare, serve, and tune stages that follow.  Later stages may
reference earlier ones (``platform_from`` a tune stage, ``chips_from`` a
sweep stage); the runner resolves those references against completed
outcomes.

Each stage's result is flattened into the same JSON-ready form the CLI's
``--json`` flag emits (minus session cache statistics, which depend on
history rather than inputs), and :meth:`Study.run` can write the whole
pipeline as a byte-deterministic artifact directory::

    out/
      study.json        # manifest: schema, spec, stage index + sha256s
      <stage>.json      # one artifact per stage, in execution order

Two runs of the same spec produce byte-identical artifacts, which makes a
committed study file a reproducibility contract: anyone can re-run it and
diff the directory.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..errors import AnalysisError
from ..spec.base import SPEC_SCHEMA_VERSION
from ..spec.runner import execute
from ..spec.specs import StudySpec
from .session import Session

__all__ = ["StageOutcome", "Study", "StudyResult"]


def _stage_payload(kind: str, result: Any) -> Dict[str, Any]:
    """One stage's JSON-ready artifact body (cache-statistics-free)."""
    from ..analysis.export import (
        comparison_to_dict,
        eval_result_to_dict,
        eval_sweep_to_dict,
        tune_result_to_dict,
    )

    if kind == "evaluate":
        return eval_result_to_dict(result)
    if kind == "sweep":
        return eval_sweep_to_dict(result)
    if kind == "compare":
        return comparison_to_dict(result)
    if kind == "serve":
        return result.to_dict()
    if kind == "fleet":
        return result.to_dict()
    if kind == "tune":
        return tune_result_to_dict(result, include_cache=False)
    raise AnalysisError(f"no artifact encoder for stage kind {kind!r}")


def _dumps(document: Dict[str, Any]) -> str:
    """The canonical artifact text: sorted keys, indent 2, trailing newline."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


@dataclass(frozen=True)
class StageOutcome:
    """One executed stage of a study.

    Attributes:
        name: The stage's name (also its artifact filename stem).
        kind: The stage spec's kind tag (``sweep``, ``serve``, ...).
        result: The native result object the equivalent imperative
            ``Session`` call would have returned.
        payload: The JSON-ready artifact body.
    """

    name: str
    kind: str
    result: Any
    payload: Dict[str, Any]

    @property
    def artifact_name(self) -> str:
        """Filename of this stage's artifact inside the study directory."""
        return f"{self.name}.json"

    def artifact_text(self) -> str:
        """The byte-deterministic artifact document."""
        return _dumps(self.payload)


@dataclass(frozen=True)
class StudyResult:
    """Everything one study run produced.

    Attributes:
        spec: The executed study spec.
        stages: Stage outcomes, in execution order.
        output_dir: Where artifacts were written (``None`` if kept
            in memory only).
    """

    spec: StudySpec
    stages: Tuple[StageOutcome, ...]
    output_dir: Optional[Path] = None

    def stage(self, name: str) -> StageOutcome:
        """Look one executed stage up by name."""
        for outcome in self.stages:
            if outcome.name == name:
                return outcome
        raise AnalysisError(
            f"study {self.spec.name!r} has no stage {name!r}; stages: "
            + ", ".join(outcome.name for outcome in self.stages)
        )

    def manifest(self) -> Dict[str, Any]:
        """The ``study.json`` document: spec plus the artifact index."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "kind": "study_manifest",
            "name": self.spec.name,
            "description": self.spec.description,
            "spec": self.spec.to_dict(),
            "stages": [
                {
                    "name": outcome.name,
                    "kind": outcome.kind,
                    "artifact": outcome.artifact_name,
                    "sha256": hashlib.sha256(
                        outcome.artifact_text().encode("utf-8")
                    ).hexdigest(),
                }
                for outcome in self.stages
            ],
        }

    def to_document(self) -> Dict[str, Any]:
        """Manifest plus inline stage payloads (``repro study run --json``)."""
        document = self.manifest()
        for entry, outcome in zip(document["stages"], self.stages):
            entry["payload"] = outcome.payload
        return document

    def render(self) -> str:
        """Plain-text run summary: one headline line per stage."""
        lines = [
            f"Study {self.spec.name!r}: {len(self.stages)} stage(s)"
            + (f" -> {self.output_dir}" if self.output_dir is not None else "")
        ]
        for outcome in self.stages:
            lines.append(f"  [{outcome.kind:<8}] {outcome.name}: "
                         + _headline(outcome))
        return "\n".join(lines)


def _headline(outcome: StageOutcome) -> str:
    """One human-readable line summarising a stage outcome."""
    result = outcome.result
    if outcome.kind == "evaluate":
        return (
            f"{result.workload.name} on {result.num_chips} chip(s): "
            f"{result.block_cycles:,.0f} cycles/block"
        )
    if outcome.kind == "sweep":
        speedups = result.speedups()
        last = result.results[-1]
        return (
            f"{result.workload.name} x{len(result.results)} chip counts, "
            f"{last.num_chips} chips: {speedups[last.num_chips]:.2f}x"
        )
    if outcome.kind == "compare":
        best = result.best()
        return (
            f"{len(result.results)} strategies on {result.num_chips} "
            f"chip(s); fastest: {best.strategy}"
        )
    if outcome.kind == "serve":
        return (
            f"{result.metrics.requests} requests, policy {result.policy}: "
            f"p95 TTFT {result.metrics.ttft.p95 * 1e3:.1f} ms"
        )
    if outcome.kind == "fleet":
        return (
            f"{result.result.completed} requests on "
            f"{len(result.result.replicas)} replica(s), router "
            f"{result.router}: p99 TTFT {result.result.ttft.p99 * 1e3:.1f} ms"
        )
    if outcome.kind == "tune":
        return (
            f"searcher {result.searcher}, {len(result.candidates)} unique "
            f"candidates, front of {len(result.front)}"
        )
    return ""


class Study:
    """Executes a :class:`~repro.spec.StudySpec` through one shared session.

    Args:
        spec: The study to run.  It is validated eagerly (names and stage
            references), so a bad spec fails here, not mid-pipeline.
        session: Optional session to evaluate through.  The default is a
            fresh in-memory :class:`Session`, which makes artifacts
            byte-deterministic; pass a persistent session (as the CLI
            does) to share the on-disk evaluation cache — artifacts are
            unaffected, because they never include cache statistics.
    """

    def __init__(
        self, spec: StudySpec, *, session: Optional[Session] = None
    ) -> None:
        if not isinstance(spec, StudySpec):
            raise AnalysisError(
                f"Study needs a StudySpec, got {type(spec).__name__}"
            )
        spec.validate()
        self.spec = spec
        self.session = session if session is not None else Session()

    def run(
        self,
        output_dir: Optional[Union[str, Path]] = None,
        *,
        parallel: Optional[int] = None,
    ) -> StudyResult:
        """Execute every stage in order; optionally write the artifacts.

        Returns the :class:`StudyResult` with every stage's native result
        object and JSON payload.  With ``output_dir``, the directory is
        created if needed and receives one ``<stage>.json`` per stage
        plus the ``study.json`` manifest.

        ``parallel`` overrides the evaluation worker count for every tune
        stage (see :meth:`Session.tune`); artifacts are unaffected because
        parallel tune is byte-identical to serial.

        Tune stages that set ``checkpoint_every`` are checkpointed into
        ``<output_dir>/<stage>.checkpoint.json`` and automatically resume
        from that file when a previous run of the same study left one
        behind — interrupt ``repro study run``, re-run it with the same
        output directory, and the search picks up where it stopped
        without re-paying for evaluated points.
        """
        resolved_dir = Path(output_dir) if output_dir is not None else None
        if resolved_dir is not None:
            # Create upfront so mid-run tune checkpoints have a home.
            resolved_dir.mkdir(parents=True, exist_ok=True)
        outcomes: Dict[str, StageOutcome] = {}
        ordered = []
        for stage in self.spec.stages:
            overrides: Dict[str, Any] = {}
            if stage.spec.kind == "tune":
                if parallel is not None:
                    overrides["parallel"] = parallel
                if (
                    resolved_dir is not None
                    and stage.spec.checkpoint_every is not None
                ):
                    checkpoint = resolved_dir / f"{stage.name}.checkpoint.json"
                    overrides["checkpoint"] = str(checkpoint)
                    if checkpoint.exists():
                        overrides["resume"] = str(checkpoint)
            result = execute(
                self.session, stage.spec, stages=outcomes, **overrides
            )
            outcome = StageOutcome(
                name=stage.name,
                kind=stage.spec.kind,
                result=result,
                payload=_stage_payload(stage.spec.kind, result),
            )
            outcomes[stage.name] = outcome
            ordered.append(outcome)
        study = StudyResult(
            spec=self.spec, stages=tuple(ordered), output_dir=resolved_dir
        )
        if resolved_dir is not None:
            for outcome in ordered:
                (resolved_dir / outcome.artifact_name).write_text(
                    outcome.artifact_text(), encoding="utf-8"
                )
            (resolved_dir / "study.json").write_text(
                _dumps(study.manifest()), encoding="utf-8"
            )
        return study
