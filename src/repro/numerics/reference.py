"""Reference (single-device) numerical Transformer block.

The performance model never touches tensor values, but the *correctness*
of the partitioning scheme is a mathematical claim: running the head-split
attention and the F-split FFN on N chips and summing the partial outputs
must produce exactly the same result as the un-partitioned block.  This
module provides a plain numpy implementation of one Transformer block
(float64, no quantisation) that serves as the golden reference for that
claim; :mod:`repro.numerics.distributed` re-implements the same block the
way the chips execute it and the test suite checks the two match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..errors import ConfigurationError
from ..graph.ops import ActivationKind, NormKind
from ..graph.transformer import FfnKind, TransformerConfig


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax along ``axis`` (Eq. 3 of the paper)."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian Error Linear Unit (tanh approximation)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid-weighted linear unit."""
    return x / (1.0 + np.exp(-x))


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


_ACTIVATIONS = {
    ActivationKind.GELU: gelu,
    ActivationKind.SILU: silu,
    ActivationKind.RELU: relu,
}


def layernorm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Row-wise LayerNorm without learned scale/shift."""
    mean = np.mean(x, axis=-1, keepdims=True)
    var = np.var(x, axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


def rmsnorm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Row-wise RMSNorm without learned scale."""
    rms = np.sqrt(np.mean(x * x, axis=-1, keepdims=True) + eps)
    return x / rms


_NORMS = {
    NormKind.LAYERNORM: layernorm,
    NormKind.RMSNORM: rmsnorm,
}


@dataclass
class BlockWeights:
    """Random (or user-supplied) weights of one Transformer block.

    Shapes follow the paper's notation: the Q/K/V projections are
    ``E x (H*P)``, the output projection ``(H*P) x E``, the FFN matrices
    ``E x F`` and ``F x E`` (plus a gate matrix ``E x F`` for gated FFNs).
    """

    config: TransformerConfig
    w_query: np.ndarray
    w_key: np.ndarray
    w_value: np.ndarray
    w_output: np.ndarray
    w_ffn_up: np.ndarray
    w_ffn_down: np.ndarray
    w_ffn_gate: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        config = self.config
        proj = config.projection_dim
        expected: Dict[str, tuple] = {
            "w_query": (config.embed_dim, proj),
            "w_key": (config.embed_dim, proj),
            "w_value": (config.embed_dim, proj),
            "w_output": (proj, config.embed_dim),
            "w_ffn_up": (config.embed_dim, config.ffn_dim),
            "w_ffn_down": (config.ffn_dim, config.embed_dim),
        }
        for name, shape in expected.items():
            actual = getattr(self, name).shape
            if actual != shape:
                raise ConfigurationError(
                    f"{name} has shape {actual}, expected {shape}"
                )
        if config.ffn_kind is FfnKind.GATED:
            if self.w_ffn_gate is None:
                raise ConfigurationError("gated FFN requires w_ffn_gate")
            if self.w_ffn_gate.shape != (config.embed_dim, config.ffn_dim):
                raise ConfigurationError(
                    f"w_ffn_gate has shape {self.w_ffn_gate.shape}, expected "
                    f"{(config.embed_dim, config.ffn_dim)}"
                )
        elif self.w_ffn_gate is not None:
            raise ConfigurationError("standard FFN must not have a gate matrix")

    @classmethod
    def random(cls, config: TransformerConfig, seed: int = 0) -> "BlockWeights":
        """Draw a random weight set (standard normal, scaled by 1/sqrt(E))."""
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(config.embed_dim)
        proj = config.projection_dim

        def draw(rows: int, cols: int) -> np.ndarray:
            return rng.standard_normal((rows, cols)) * scale

        gate = (
            draw(config.embed_dim, config.ffn_dim)
            if config.ffn_kind is FfnKind.GATED
            else None
        )
        return cls(
            config=config,
            w_query=draw(config.embed_dim, proj),
            w_key=draw(config.embed_dim, proj),
            w_value=draw(config.embed_dim, proj),
            w_output=draw(proj, config.embed_dim),
            w_ffn_up=draw(config.embed_dim, config.ffn_dim),
            w_ffn_down=draw(config.ffn_dim, config.embed_dim),
            w_ffn_gate=gate,
        )


@dataclass
class ReferenceBlock:
    """Un-partitioned numpy execution of one Transformer block."""

    weights: BlockWeights
    _config: TransformerConfig = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._config = self.weights.config

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def attention(self, x: np.ndarray) -> np.ndarray:
        """Multi-head self-attention output (before residual and norm)."""
        config = self._config
        weights = self.weights
        heads = config.num_heads
        head_dim = config.head_dim
        rows = x.shape[0]

        queries = x @ weights.w_query
        keys = x @ weights.w_key
        values = x @ weights.w_value

        context = np.empty((rows, heads * head_dim))
        scale = 1.0 / np.sqrt(head_dim)
        for head in range(heads):
            sl = slice(head * head_dim, (head + 1) * head_dim)
            scores = (queries[:, sl] @ keys[:, sl].T) * scale
            probabilities = softmax(scores, axis=-1)
            context[:, sl] = probabilities @ values[:, sl]
        return context @ weights.w_output

    def ffn(self, x: np.ndarray) -> np.ndarray:
        """Feed-forward output (before residual and norm)."""
        config = self._config
        weights = self.weights
        activation = _ACTIVATIONS[config.activation]
        hidden = x @ weights.w_ffn_up
        if config.ffn_kind is FfnKind.GATED:
            gate = activation(x @ weights.w_ffn_gate)
            hidden = gate * hidden
        else:
            hidden = activation(hidden)
        return hidden @ weights.w_ffn_down

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full block: attention + residual + norm, FFN + residual + norm."""
        if x.ndim != 2 or x.shape[1] != self._config.embed_dim:
            raise ConfigurationError(
                f"input must have shape (rows, {self._config.embed_dim}), "
                f"got {x.shape}"
            )
        norm = _NORMS[self._config.norm_kind]
        attention_out = norm(x + self.attention(x))
        return norm(attention_out + self.ffn(attention_out))
