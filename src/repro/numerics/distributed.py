"""Distributed numerical execution of one Transformer block.

This module executes the block exactly the way the partitioned multi-chip
system does, but with real numpy values instead of cost models:

* every virtual chip receives only its slice of the weight matrices
  (its heads of ``W_Q/W_K/W_V/W_O`` and its columns of the FFN matrices),
* every chip computes a partial output of shape ``S x E``,
* the partial outputs are combined through the same hierarchical reduction
  tree the real system uses (including the residual merged into the
  reduction on the root chip), normalised on the root, and broadcast back.

Together with :mod:`repro.numerics.reference` this provides an executable
proof of the paper's correctness claim: scattering the weights across chips
and summing the partial results reproduces the un-partitioned block
bit-for-bit up to floating-point associativity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..core.partition import BlockPartition, partition_block
from ..errors import PartitioningError
from ..graph.transformer import FfnKind
from .reference import _ACTIVATIONS, _NORMS, BlockWeights, softmax


@dataclass
class ChipWeightSlice:
    """The weight slice held by one virtual chip (never replicated)."""

    chip_id: int
    w_query: np.ndarray
    w_key: np.ndarray
    w_value: np.ndarray
    w_output: np.ndarray
    w_ffn_up: np.ndarray
    w_ffn_down: np.ndarray
    w_ffn_gate: np.ndarray | None

    @property
    def parameter_count(self) -> int:
        """Number of weight parameters stored on this chip."""
        total = (
            self.w_query.size
            + self.w_key.size
            + self.w_value.size
            + self.w_output.size
            + self.w_ffn_up.size
            + self.w_ffn_down.size
        )
        if self.w_ffn_gate is not None:
            total += self.w_ffn_gate.size
        return total


def scatter_weights(
    weights: BlockWeights, partition: BlockPartition
) -> Dict[int, ChipWeightSlice]:
    """Slice a full weight set across chips according to a partition.

    Attention matrices are sliced along the head dimension and FFN matrices
    along the intermediate dimension; no element is assigned to two chips.
    """
    config = weights.config
    head_dim = config.head_dim
    slices: Dict[int, ChipWeightSlice] = {}
    for chip in partition.chips:
        head_cols = slice(
            chip.head_offset * head_dim,
            (chip.head_offset + chip.num_heads) * head_dim,
        )
        ffn_cols = slice(chip.ffn_col_offset, chip.ffn_col_offset + chip.ffn_cols)
        gate = (
            weights.w_ffn_gate[:, ffn_cols]
            if weights.w_ffn_gate is not None
            else None
        )
        slices[chip.chip_id] = ChipWeightSlice(
            chip_id=chip.chip_id,
            w_query=weights.w_query[:, head_cols],
            w_key=weights.w_key[:, head_cols],
            w_value=weights.w_value[:, head_cols],
            w_output=weights.w_output[head_cols, :],
            w_ffn_up=weights.w_ffn_up[:, ffn_cols],
            w_ffn_down=weights.w_ffn_down[ffn_cols, :],
            w_ffn_gate=gate,
        )
    return slices


@dataclass
class DistributedBlock:
    """Numerical execution of one block across virtual chips."""

    weights: BlockWeights
    partition: BlockPartition

    def __post_init__(self) -> None:
        if self.partition.config.embed_dim != self.weights.config.embed_dim:
            raise PartitioningError("partition and weights use different models")
        self._slices = scatter_weights(self.weights, self.partition)

    @classmethod
    def from_num_chips(cls, weights: BlockWeights, num_chips: int) -> "DistributedBlock":
        """Partition ``weights``' model across ``num_chips`` virtual chips."""
        partition = partition_block(weights.config, num_chips)
        return cls(weights=weights, partition=partition)

    # ------------------------------------------------------------------
    # Per-chip partial computations
    # ------------------------------------------------------------------
    def partial_attention(self, chip_id: int, x: np.ndarray) -> np.ndarray:
        """Partial MHSA output of one chip (shape ``S x E``)."""
        config = self.weights.config
        chip_slice = self._slices[chip_id]
        chip = self.partition.chip(chip_id)
        head_dim = config.head_dim
        rows = x.shape[0]

        queries = x @ chip_slice.w_query
        keys = x @ chip_slice.w_key
        values = x @ chip_slice.w_value

        context = np.empty((rows, chip.num_heads * head_dim))
        scale = 1.0 / np.sqrt(head_dim)
        for local_head in range(chip.num_heads):
            sl = slice(local_head * head_dim, (local_head + 1) * head_dim)
            scores = (queries[:, sl] @ keys[:, sl].T) * scale
            probabilities = softmax(scores, axis=-1)
            context[:, sl] = probabilities @ values[:, sl]
        return context @ chip_slice.w_output

    def partial_ffn(self, chip_id: int, x: np.ndarray) -> np.ndarray:
        """Partial FFN output of one chip (shape ``S x E``)."""
        config = self.weights.config
        chip_slice = self._slices[chip_id]
        activation = _ACTIVATIONS[config.activation]
        hidden = x @ chip_slice.w_ffn_up
        if config.ffn_kind is FfnKind.GATED:
            gate = activation(x @ chip_slice.w_ffn_gate)
            hidden = gate * hidden
        else:
            hidden = activation(hidden)
        return hidden @ chip_slice.w_ffn_down

    # ------------------------------------------------------------------
    # Collectives (numerical mirror of repro.core.collectives)
    # ------------------------------------------------------------------
    def hierarchical_reduce(
        self, partials: Dict[int, np.ndarray], group_size: int = 4
    ) -> np.ndarray:
        """Sum per-chip partial outputs through the hierarchical tree.

        The summation order follows the reduction tree (group members into
        the group leader, then leaders upward), which is the order the real
        system accumulates in.
        """
        if set(partials) != {chip.chip_id for chip in self.partition.chips}:
            raise PartitioningError("partial outputs must cover every chip exactly once")
        accumulators = {chip_id: partial.copy() for chip_id, partial in partials.items()}
        current: List[int] = sorted(accumulators)
        while len(current) > 1:
            next_level: List[int] = []
            for start in range(0, len(current), group_size):
                group = current[start : start + group_size]
                leader = group[0]
                for member in group[1:]:
                    accumulators[leader] = accumulators[leader] + accumulators[member]
                next_level.append(leader)
            current = next_level
        return accumulators[current[0]]

    # ------------------------------------------------------------------
    # Full block
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Distributed execution of the full block (both synchronisations)."""
        config = self.weights.config
        norm = _NORMS[config.norm_kind]
        chip_ids = [chip.chip_id for chip in self.partition.chips]

        attention_partials = {
            chip_id: self.partial_attention(chip_id, x) for chip_id in chip_ids
        }
        # First synchronisation: all-reduce, residual merged on the root.
        attention_sum = self.hierarchical_reduce(
            attention_partials, self.partition_group_size
        )
        attention_out = norm(x + attention_sum)

        # The broadcast hands the normalised tensor back to every chip.
        ffn_partials = {
            chip_id: self.partial_ffn(chip_id, attention_out) for chip_id in chip_ids
        }
        ffn_sum = self.hierarchical_reduce(ffn_partials, self.partition_group_size)
        return norm(attention_out + ffn_sum)

    @property
    def partition_group_size(self) -> int:
        """Group size used for the hierarchical reduction (4, as in the paper)."""
        return 4

    def total_scattered_parameters(self) -> int:
        """Sum of per-chip parameter counts (equals the full block, no copies)."""
        return sum(slice_.parameter_count for slice_ in self._slices.values())
