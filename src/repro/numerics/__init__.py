"""Numerical verification of the partitioning scheme's correctness."""

from .distributed import ChipWeightSlice, DistributedBlock, scatter_weights
from .reference import (
    BlockWeights,
    ReferenceBlock,
    gelu,
    layernorm,
    relu,
    rmsnorm,
    silu,
    softmax,
)
from .verify import EquivalenceReport, verify_partition_equivalence

__all__ = [
    "BlockWeights",
    "ChipWeightSlice",
    "DistributedBlock",
    "EquivalenceReport",
    "ReferenceBlock",
    "gelu",
    "layernorm",
    "relu",
    "rmsnorm",
    "scatter_weights",
    "silu",
    "softmax",
    "verify_partition_equivalence",
]
