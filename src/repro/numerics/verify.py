"""Equivalence checks between the reference and distributed executions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError
from ..graph.transformer import TransformerConfig
from .distributed import DistributedBlock
from .reference import BlockWeights, ReferenceBlock


@dataclass(frozen=True)
class EquivalenceReport:
    """Result of comparing the distributed block against the reference.

    Attributes:
        num_chips: Number of virtual chips used.
        max_abs_error: Largest absolute element-wise difference.
        mean_abs_error: Mean absolute element-wise difference.
        weights_scattered_exactly_once: Whether the per-chip parameter
            counts sum to the full block (no replication, no loss).
    """

    num_chips: int
    max_abs_error: float
    mean_abs_error: float
    weights_scattered_exactly_once: bool

    def is_equivalent(self, tolerance: float = 1e-9) -> bool:
        """Whether the two executions match within ``tolerance``."""
        return self.weights_scattered_exactly_once and self.max_abs_error <= tolerance


def verify_partition_equivalence(
    config: TransformerConfig,
    num_chips: int,
    *,
    rows: int = 4,
    seed: int = 0,
) -> EquivalenceReport:
    """Run the reference and distributed blocks on the same random input.

    Args:
        config: Model configuration to verify.
        num_chips: Number of virtual chips to partition across.
        rows: Number of input rows (sequence positions) to process.
        seed: Seed for both the weights and the input.

    Returns:
        An :class:`EquivalenceReport` with the observed numerical error.

    Raises:
        AnalysisError: If ``rows`` is not positive.
    """
    if rows <= 0:
        raise AnalysisError("rows must be positive")
    weights = BlockWeights.random(config, seed=seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal((rows, config.embed_dim))

    reference = ReferenceBlock(weights).forward(x)
    distributed_block = DistributedBlock.from_num_chips(weights, num_chips)
    distributed = distributed_block.forward(x)

    difference = np.abs(reference - distributed)
    expected_params = (
        config.attention_weight_params + config.ffn_weight_params
    )
    return EquivalenceReport(
        num_chips=num_chips,
        max_abs_error=float(np.max(difference)),
        mean_abs_error=float(np.mean(difference)),
        weights_scattered_exactly_once=(
            distributed_block.total_scattered_parameters() == expected_params
        ),
    )
