"""The paper's core contribution: tensor-parallel block partitioning.

This package contains the partitioner (head-split attention, F-split FFN,
no weight replication), the per-chip memory footprint and weight-placement
logic, the hierarchical collective plans, and the block scheduler that
assembles per-chip execution schedules for the simulator.
"""

from .collectives import (
    CollectivePlan,
    CommRound,
    Transfer,
    all_to_one_reduce,
    estimate_plan_cycles,
    hierarchical_all_reduce,
    hierarchical_broadcast,
)
from .footprint import (
    ActivationFootprint,
    ChipFootprint,
    activation_footprint,
    chip_footprint,
)
from .partition import BlockPartition, ChipPartition, partition_block, split_evenly
from .placement import MemoryPlan, PrefetchAccounting, WeightResidency, plan_memory
from .schedule import (
    BlockProgram,
    ChipSchedule,
    ComputeStep,
    DmaChannelName,
    DmaStep,
    PrefetchJoinStep,
    PrefetchStep,
    RecvStep,
    RuntimeCategory,
    SendStep,
    Step,
)
from .scheduler import L3_STREAM_TILE_BYTES, BlockScheduler

__all__ = [
    "ActivationFootprint",
    "BlockPartition",
    "BlockProgram",
    "BlockScheduler",
    "ChipFootprint",
    "ChipPartition",
    "ChipSchedule",
    "CollectivePlan",
    "CommRound",
    "ComputeStep",
    "DmaChannelName",
    "DmaStep",
    "L3_STREAM_TILE_BYTES",
    "MemoryPlan",
    "PrefetchAccounting",
    "PrefetchJoinStep",
    "PrefetchStep",
    "RecvStep",
    "RuntimeCategory",
    "SendStep",
    "Step",
    "Transfer",
    "WeightResidency",
    "activation_footprint",
    "all_to_one_reduce",
    "chip_footprint",
    "estimate_plan_cycles",
    "hierarchical_all_reduce",
    "hierarchical_broadcast",
    "partition_block",
    "plan_memory",
    "split_evenly",
]
