"""Per-chip memory footprint accounting.

The central question of the paper is whether a chip's share of the model
fits in its on-chip (L2) memory: if it does, the block runs with stationary
on-chip weights and off-chip traffic disappears from the critical path; if
it does not, weights stream from L3 and dominate runtime and energy.

The footprint of a chip for one workload consists of:

* the weight slice of one Transformer block (and, when double-buffering,
  a second copy for the next block being prefetched),
* the KV-cache slice for **all** layers (it must persist across the whole
  forward pass in autoregressive and prompt modes),
* the resident activations of the block (inputs, partial outputs, and the
  larger of the attention-stage or FFN-stage working set),
* the runtime reserve of the chip (code, stacks, scratch), which is part of
  the chip model rather than of this footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph.transformer import TransformerConfig
from ..graph.workload import Workload
from .partition import ChipPartition


@dataclass(frozen=True)
class ActivationFootprint:
    """Peak resident activation bytes of one block on one chip."""

    input_bytes: int
    residual_bytes: int
    attention_working_bytes: int
    ffn_working_bytes: int
    partial_output_bytes: int

    @property
    def peak_bytes(self) -> int:
        """Peak simultaneously-live activation bytes."""
        stage = max(self.attention_working_bytes, self.ffn_working_bytes)
        return (
            self.input_bytes
            + self.residual_bytes
            + self.partial_output_bytes
            + stage
        )


@dataclass(frozen=True)
class ChipFootprint:
    """Memory requirements of one chip for one workload.

    Attributes:
        chip_id: The chip this footprint belongs to.
        block_weight_bytes: Weight slice of a single Transformer block.
        model_weight_bytes: Weight slices of all blocks combined.
        kv_cache_bytes: KV-cache slice across all layers.
        activations: Peak activation working set of one block.
    """

    chip_id: int
    block_weight_bytes: int
    model_weight_bytes: int
    kv_cache_bytes: int
    activations: ActivationFootprint

    @property
    def activation_bytes(self) -> int:
        """Peak resident activation bytes."""
        return self.activations.peak_bytes

    @property
    def persistent_bytes(self) -> int:
        """Bytes that must stay resident regardless of weight placement."""
        return self.kv_cache_bytes + self.activation_bytes

    def required_bytes(self, *, weight_copies: int = 1, whole_model: bool = False) -> int:
        """Total L2 bytes needed under a given weight-placement strategy.

        Args:
            weight_copies: 1 for single-buffered block weights, 2 when the
                next block's weights are double-buffered alongside.
            whole_model: If true, size for all blocks' weights resident at
                once (the 32/64-chip regime of the scalability study).
        """
        if whole_model:
            weights = self.model_weight_bytes
        else:
            weights = weight_copies * self.block_weight_bytes
        return weights + self.persistent_bytes


def activation_footprint(
    config: TransformerConfig, workload: Workload, chip: ChipPartition
) -> ActivationFootprint:
    """Compute the peak activation working set of one block on one chip."""
    act = config.act_dtype.size_bytes
    rows = workload.query_rows
    kv_rows = workload.new_kv_rows
    attended = workload.attended_positions
    embed = config.embed_dim
    proj = chip.num_heads * config.head_dim

    input_bytes = rows * embed * act
    residual_bytes = rows * embed * act
    partial_output_bytes = rows * embed * act

    kv_proj = chip.cached_kv_heads(config) * config.head_dim
    queries = rows * proj * act
    new_keys_values = 2 * kv_rows * kv_proj * act
    scores = chip.num_heads * rows * attended * act
    context = rows * proj * act
    attention_working = queries + new_keys_values + scores + context
    if config.cross_attention:
        # The cross-attention stage re-uses the query/context buffers'
        # shapes; only its score matrix adds to the stage peak.
        attention_working += chip.num_heads * rows * workload.cross_attended_positions * act

    if config.is_moe:
        # Every expert-holding chip routes the full broadcast activation
        # locally; experts run sequentially, so the peak intermediate is
        # one expert's load-balanced share.
        owned_experts = (
            chip.num_experts if chip.num_experts is not None else config.num_experts
        )
        router_probs = rows * config.num_experts * act
        expert_rows = config.moe_expert_rows(rows) if owned_experts > 0 else 0
        ffn_intermediate = expert_rows * chip.ffn_cols * act
        if config.num_ffn_matrices == 3:
            ffn_intermediate *= 2
        ffn_working = router_probs + ffn_intermediate
    else:
        ffn_intermediate = rows * chip.ffn_cols * act
        if config.num_ffn_matrices == 3:
            ffn_intermediate *= 2
        ffn_working = ffn_intermediate

    return ActivationFootprint(
        input_bytes=input_bytes,
        residual_bytes=residual_bytes,
        attention_working_bytes=attention_working,
        ffn_working_bytes=ffn_working,
        partial_output_bytes=partial_output_bytes,
    )


def chip_footprint(
    config: TransformerConfig, workload: Workload, chip: ChipPartition
) -> ChipFootprint:
    """Compute the full memory footprint of one chip for a workload."""
    block_weights = chip.weight_slice_bytes(config)
    kv_bytes = (
        chip.kv_cache(config, workload).total_bytes if workload.uses_kv_cache else 0
    )
    return ChipFootprint(
        chip_id=chip.chip_id,
        block_weight_bytes=block_weights,
        model_weight_bytes=block_weights * config.num_layers,
        kv_cache_bytes=kv_bytes,
        activations=activation_footprint(config, workload, chip),
    )
