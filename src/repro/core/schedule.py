"""Per-chip execution schedules.

A *schedule* is the ordered list of steps one chip executes for one
Transformer block: kernel invocations, blocking DMA loads, background
prefetches, and the point-to-point messages that make up the two
synchronisations.  Schedules are produced by
:class:`repro.core.scheduler.BlockScheduler` and executed by the
event-driven simulator in :mod:`repro.sim`, which turns them into runtime,
a runtime breakdown, and per-memory-level traffic counters.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import SchedulingError
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from .partition import BlockPartition
from .placement import MemoryPlan, PrefetchAccounting

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kernels.library import KernelLibrary


class RuntimeCategory(str, enum.Enum):
    """Breakdown categories matching Fig. 4 of the paper."""

    COMPUTE = "compute"
    DMA_L3_L2 = "dma_l3_l2"
    DMA_L2_L1 = "dma_l2_l1"
    CHIP_TO_CHIP = "chip_to_chip"
    IDLE = "idle"


class DmaChannelName(str, enum.Enum):
    """The two DMA channels of a chip."""

    L3_L2 = "l3_l2"
    L2_L1 = "l2_l1"


@dataclass(frozen=True)
class Step:
    """Base class of all schedule steps."""

    name: str


@dataclass(frozen=True)
class ComputeStep(Step):
    """A kernel invocation on the cluster.

    Attributes:
        compute_cycles: Cluster-busy cycles of the kernel.
        l2_l1_bytes: Bytes the cluster DMA moves between L2 and L1 for this
            kernel (operands, results, and one weight pass).
        overlap_dma: Whether the L2<->L1 staging is double-buffered with the
            computation (true when weights are on-chip resident) or
            serialised with it (the streamed regime).
    """

    compute_cycles: float
    l2_l1_bytes: float = 0.0
    overlap_dma: bool = True

    def __post_init__(self) -> None:
        if self.compute_cycles < 0 or self.l2_l1_bytes < 0:
            raise SchedulingError(f"step {self.name!r} has negative cost")


@dataclass(frozen=True)
class DmaStep(Step):
    """A blocking DMA transfer (the chip waits for completion).

    Attributes:
        channel: Which DMA channel the transfer uses.
        num_bytes: Transfer size.
        num_transfers: Number of separately-programmed transfers (each pays
            the channel's setup cost).
    """

    channel: DmaChannelName
    num_bytes: float
    num_transfers: int = 1

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise SchedulingError(f"step {self.name!r} has negative size")
        if self.num_transfers <= 0:
            raise SchedulingError(f"step {self.name!r} needs >= 1 transfers")


@dataclass(frozen=True)
class PrefetchStep(Step):
    """A background L3->L2 prefetch of the next block's weight slice.

    The prefetch starts when the step is reached and runs concurrently with
    later steps.  Whether its completion is awaited (and the exposed part
    charged to runtime) depends on the prefetch accounting policy, realised
    by emitting (or omitting) a :class:`PrefetchJoinStep` at the end of the
    schedule.
    """

    num_bytes: float

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise SchedulingError(f"step {self.name!r} has negative size")


@dataclass(frozen=True)
class PrefetchJoinStep(Step):
    """Wait for all outstanding prefetches issued by this chip."""


@dataclass(frozen=True)
class SendStep(Step):
    """Send a message to another chip over the chip-to-chip link.

    Attributes:
        dst: Receiving chip id.
        num_bytes: Payload size.
        tag: Rendezvous tag; the receiver's matching :class:`RecvStep` must
            use the same tag.
    """

    dst: int
    num_bytes: int
    tag: str

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise SchedulingError(f"step {self.name!r} has negative size")


@dataclass(frozen=True)
class RecvStep(Step):
    """Receive a message from another chip.

    Attributes:
        src: Sending chip id.
        num_bytes: Expected payload size.
        tag: Rendezvous tag matching the sender's :class:`SendStep`.
    """

    src: int
    num_bytes: int
    tag: str

    def __post_init__(self) -> None:
        if self.num_bytes < 0:
            raise SchedulingError(f"step {self.name!r} has negative size")


@dataclass(frozen=True)
class ChipSchedule:
    """The ordered steps one chip executes for one block."""

    chip_id: int
    steps: Tuple[Step, ...]

    @property
    def num_steps(self) -> int:
        """Number of steps in the schedule."""
        return len(self.steps)

    def steps_of_type(self, step_type) -> List[Step]:
        """Return all steps of a given type, in order."""
        return [step for step in self.steps if isinstance(step, step_type)]


@dataclass(frozen=True)
class BlockProgram:
    """Everything needed to simulate one Transformer block on the platform.

    Attributes:
        workload: The workload the program was built for.
        platform: The multi-chip platform it targets.
        partition: The tensor-parallel partition of the block.
        memory_plans: Per-chip weight-placement decisions.
        schedules: Per-chip step schedules (keyed by chip id).
        prefetch_accounting: The prefetch runtime-accounting policy used.
        kernel_library: The kernel cost models the schedules were priced
            with (kept so pickled programs can rebuild their schedules).
    """

    workload: Workload
    platform: MultiChipPlatform
    partition: BlockPartition
    memory_plans: Dict[int, MemoryPlan] = field(default_factory=dict)
    schedules: Dict[int, ChipSchedule] = field(default_factory=dict)
    prefetch_accounting: PrefetchAccounting = PrefetchAccounting.HIDDEN
    kernel_library: Optional["KernelLibrary"] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        expected = set(range(self.platform.num_chips))
        if set(self.schedules) != expected:
            raise SchedulingError(
                "program must contain exactly one schedule per platform chip"
            )
        if set(self.memory_plans) != expected:
            raise SchedulingError(
                "program must contain exactly one memory plan per platform chip"
            )
        self._validate_messaging()

    def _validate_messaging(self) -> None:
        """Check that every send has exactly one matching receive."""
        sends: Dict[Tuple[int, int, str], int] = {}
        recvs: Dict[Tuple[int, int, str], int] = {}
        for chip_id, schedule in self.schedules.items():
            for step in schedule.steps:
                if isinstance(step, SendStep):
                    key = (chip_id, step.dst, step.tag)
                    sends[key] = sends.get(key, 0) + 1
                elif isinstance(step, RecvStep):
                    key = (step.src, chip_id, step.tag)
                    recvs[key] = recvs.get(key, 0) + 1
        if sends != recvs:
            unmatched_sends = {k: v for k, v in sends.items() if recvs.get(k) != v}
            unmatched_recvs = {k: v for k, v in recvs.items() if sends.get(k) != v}
            raise SchedulingError(
                "unmatched chip-to-chip messages: "
                f"sends without receives {unmatched_sends}, "
                f"receives without sends {unmatched_recvs}"
            )

    # ------------------------------------------------------------------
    # Compact pickling
    # ------------------------------------------------------------------
    # The step schedules dominate a pickled program (tens of kilobytes of
    # small step objects on large systems).  When the program was built
    # by the scheduler (which marks it — see BlockScheduler.build) they
    # are a pure deterministic function of the remaining fields, so they
    # are dropped from the pickle and rebuilt on first access; hand-built
    # programs keep their schedules verbatim.  The per-chip memory plans
    # are flattened to value rows and rebuilt in one batch.  This is what
    # keeps the persistent evaluation cache (`repro.api.cache`) and
    # process-pool result transfers cheap.
    def __getstate__(self) -> Dict:
        state = dict(self.__dict__)
        if state.pop("_schedules_are_canonical", False):
            state.pop("schedules", None)
            state["_schedules_are_canonical"] = True
        plans = state.pop("memory_plans", None)
        if plans is not None:
            state["_packed_memory_plans"] = tuple(
                (
                    plan.chip_id,
                    plan.residency,
                    plan.l2_budget_bytes,
                    plan.required_bytes,
                    plan.block_weight_bytes,
                    plan.l3_weight_bytes_per_block,
                )
                for plan in plans.values()
            )
        return state

    def __getattr__(self, name: str):
        if name == "schedules":
            from .scheduler import BlockScheduler

            scheduler = BlockScheduler(
                platform=self.platform,
                kernel_library=self.kernel_library,
                prefetch_accounting=self.prefetch_accounting,
            )
            rebuilt = scheduler.build(self.workload, self.partition).schedules
            object.__setattr__(self, "schedules", rebuilt)
            return rebuilt
        if name == "memory_plans":
            packed = self.__dict__.get("_packed_memory_plans")
            if packed is not None:
                plans = {}
                for chip_id, residency, budget, required, block, l3 in packed:
                    plan = MemoryPlan.__new__(MemoryPlan)
                    plan.__dict__.update(
                        chip_id=chip_id,
                        residency=residency,
                        l2_budget_bytes=budget,
                        required_bytes=required,
                        block_weight_bytes=block,
                        l3_weight_bytes_per_block=l3,
                    )
                    plans[chip_id] = plan
                object.__setattr__(self, "memory_plans", plans)
                return plans
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @property
    def chip_ids(self) -> List[int]:
        """Chip ids covered by the program, in order."""
        return sorted(self.schedules)

    def schedule(self, chip_id: int) -> ChipSchedule:
        """Return the schedule of one chip."""
        if chip_id not in self.schedules:
            raise SchedulingError(f"no schedule for chip {chip_id}")
        return self.schedules[chip_id]

    def memory_plan(self, chip_id: int) -> MemoryPlan:
        """Return the memory plan of one chip."""
        if chip_id not in self.memory_plans:
            raise SchedulingError(f"no memory plan for chip {chip_id}")
        return self.memory_plans[chip_id]

    @property
    def total_c2c_bytes(self) -> int:
        """Total chip-to-chip payload bytes of the program."""
        total = 0
        for schedule in self.schedules.values():
            for step in schedule.steps:
                if isinstance(step, SendStep):
                    total += step.num_bytes
        return total
