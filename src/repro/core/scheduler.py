"""Block scheduler: turns a partition into per-chip execution schedules.

The scheduler stitches together everything built so far:

1. the tensor-parallel :class:`~repro.core.partition.BlockPartition`
   (who owns which heads and FFN columns),
2. each chip's :class:`~repro.core.placement.MemoryPlan`
   (where its weights live),
3. the kernel cost models (how long each operator takes and how much
   L2<->L1 traffic it generates),
4. the hierarchical collective plans (the two synchronisations per block),

and emits a :class:`~repro.core.schedule.BlockProgram` that the
event-driven simulator executes.  The schedule it builds for one block is
exactly the paper's execution scheme (Sec. IV and Fig. 3):

* every chip computes its partial MHSA (Q/K/V projections for its heads,
  attention, output projection slice),
* the partial outputs are reduced hierarchically onto the root chip, which
  merges the residual, applies the normalisation, and broadcasts the
  result,
* every chip computes its FFN slice, followed by the second
  reduce / residual / normalisation / broadcast,
* depending on the weight-residency regime, weights are streamed from L3,
  loaded per block, or prefetched for the next block in the background.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..errors import SchedulingError
from ..graph.ops import ElementwiseKind, ElementwiseOp, NormOp, Operator
from ..graph.transformer import BlockSlice, build_block_operators
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from ..kernels.library import KernelLibrary
from .collectives import CollectivePlan, hierarchical_all_reduce, hierarchical_broadcast
from .footprint import chip_footprint
from .partition import BlockPartition, ChipPartition, partition_block
from .placement import MemoryPlan, PrefetchAccounting, WeightResidency, plan_memory
from .schedule import (
    BlockProgram,
    ChipSchedule,
    ComputeStep,
    DmaChannelName,
    DmaStep,
    PrefetchJoinStep,
    PrefetchStep,
    RecvStep,
    SendStep,
    Step,
)

#: Tile size used when streaming or loading weights over the L3 interface;
#: each tile pays the off-chip channel's per-transaction setup cost.
L3_STREAM_TILE_BYTES = 64 * 1024


@dataclass
class BlockScheduler:
    """Builds :class:`BlockProgram` instances for a platform.

    Attributes:
        platform: The multi-chip platform to schedule for.
        kernel_library: Kernel cost models; defaults to a library built on
            the platform's cluster.
        prefetch_accounting: How double-buffered prefetches are charged to
            runtime (see :class:`PrefetchAccounting`).
    """

    platform: MultiChipPlatform
    kernel_library: Optional[KernelLibrary] = None
    prefetch_accounting: PrefetchAccounting = PrefetchAccounting.HIDDEN
    _library: KernelLibrary = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._library = self.kernel_library or KernelLibrary(
            cluster=self.platform.chip.cluster
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def build(
        self,
        workload: Workload,
        partition: Optional[BlockPartition] = None,
    ) -> BlockProgram:
        """Build the program for one Transformer block of ``workload``.

        Args:
            workload: The inference workload to schedule.
            partition: Optional pre-built partition; by default the block is
                partitioned across all chips of the platform with
                :func:`repro.core.partition.partition_block`.

        Raises:
            SchedulingError: If the partition does not match the platform.
        """
        config = workload.config
        if partition is None:
            partition = partition_block(config, self.platform.num_chips)
        if partition.num_chips != self.platform.num_chips:
            raise SchedulingError(
                f"partition covers {partition.num_chips} chips but the platform "
                f"has {self.platform.num_chips}"
            )

        reduce_bytes = (
            workload.query_rows * config.embed_dim * config.act_dtype.size_bytes
        )
        all_reduce = hierarchical_all_reduce(self.platform, reduce_bytes)
        broadcast = hierarchical_broadcast(self.platform, reduce_bytes)

        # The two synchronisations are assembled once for the whole
        # platform (one pass over the collective plans, bucketed per
        # chip) instead of re-scanning every transfer for every chip.
        sync_steps = {
            stage: self._synchronisation_steps_by_chip(
                stage, workload, partition, all_reduce, broadcast
            )
            for stage in ("attn", "ffn")
        }

        # Chips with the same partition slice produce identical memory
        # plans and local (kernel/staging) steps, so those are built once
        # per unique slice and shared; steps are immutable, and the plan
        # only needs its chip id rebound.
        slice_cache: Dict[tuple, tuple] = {}
        memory_plans: Dict[int, MemoryPlan] = {}
        schedules: Dict[int, ChipSchedule] = {}
        for chip in partition.chips:
            slice_key = (
                chip.num_heads,
                chip.kv_heads,
                chip.ffn_cols,
                chip.num_experts,
            )
            cached = slice_cache.get(slice_key)
            if cached is None:
                footprint = chip_footprint(config, workload, chip)
                plan = plan_memory(self.platform.chip, footprint)
                cached = (plan, self._local_steps(workload, chip, plan))
                slice_cache[slice_key] = cached
            plan, local = cached
            if plan.chip_id != chip.chip_id:
                plan = replace(plan, chip_id=chip.chip_id)
            memory_plans[chip.chip_id] = plan
            staging, attn, ffn, tail = local
            steps = (
                staging
                + attn
                + sync_steps["attn"][chip.chip_id]
                + ffn
                + sync_steps["ffn"][chip.chip_id]
                + tail
            )
            schedules[chip.chip_id] = ChipSchedule(
                chip_id=chip.chip_id, steps=tuple(steps)
            )

        program = BlockProgram(
            workload=workload,
            platform=self.platform,
            partition=partition,
            memory_plans=memory_plans,
            schedules=schedules,
            prefetch_accounting=self.prefetch_accounting,
            kernel_library=self._library,
        )
        # Scheduler-built schedules are a deterministic function of the
        # program's other fields, so pickling may drop and rebuild them
        # (see BlockProgram.__getstate__); hand-built programs lack the
        # mark and serialise their schedules in full.
        object.__setattr__(program, "_schedules_are_canonical", True)
        return program

    # ------------------------------------------------------------------
    # Per-chip schedule construction
    # ------------------------------------------------------------------
    def _local_steps(
        self,
        workload: Workload,
        chip: ChipPartition,
        plan: MemoryPlan,
    ) -> tuple:
        """The chip-local step groups of one slice, in schedule order.

        Returns ``(staging, attn, ffn, tail)``; everything here depends
        only on the chip's slice (head and FFN-column counts), so chips
        with equal slices share one instance of each group.
        """
        config = workload.config
        streamed = plan.residency is WeightResidency.STREAMED
        # Expert step names use indices relative to the chip (expert0..n-1):
        # chips owning equally many experts at different offsets share
        # identical step lists, which keeps the slice cache effective.
        operators = build_block_operators(
            config,
            query_rows=workload.query_rows,
            kv_rows=workload.new_kv_rows,
            attended_positions=workload.attended_positions,
            slice_=BlockSlice(
                num_heads=chip.num_heads,
                ffn_cols=chip.ffn_cols,
                holds_norms=False,
                holds_residual=False,
                kv_heads=chip.kv_heads,
                num_experts=chip.num_experts,
            ),
            cross_attended_positions=workload.cross_attended_positions,
        )
        tail: List[Step] = []
        if (
            plan.residency is WeightResidency.DOUBLE_BUFFERED
            and self.prefetch_accounting is PrefetchAccounting.OVERLAP
        ):
            tail.append(PrefetchJoinStep(name="weights.prefetch_join"))
        return (
            self._weight_staging_steps(plan),
            self._stage_steps("attn", operators.attention, streamed),
            self._stage_steps("ffn", operators.ffn, streamed),
            tail,
        )

    def _weight_staging_steps(self, plan: MemoryPlan) -> List[Step]:
        """Steps that bring the block's weights on-chip (or start doing so)."""
        if plan.l3_weight_bytes_per_block == 0:
            return []
        transfers = max(
            1, math.ceil(plan.block_weight_bytes / L3_STREAM_TILE_BYTES)
        )
        if plan.residency is WeightResidency.SINGLE_BUFFERED:
            return [
                DmaStep(
                    name="weights.load_block",
                    channel=DmaChannelName.L3_L2,
                    num_bytes=plan.block_weight_bytes,
                    num_transfers=transfers,
                )
            ]
        if plan.residency is WeightResidency.DOUBLE_BUFFERED:
            if self.prefetch_accounting is PrefetchAccounting.BLOCKING:
                return [
                    DmaStep(
                        name="weights.load_block",
                        channel=DmaChannelName.L3_L2,
                        num_bytes=plan.block_weight_bytes,
                        num_transfers=transfers,
                    )
                ]
            return [
                PrefetchStep(
                    name="weights.prefetch_next_block",
                    num_bytes=plan.block_weight_bytes,
                )
            ]
        # STREAMED: weights are fetched per operator inside the stages.
        return []

    def _stage_steps(
        self, stage: str, operators: List[Operator], streamed: bool
    ) -> List[Step]:
        """Kernel (and, when streaming, weight-fetch) steps of one stage."""
        steps: List[Step] = []
        for op in operators:
            cost = self._library.cost(op)
            if streamed and cost.weight_bytes > 0:
                stream_bytes = cost.streamed_weight_bytes
                transfers = max(1, math.ceil(stream_bytes / L3_STREAM_TILE_BYTES))
                steps.append(
                    DmaStep(
                        name=f"{stage}.{op.name}.stream_weights",
                        channel=DmaChannelName.L3_L2,
                        num_bytes=stream_bytes,
                        num_transfers=transfers,
                    )
                )
            steps.append(
                ComputeStep(
                    name=f"{stage}.{op.name}",
                    compute_cycles=cost.compute_cycles,
                    l2_l1_bytes=cost.l2_l1_bytes,
                    overlap_dma=not streamed,
                )
            )
        return steps

    def _synchronisation_steps_by_chip(
        self,
        stage: str,
        workload: Workload,
        partition: BlockPartition,
        all_reduce: CollectivePlan,
        broadcast: CollectivePlan,
    ) -> Dict[int, List[Step]]:
        """One of the block's two synchronisations, for every chip at once.

        Consists of the hierarchical all-reduce (with per-message
        accumulation on the receivers), the residual merge and
        normalisation on the root chip, and the hierarchical broadcast.
        In the single-chip case only the residual and normalisation
        remain.  The collective plans are walked once, appending each
        transfer to its two endpoint chips, so building all schedules is
        linear in the number of transfers instead of quadratic in the
        chip count.
        """
        config = workload.config
        rows = workload.query_rows
        steps_by_chip: Dict[int, List[Step]] = {
            chip.chip_id: [] for chip in partition.chips
        }

        # Every accumulation has the same shape; price it once and only
        # vary the step name (which appears in traces) per source chip.
        accumulate_cost = self._library.cost(
            ElementwiseOp(
                name=f"{stage}.reduce_accumulate",
                rows=rows,
                cols=config.embed_dim,
                kind=ElementwiseKind.ADD,
                act_dtype=config.act_dtype,
            )
        )

        for round_index, round_ in enumerate(all_reduce.rounds):
            for transfer in round_.transfers:
                tag = f"{stage}.reduce.r{round_index}.{transfer.src}->{transfer.dst}"
                steps_by_chip[transfer.src].append(
                    SendStep(
                        name=f"{stage}.reduce.send_to_{transfer.dst}",
                        dst=transfer.dst,
                        num_bytes=transfer.num_bytes,
                        tag=tag,
                    )
                )
                if transfer.dst == transfer.src:
                    continue
                receiver_steps = steps_by_chip[transfer.dst]
                receiver_steps.append(
                    RecvStep(
                        name=f"{stage}.reduce.recv_from_{transfer.src}",
                        src=transfer.src,
                        num_bytes=transfer.num_bytes,
                        tag=tag,
                    )
                )
                receiver_steps.append(
                    ComputeStep(
                        name=f"{stage}.reduce_accumulate_from_{transfer.src}",
                        compute_cycles=accumulate_cost.compute_cycles,
                        l2_l1_bytes=accumulate_cost.l2_l1_bytes,
                        overlap_dma=True,
                    )
                )

        residual = ElementwiseOp(
            name=f"{stage}.residual_add",
            rows=rows,
            cols=config.embed_dim,
            kind=ElementwiseKind.ADD,
            act_dtype=config.act_dtype,
        )
        norm = NormOp(
            name=f"{stage}.norm",
            rows=rows,
            cols=config.embed_dim,
            kind=config.norm_kind,
            act_dtype=config.act_dtype,
        )
        merge_steps = [
            ComputeStep(
                name=op.name,
                compute_cycles=cost.compute_cycles,
                l2_l1_bytes=cost.l2_l1_bytes,
                overlap_dma=True,
            )
            for op in (residual, norm)
            for cost in (self._library.cost(op),)
        ]
        for chip in partition.chips:
            if chip.is_reduce_root:
                steps_by_chip[chip.chip_id].extend(merge_steps)

        for round_index, round_ in enumerate(broadcast.rounds):
            for transfer in round_.transfers:
                tag = f"{stage}.bcast.r{round_index}.{transfer.src}->{transfer.dst}"
                steps_by_chip[transfer.src].append(
                    SendStep(
                        name=f"{stage}.bcast.send_to_{transfer.dst}",
                        dst=transfer.dst,
                        num_bytes=transfer.num_bytes,
                        tag=tag,
                    )
                )
                if transfer.dst == transfer.src:
                    continue
                steps_by_chip[transfer.dst].append(
                    RecvStep(
                        name=f"{stage}.bcast.recv_from_{transfer.src}",
                        src=transfer.src,
                        num_bytes=transfer.num_bytes,
                        tag=tag,
                    )
                )
        return steps_by_chip
