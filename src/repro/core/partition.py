"""Tensor-parallel partitioning of a Transformer block across chips.

This module implements the paper's core contribution (Sec. IV):

* the Q/K/V/output projection weights are split along the **attention head
  dimension**, so each chip owns a disjoint subset of heads and computes
  its heads' attention entirely locally;
* the two (or three) FFN matrices are split along the **intermediate
  dimension** ``F``, so each chip owns a disjoint slice of FFN columns;
* no weight tensor is replicated on more than one chip;
* the block needs exactly **two synchronisations**: a hierarchical
  all-reduce (fused with the residual add) followed by a broadcast after
  the attention output projection, and the same after the FFN down
  projection.

The partitioner only decides *who owns what*; the communication plan is
built by :mod:`repro.core.collectives` and the per-chip execution schedule
by :mod:`repro.core.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import PartitioningError
from ..graph.kvcache import KVCacheSpec, kv_cache_for_slice
from ..graph.transformer import BlockSlice, TransformerConfig, slice_weight_bytes
from ..graph.workload import Workload


def split_evenly(total: int, parts: int) -> List[int]:
    """Split ``total`` units into ``parts`` contiguous, near-equal shares.

    The first ``total % parts`` shares receive one extra unit, which keeps
    the maximum imbalance at a single unit.

    Raises:
        PartitioningError: If ``parts`` is not positive or ``total`` negative.
    """
    if parts <= 0:
        raise PartitioningError(f"cannot split into {parts} parts")
    if total < 0:
        raise PartitioningError(f"cannot split a negative total ({total})")
    base, remainder = divmod(total, parts)
    return [base + 1 if index < remainder else base for index in range(parts)]


def kv_head_coverage(config: TransformerConfig, head_offset: int, num_heads: int) -> int:
    """KV heads a chip owning query heads ``[offset, offset+n)`` must hold.

    For MHA (one KV head per query head) this equals ``num_heads``.  For
    GQA/MQA a KV head is shared by ``heads_per_kv_group`` query heads, so a
    chip covers every group its query range touches; when a group straddles
    a chip boundary both chips hold that KV head.  This bounded boundary
    replication is the standard trade-off of head-dimension tensor
    parallelism over grouped attention — the alternative (routing shared
    KV rows between chips every token) would break the paper's
    two-synchronisations-per-block structure.
    """
    if num_heads <= 0:
        return 0
    group = config.heads_per_kv_group
    first_group = head_offset // group
    last_group = (head_offset + num_heads - 1) // group
    return last_group - first_group + 1


@dataclass(frozen=True)
class ChipPartition:
    """The portion of one Transformer block owned by one chip.

    Attributes:
        chip_id: Index of the chip in the platform.
        num_heads: Attention heads owned by this chip.
        head_offset: Index of this chip's first head in the full model.
        ffn_cols: FFN intermediate columns owned by this chip (for MoE
            models: the per-expert intermediate width, experts being
            assigned whole).
        ffn_col_offset: Index of this chip's first FFN column (0 for MoE).
        is_reduce_root: Whether this chip is the root of the hierarchical
            reduction (it applies the residual and the normalisation).
        kv_heads: KV heads this chip materialises (projections + cache).
            ``None`` falls back to the conservative per-query-head width;
            :func:`partition_block` always records the exact coverage.
        num_experts: FFN experts owned by this chip (``None`` = all).
        expert_offset: Index of this chip's first expert.
    """

    chip_id: int
    num_heads: int
    head_offset: int
    ffn_cols: int
    ffn_col_offset: int
    is_reduce_root: bool
    kv_heads: Optional[int] = None
    num_experts: Optional[int] = None
    expert_offset: int = 0

    def block_slice(self) -> BlockSlice:
        """The graph-level slice description for this chip."""
        return BlockSlice(
            num_heads=self.num_heads,
            ffn_cols=self.ffn_cols,
            holds_norms=self.is_reduce_root,
            holds_residual=self.is_reduce_root,
            kv_heads=self.kv_heads,
            num_experts=self.num_experts,
        )

    def cached_kv_heads(self, config: TransformerConfig) -> int:
        """KV heads this chip caches (exact when set, else conservative)."""
        if self.kv_heads is not None:
            return self.kv_heads
        return min(self.num_heads, config.kv_heads)

    def weight_slice_bytes(self, config: TransformerConfig) -> int:
        """Deployment bytes of this chip's weight slice for one block."""
        return slice_weight_bytes(config, self.block_slice())

    def kv_cache(self, config: TransformerConfig, workload: Workload) -> KVCacheSpec:
        """KV-cache slice this chip must keep resident for the workload."""
        return kv_cache_for_slice(
            config,
            max_positions=workload.kv_cache_positions,
            num_heads=self.cached_kv_heads(config),
        )


@dataclass(frozen=True)
class BlockPartition:
    """A complete partitioning of one Transformer block across ``N`` chips.

    Attributes:
        config: The model configuration being partitioned.
        num_chips: Number of chips.
        chips: Per-chip ownership descriptions, ordered by chip id.
    """

    config: TransformerConfig
    num_chips: int
    chips: Tuple[ChipPartition, ...]

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Compact pickling
    # ------------------------------------------------------------------
    # Partitions built by :func:`partition_block` with the default root
    # (which marks them) are a deterministic function of (config,
    # num_chips), so their per-chip shares are dropped from the pickle
    # and rebuilt on first access; hand-crafted partitions are
    # serialised in full.  This keeps persistent-cache entries and
    # process-pool transfers small.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        if state.pop("_chips_are_canonical", False):
            state.pop("chips", None)
            state["_chips_are_canonical"] = True
        return state

    def __getattr__(self, name: str):
        if name == "chips":
            chips = partition_block(self.config, self.num_chips).chips
            object.__setattr__(self, "chips", chips)
            return chips
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the paper's structural invariants.

        * every head is owned by exactly one chip (query/output projection
          weights are scattered, never duplicated);
        * dense models: every FFN column is owned by exactly one chip;
          MoE models: every expert is owned by exactly one chip (whole)
          and each expert-holding chip carries the full per-expert width;
        * chip ids are ``0..num_chips-1`` in order;
        * exactly one chip is the reduction root.

        KV-head coverage is only bounds-checked here: GQA group boundaries
        legitimately replicate a KV head on two chips, so exact coverage
        is the builder's responsibility (see :func:`kv_head_coverage`).

        Raises:
            PartitioningError: If any invariant is violated.
        """
        if len(self.chips) != self.num_chips:
            raise PartitioningError(
                f"partition lists {len(self.chips)} chips, expected {self.num_chips}"
            )
        for index, chip in enumerate(self.chips):
            if chip.chip_id != index:
                raise PartitioningError(
                    f"chip entry {index} has id {chip.chip_id}; ids must be ordered"
                )
        if sum(chip.num_heads for chip in self.chips) != self.config.num_heads:
            raise PartitioningError("attention heads are not covered exactly once")
        self._check_disjoint(
            [(chip.head_offset, chip.num_heads) for chip in self.chips],
            total=self.config.num_heads,
            what="head",
        )
        for chip in self.chips:
            if chip.kv_heads is not None and not (
                0 <= chip.kv_heads <= self.config.kv_heads
            ):
                raise PartitioningError(
                    f"chip {chip.chip_id} claims {chip.kv_heads} KV heads; the "
                    f"model has {self.config.kv_heads}"
                )
        if self.config.is_moe:
            expert_ranges = []
            for chip in self.chips:
                if chip.num_experts is None:
                    raise PartitioningError(
                        "MoE partitions must state each chip's expert "
                        "ownership explicitly"
                    )
                if chip.num_experts > 0 and chip.ffn_cols != self.config.ffn_dim:
                    raise PartitioningError(
                        f"chip {chip.chip_id} holds {chip.ffn_cols} FFN columns; "
                        "experts are assigned whole, so expert-holding chips "
                        f"carry the full per-expert width {self.config.ffn_dim}"
                    )
                expert_ranges.append((chip.expert_offset, chip.num_experts))
            self._check_disjoint(
                expert_ranges, total=self.config.num_experts, what="expert"
            )
        else:
            if sum(chip.ffn_cols for chip in self.chips) != self.config.ffn_dim:
                raise PartitioningError("FFN columns are not covered exactly once")
            self._check_disjoint(
                [(chip.ffn_col_offset, chip.ffn_cols) for chip in self.chips],
                total=self.config.ffn_dim,
                what="FFN column",
            )
        roots = [chip for chip in self.chips if chip.is_reduce_root]
        if len(roots) != 1:
            raise PartitioningError(
                f"exactly one reduction root expected, found {len(roots)}"
            )

    @staticmethod
    def _check_disjoint(ranges, total: int, what: str) -> None:
        covered = [False] * total
        for offset, length in ranges:
            for index in range(offset, offset + length):
                if index < 0 or index >= total:
                    raise PartitioningError(f"{what} index {index} out of range")
                if covered[index]:
                    raise PartitioningError(f"{what} {index} assigned to two chips")
                covered[index] = True
        if not all(covered):
            missing = covered.index(False)
            raise PartitioningError(f"{what} {missing} assigned to no chip")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def reduce_root(self) -> ChipPartition:
        """The chip that applies residuals and normalisations."""
        for chip in self.chips:
            if chip.is_reduce_root:
                return chip
        raise PartitioningError("partition has no reduction root")

    def chip(self, chip_id: int) -> ChipPartition:
        """Return the partition entry of one chip."""
        if not 0 <= chip_id < self.num_chips:
            raise PartitioningError(
                f"chip id {chip_id} out of range for {self.num_chips} chips"
            )
        return self.chips[chip_id]

    def weight_bytes_per_chip(self) -> List[int]:
        """Per-chip weight bytes of one block (no replication by design)."""
        return [chip.weight_slice_bytes(self.config) for chip in self.chips]

    def total_weight_bytes(self) -> int:
        """Sum of all chips' block weight slices.

        For MHA/dense models the scheme never replicates weights, so this
        equals the un-partitioned block weight footprint (the property test
        suite checks this identity).  GQA group boundaries and the MoE
        router add bounded replication, so the sum may exceed the
        un-partitioned footprint for those models.
        """
        return sum(self.weight_bytes_per_chip())

    def max_weight_imbalance(self) -> float:
        """Ratio of the largest to the smallest per-chip weight slice."""
        per_chip = self.weight_bytes_per_chip()
        smallest = min(per_chip)
        if smallest == 0:
            return float("inf")
        return max(per_chip) / smallest


def partition_block(
    config: TransformerConfig,
    num_chips: int,
    *,
    reduce_root: int = 0,
) -> BlockPartition:
    """Partition one Transformer block across ``num_chips`` chips.

    Heads and FFN columns are distributed in contiguous, near-equal shares.
    The paper assumes the head count is divisible by the chip count; this
    implementation also accepts non-divisible configurations (the first
    chips receive one extra head), but refuses to use more chips than there
    are attention heads, because a chip without any head would break the
    "two synchronisations per block" structure.

    Architecture extensions reuse the same two-sync structure:

    * GQA/MQA: each chip additionally records the KV heads its query range
      covers (:func:`kv_head_coverage`; group-straddling boundaries
      replicate one KV head on two chips).
    * MoE: the expert dimension replaces the FFN-column dimension — whole
      experts are distributed in contiguous near-equal shares, every
      expert-holding chip keeps the full per-expert width, and no more
      chips than experts are allowed.

    Args:
        config: Model configuration.
        num_chips: Number of chips to partition across.
        reduce_root: Chip on which reductions terminate (0 by default,
            matching the hierarchical grouping of the platform).

    Raises:
        PartitioningError: If the partitioning cannot be built.
    """
    if num_chips <= 0:
        raise PartitioningError("num_chips must be positive")
    if num_chips > config.num_heads:
        raise PartitioningError(
            f"cannot distribute {config.num_heads} attention heads across "
            f"{num_chips} chips without leaving chips idle; the paper's "
            "scalability study increases the head count instead"
        )
    if config.is_moe:
        if num_chips > config.num_experts:
            raise PartitioningError(
                f"cannot distribute {config.num_experts} experts across "
                f"{num_chips} chips; experts are assigned whole"
            )
    elif num_chips > config.ffn_dim:
        raise PartitioningError(
            f"cannot distribute {config.ffn_dim} FFN columns across {num_chips} chips"
        )
    if not 0 <= reduce_root < num_chips:
        raise PartitioningError(
            f"reduce_root {reduce_root} out of range for {num_chips} chips"
        )

    head_shares = split_evenly(config.num_heads, num_chips)
    if config.is_moe:
        expert_shares = split_evenly(config.num_experts, num_chips)
        ffn_shares = [config.ffn_dim] * num_chips
    else:
        expert_shares = None
        ffn_shares = split_evenly(config.ffn_dim, num_chips)
    chips: List[ChipPartition] = []
    head_offset = 0
    ffn_offset = 0
    expert_offset = 0
    for chip_id in range(num_chips):
        num_heads = head_shares[chip_id]
        chips.append(
            ChipPartition(
                chip_id=chip_id,
                num_heads=num_heads,
                head_offset=head_offset,
                ffn_cols=ffn_shares[chip_id],
                ffn_col_offset=0 if config.is_moe else ffn_offset,
                is_reduce_root=(chip_id == reduce_root),
                kv_heads=kv_head_coverage(config, head_offset, num_heads),
                num_experts=expert_shares[chip_id] if expert_shares else None,
                expert_offset=expert_offset if expert_shares else 0,
            )
        )
        head_offset += num_heads
        if expert_shares:
            expert_offset += expert_shares[chip_id]
        else:
            ffn_offset += ffn_shares[chip_id]
    partition = BlockPartition(
        config=config, num_chips=num_chips, chips=tuple(chips)
    )
    if reduce_root == 0:
        # Default-root partitions are exactly what __getattr__ rebuilds,
        # so pickling may drop the per-chip shares (see __getstate__).
        object.__setattr__(partition, "_chips_are_canonical", True)
    return partition
