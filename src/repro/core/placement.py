"""Weight placement: deciding where a chip's weights live.

Given a chip's memory footprint and its L2 budget, the placement logic
selects one of four regimes, ordered from best to worst:

* ``ALL_RESIDENT`` — every block's weight slice fits on-chip at once.  No
  steady-state L3 traffic at all; this is the 32/64-chip regime of the
  paper's scalability study, where "double-buffering is no longer required,
  resulting in a further energy reduction".
* ``DOUBLE_BUFFERED`` — one block's slice fits twice, so the next block's
  weights are prefetched from L3 while the current block executes.  L3
  traffic (and its energy) remains, but it overlaps with computation.
* ``SINGLE_BUFFERED`` — one block's slice fits, but there is no room for a
  prefetch buffer; the block's weights are loaded from L3 *before* the
  block executes, exposing the full transfer latency.
* ``STREAMED`` — even a single block's slice does not fit; weights stream
  through L2 during execution, serialising off-chip transfers with
  computation (and, for multi-row GEMMs, re-streaming the weights once per
  row tile).

The prefetch *accounting policy* controls how the double-buffered regime's
L3 transfers are charged to runtime; see :class:`PrefetchAccounting`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..hw.chip import ChipModel
from .footprint import ChipFootprint


class WeightResidency(str, enum.Enum):
    """Where a chip's weights live during block execution."""

    ALL_RESIDENT = "all_resident"
    DOUBLE_BUFFERED = "double_buffered"
    SINGLE_BUFFERED = "single_buffered"
    STREAMED = "streamed"

    @property
    def is_on_chip(self) -> bool:
        """Whether the current block executes with on-chip-resident weights."""
        return self in (
            WeightResidency.ALL_RESIDENT,
            WeightResidency.DOUBLE_BUFFERED,
            WeightResidency.SINGLE_BUFFERED,
        )


class PrefetchAccounting(str, enum.Enum):
    """How double-buffered L3 prefetches are charged to runtime.

    ``HIDDEN`` reproduces the paper's accounting: the prefetch of the next
    block's weights is assumed to overlap fully with the current block's
    execution, so it contributes energy but no runtime.  ``OVERLAP`` is the
    conservative policy: only the part of the prefetch that exceeds the
    block's execution time is charged.  ``BLOCKING`` charges the full
    prefetch, as if double-buffering were disabled.
    """

    HIDDEN = "hidden"
    OVERLAP = "overlap"
    BLOCKING = "blocking"


@dataclass(frozen=True)
class MemoryPlan:
    """The placement decision for one chip.

    Attributes:
        chip_id: Chip this plan belongs to.
        residency: Selected weight-residency regime.
        l2_budget_bytes: L2 bytes available for model data on the chip.
        required_bytes: L2 bytes the selected regime occupies.
        block_weight_bytes: Weight slice of one block (convenience copy).
        l3_weight_bytes_per_block: Weight bytes crossing the L3 interface
            per block in steady state (0 when all weights are resident).
    """

    chip_id: int
    residency: WeightResidency
    l2_budget_bytes: int
    required_bytes: int
    block_weight_bytes: int
    l3_weight_bytes_per_block: int

    @property
    def utilisation(self) -> float:
        """Fraction of the L2 budget occupied by the selected regime."""
        if self.l2_budget_bytes <= 0:
            return float("inf")
        return self.required_bytes / self.l2_budget_bytes


def plan_memory(chip_model: ChipModel, footprint: ChipFootprint) -> MemoryPlan:
    """Select the weight-residency regime for one chip.

    The regimes are tried from best to worst and the first one whose
    footprint fits in the chip's available L2 is selected.  ``STREAMED`` is
    the fallback and is always accepted (its resident footprint is just the
    persistent data plus a streaming buffer the runtime reserve accounts
    for).
    """
    budget = chip_model.l2_available_bytes
    block_bytes = footprint.block_weight_bytes

    all_resident = footprint.required_bytes(whole_model=True)
    if all_resident <= budget:
        return MemoryPlan(
            chip_id=footprint.chip_id,
            residency=WeightResidency.ALL_RESIDENT,
            l2_budget_bytes=budget,
            required_bytes=all_resident,
            block_weight_bytes=block_bytes,
            l3_weight_bytes_per_block=0,
        )

    double_buffered = footprint.required_bytes(weight_copies=2)
    if double_buffered <= budget:
        return MemoryPlan(
            chip_id=footprint.chip_id,
            residency=WeightResidency.DOUBLE_BUFFERED,
            l2_budget_bytes=budget,
            required_bytes=double_buffered,
            block_weight_bytes=block_bytes,
            l3_weight_bytes_per_block=block_bytes,
        )

    single_buffered = footprint.required_bytes(weight_copies=1)
    if single_buffered <= budget:
        return MemoryPlan(
            chip_id=footprint.chip_id,
            residency=WeightResidency.SINGLE_BUFFERED,
            l2_budget_bytes=budget,
            required_bytes=single_buffered,
            block_weight_bytes=block_bytes,
            l3_weight_bytes_per_block=block_bytes,
        )

    return MemoryPlan(
        chip_id=footprint.chip_id,
        residency=WeightResidency.STREAMED,
        l2_budget_bytes=budget,
        required_bytes=footprint.persistent_bytes,
        block_weight_bytes=block_bytes,
        l3_weight_bytes_per_block=block_bytes,
    )
