"""Hierarchical collective communication plans.

The partitioning scheme needs exactly two synchronisations per Transformer
block, each consisting of an **all-reduce** of the partial outputs followed
by a **broadcast** of the normalised result.  Because an all-to-one
reduction does not scale, the paper performs the reduction hierarchically
in groups of four chips (Fig. 1): members of each group send their partial
tensors to the group leader, leaders form groups of four at the next level,
and so on until the root holds the full sum; the broadcast reverses the
same tree.

A plan is a list of *rounds*; transfers inside one round target distinct
receivers and can proceed in parallel over independent links, while
transfers that converge on the same receiver are serialised by the
simulator (one ingress port per chip).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from ..hw.platform import MultiChipPlatform


@dataclass(frozen=True)
class Transfer:
    """One point-to-point message.

    Attributes:
        src: Sending chip id.
        dst: Receiving chip id.
        num_bytes: Payload size in bytes.
    """

    src: int
    dst: int
    num_bytes: int

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ConfigurationError("chip ids must be non-negative")
        if self.src == self.dst:
            raise ConfigurationError("a transfer cannot target its own sender")
        if self.num_bytes < 0:
            raise ConfigurationError("transfer size must be non-negative")


@dataclass(frozen=True)
class CommRound:
    """A set of transfers that may proceed concurrently."""

    transfers: Tuple[Transfer, ...]

    @property
    def num_bytes(self) -> int:
        """Total payload of the round."""
        return sum(transfer.num_bytes for transfer in self.transfers)


@dataclass(frozen=True)
class CollectivePlan:
    """An ordered sequence of communication rounds.

    Attributes:
        name: Label used in traces ("all_reduce", "broadcast", ...).
        rounds: The rounds, executed in order with a barrier between them.
    """

    name: str
    rounds: Tuple[CommRound, ...] = field(default_factory=tuple)

    @property
    def total_bytes(self) -> int:
        """Total bytes moved over chip-to-chip links by the plan."""
        return sum(round_.num_bytes for round_ in self.rounds)

    @property
    def num_transfers(self) -> int:
        """Total number of point-to-point messages."""
        return sum(len(round_.transfers) for round_ in self.rounds)

    def transfers_involving(self, chip_id: int) -> List[Transfer]:
        """All transfers in which ``chip_id`` is sender or receiver."""
        result: List[Transfer] = []
        for round_ in self.rounds:
            for transfer in round_.transfers:
                if chip_id in (transfer.src, transfer.dst):
                    result.append(transfer)
        return result


def _tree_levels(chip_ids: Sequence[int], group_size: int) -> List[List[List[int]]]:
    """Group chips hierarchically; returns, per level, the list of groups."""
    levels: List[List[List[int]]] = []
    current = list(chip_ids)
    while len(current) > 1:
        groups = [
            current[start : start + group_size]
            for start in range(0, len(current), group_size)
        ]
        levels.append(groups)
        current = [group[0] for group in groups]
    return levels


def hierarchical_all_reduce(
    platform: MultiChipPlatform, num_bytes: int
) -> CollectivePlan:
    """Build the reduce phase: partial tensors converge on chip 0.

    At every level of the tree, each group's members send their partial
    tensor to the group leader (its lowest-numbered member), which
    accumulates them.  Leaders then repeat the procedure one level up.
    Groups reduce in parallel; the sends within one group serialise at the
    leader's ingress port, which the simulator models.
    """
    if num_bytes < 0:
        raise ConfigurationError("collective payload must be non-negative")
    rounds: List[CommRound] = []
    for groups in _tree_levels(platform.chip_ids(), platform.group_size):
        transfers: List[Transfer] = []
        for group in groups:
            leader = group[0]
            for member in group[1:]:
                transfers.append(Transfer(src=member, dst=leader, num_bytes=num_bytes))
        if transfers:
            rounds.append(CommRound(transfers=tuple(transfers)))
    return CollectivePlan(name="all_reduce", rounds=tuple(rounds))


def hierarchical_broadcast(
    platform: MultiChipPlatform, num_bytes: int
) -> CollectivePlan:
    """Build the broadcast phase: the reduced tensor fans back out from chip 0.

    The broadcast reverses the reduction tree: the root sends to the level
    leaders, which forward to their group members, "in the same manner as
    it is reduced" (Sec. IV of the paper).
    """
    if num_bytes < 0:
        raise ConfigurationError("collective payload must be non-negative")
    rounds: List[CommRound] = []
    for groups in reversed(_tree_levels(platform.chip_ids(), platform.group_size)):
        transfers: List[Transfer] = []
        for group in groups:
            leader = group[0]
            for member in group[1:]:
                transfers.append(Transfer(src=leader, dst=member, num_bytes=num_bytes))
        if transfers:
            rounds.append(CommRound(transfers=tuple(transfers)))
    return CollectivePlan(name="broadcast", rounds=tuple(rounds))


def all_to_one_reduce(platform: MultiChipPlatform, num_bytes: int) -> CollectivePlan:
    """Flat (non-hierarchical) reduction used as an ablation baseline.

    Every chip sends its partial tensor directly to chip 0 in a single
    round; all messages serialise at the root's ingress port, which is why
    the paper adopts the hierarchical scheme instead.
    """
    if num_bytes < 0:
        raise ConfigurationError("collective payload must be non-negative")
    transfers = tuple(
        Transfer(src=chip_id, dst=platform.root_chip_id, num_bytes=num_bytes)
        for chip_id in platform.chip_ids()
        if chip_id != platform.root_chip_id
    )
    rounds = (CommRound(transfers=transfers),) if transfers else tuple()
    return CollectivePlan(name="all_to_one_reduce", rounds=rounds)


def estimate_plan_cycles(
    plan: CollectivePlan, platform: MultiChipPlatform
) -> float:
    """Analytical (simulator-free) estimate of a plan's duration in cycles.

    Within a round, transfers with distinct receivers run in parallel and
    transfers with the same receiver serialise; rounds are separated by a
    barrier.  The event-driven simulator produces the same value for
    schedules where communication does not overlap with computation, which
    the unit tests cross-check.
    """
    link = platform.link
    frequency = platform.frequency_hz
    total = 0.0
    for round_ in plan.rounds:
        per_receiver: dict[int, float] = {}
        for transfer in round_.transfers:
            cycles = link.transfer_cycles(transfer.num_bytes, frequency)
            per_receiver[transfer.dst] = per_receiver.get(transfer.dst, 0.0) + cycles
        if per_receiver:
            total += max(per_receiver.values())
    return total
