"""Shipped example studies.

Each entry re-expresses one of the library's canned experiments — the
figure harnesses of :mod:`repro.experiments` and the walk-through
``examples/`` scripts — as a :class:`~repro.spec.StudySpec`, proving the
declarative layer subsumes them.  ``repro studies`` lists the registry;
``repro study run <name>`` executes an entry by name, and the serialised
forms are committed under ``examples/specs/`` (kept in sync by the test
suite).

Like the strategy/policy/searcher registries, this one is open: register
your own study factory with :func:`register_study` and it becomes
runnable from the CLI by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .specs import (
    AxisSpec,
    CompareSpec,
    EvalSpec,
    FaultEventSpec,
    FaultSpec,
    FleetPlatformSpec,
    FleetSpec,
    ModelSpec,
    PlatformSpec,
    RetryPolicySpec,
    ServingSpec,
    SLOClassSpec,
    SpaceSpec,
    StageSpec,
    StudySpec,
    SweepSpec,
    TraceSpec,
    TuneSpec,
    WorkloadSpec,
)

__all__ = ["get_study", "list_studies", "register_study", "study_description"]

#: Study name -> (description, StudySpec factory).
_STUDIES: Dict[str, "tuple[str, Callable[[], StudySpec]]"] = {}


def register_study(
    name: str, description: str, factory: Callable[[], StudySpec]
) -> None:
    """Register a study factory under ``name``.

    Raises:
        ConfigurationError: If the name is already registered.
    """
    key = name.strip().lower()
    if not key:
        raise ConfigurationError("study name must be non-empty")
    if key in _STUDIES:
        raise ConfigurationError(f"study {name!r} is already registered")
    _STUDIES[key] = (description, factory)


def get_study(name: str) -> StudySpec:
    """Build the study spec registered under ``name``.

    Raises:
        ConfigurationError: If no study with that name is registered.
    """
    key = name.strip().lower()
    if key not in _STUDIES:
        known = ", ".join(sorted(_STUDIES)) or "<none>"
        raise ConfigurationError(
            f"unknown study {name!r}; registered studies: {known}"
        )
    return _STUDIES[key][1]()


def study_description(name: str) -> str:
    """The one-line description of a registered study."""
    key = name.strip().lower()
    if key not in _STUDIES:
        known = ", ".join(sorted(_STUDIES)) or "<none>"
        raise ConfigurationError(
            f"unknown study {name!r}; registered studies: {known}"
        )
    return _STUDIES[key][0]


def list_studies() -> List[str]:
    """Sorted names of all registered studies."""
    return sorted(_STUDIES)


# ----------------------------------------------------------------------
# The shipped entries
# ----------------------------------------------------------------------
def _quickstart() -> StudySpec:
    """examples/quickstart.py as data: 1-chip vs 8-chip, then Table I."""
    workload = WorkloadSpec()  # tinyllama-42m, autoregressive, S=128
    return StudySpec(
        name="quickstart",
        description=(
            "Single-chip vs 8-chip TinyLlama block, then the Table I "
            "strategy ablation (the quickstart example as data)"
        ),
        stages=(
            StageSpec(
                name="single-chip",
                spec=EvalSpec(workload=workload, platform=PlatformSpec(chips=1)),
            ),
            StageSpec(
                name="distributed",
                spec=EvalSpec(workload=workload, platform=PlatformSpec(chips=8)),
            ),
            StageSpec(
                name="ablation",
                spec=CompareSpec(workload=workload, platform=PlatformSpec(chips=8)),
            ),
        ),
    )


def _fig4() -> StudySpec:
    """The three chip-count sweeps behind the paper's Fig. 4."""
    return StudySpec(
        name="fig4",
        description=(
            "The paper's Fig. 4 sweeps: TinyLlama autoregressive + prompt "
            "and MobileBERT encoder across chip counts"
        ),
        stages=(
            StageSpec(
                name="tinyllama-autoregressive",
                spec=SweepSpec(
                    workload=WorkloadSpec(mode="autoregressive", seq_len=128),
                    chips=(1, 2, 4, 8),
                ),
            ),
            StageSpec(
                name="tinyllama-prompt",
                spec=SweepSpec(
                    workload=WorkloadSpec(mode="prompt", seq_len=16),
                    chips=(1, 2, 4, 8),
                ),
            ),
            StageSpec(
                name="mobilebert",
                spec=SweepSpec(
                    workload=WorkloadSpec(
                        model=ModelSpec(name="mobilebert"),
                        mode="encoder",
                        seq_len=268,
                    ),
                    chips=(1, 2, 4),
                ),
            ),
        ),
    )


def _fig6() -> StudySpec:
    """The scaled-up (64-head) TinyLlama scalability sweeps of Fig. 6."""
    scaled = ModelSpec(name="tinyllama-42m-64h")
    chips = (1, 2, 4, 8, 16, 32, 64)
    return StudySpec(
        name="fig6",
        description=(
            "The paper's Fig. 6 scalability study: 64-head TinyLlama, "
            "1-64 chips, both inference modes"
        ),
        stages=(
            StageSpec(
                name="autoregressive",
                spec=SweepSpec(
                    workload=WorkloadSpec(
                        model=scaled, mode="autoregressive", seq_len=128
                    ),
                    chips=chips,
                ),
            ),
            StageSpec(
                name="prompt",
                spec=SweepSpec(
                    workload=WorkloadSpec(model=scaled, mode="prompt", seq_len=16),
                    chips=chips,
                ),
            ),
        ),
    )


def _table1() -> StudySpec:
    """The Table I baseline ablation on the paper's 8-chip platform."""
    return StudySpec(
        name="table1",
        description=(
            "The paper's Table I ablation: the four baselines on 8 chips"
        ),
        stages=(
            StageSpec(
                name="ablation",
                spec=CompareSpec(
                    workload=WorkloadSpec(mode="autoregressive", seq_len=128),
                    platform=PlatformSpec(chips=8),
                ),
            ),
        ),
    )


def _serving_capacity() -> StudySpec:
    """The capacity-vs-SLO serving matrix of ``repro experiments --only serving``."""
    stages = []
    for rate in (1.0, 2.0, 3.0, 4.0, 5.0):
        for policy in ("fifo", "shortest_prompt", "continuous"):
            stages.append(
                StageSpec(
                    name=f"rate{rate:g}-{policy}".replace("_", "-"),
                    spec=ServingSpec(
                        trace=TraceSpec(rate_rps=rate, duration_s=60.0),
                        policy=policy,
                        platform=PlatformSpec(chips=8),
                        seed=0,
                        slo_targets=(1.0,),
                    ),
                )
            )
    return StudySpec(
        name="serving-capacity",
        description=(
            "Capacity vs SLO: Poisson load 1-5 req/s under three "
            "scheduling policies on the 8-chip platform"
        ),
        stages=tuple(stages),
    )


def _fleet_capacity() -> StudySpec:
    """Minimum fleet size for a target load under two routing policies.

    Each stage serves the same seeded diurnal day-in-ten-minutes trace on
    a fleet of 1-4 identical replicas; comparing the stages' p99 TTFT
    against the SLO grid answers "how many platforms do I need for this
    load at p99 TTFT <= Y?" per router.
    """
    trace = TraceSpec(
        source="diurnal",
        rate_rps=4.0,
        duration_s=600.0,
        amplitude=0.5,
        period_s=600.0,
    )
    stages = []
    for router in ("round_robin", "least_loaded"):
        for count in (1, 2, 3, 4):
            stages.append(
                StageSpec(
                    name=f"{router}-x{count}".replace("_", "-"),
                    spec=FleetSpec(
                        trace=trace,
                        platforms=(FleetPlatformSpec(replicas=count),),
                        router=router,
                        seed=0,
                        slo_targets=(0.2, 0.5, 1.0),
                    ),
                )
            )
    return StudySpec(
        name="fleet-capacity",
        description=(
            "Minimum fleet size for a diurnal load: 1-4 replicas under "
            "two routing policies, p99 TTFT vs the SLO grid"
        ),
        stages=tuple(stages),
    )


def _chaos_capacity() -> StudySpec:
    """Routing policies under a crash-and-recover fault schedule.

    Both stages serve the same seeded diurnal trace on three replicas
    through the same fault schedule — a straggler window softening
    replica 0 before it crashes, three staggered crash-and-recover
    windows that overlap into a total outage over [240, 300), and a
    fleet-wide brownout during the recovery tail — differing only in the
    router.  Comparing the stages' resilience blocks (goodput, retries,
    shed requests, unavailability, healthy/degraded SLO attainment)
    answers "which routing policy degrades more gracefully?".
    """
    trace = TraceSpec(
        source="diurnal",
        rate_rps=6.0,
        duration_s=600.0,
        amplitude=0.5,
        period_s=600.0,
        priority_levels=2,
    )
    faults = FaultSpec(
        events=(
            FaultEventSpec(fault="slowdown", replica=0, start_s=90.0,
                           duration_s=60.0, factor=4.0),
            FaultEventSpec(fault="crash", replica=0, start_s=120.0,
                           duration_s=180.0),
            FaultEventSpec(fault="crash", replica=1, start_s=200.0,
                           duration_s=160.0),
            FaultEventSpec(fault="crash", replica=2, start_s=240.0,
                           duration_s=60.0),
            FaultEventSpec(fault="brownout", start_s=420.0,
                           duration_s=60.0, factor=2.0),
        ),
        shed_below=0.9,
        shed_keep=1,
    )
    retry = RetryPolicySpec(
        max_retries=3,
        backoff_s=0.5,
        timeout_s=45.0,
        hedge_after_s=1.0,
    )
    classes = (
        SLOClassSpec(name="interactive", rate_rps=6.0, burst=8, priority=1,
                     ttft_slo_s=0.5),
        SLOClassSpec(name="batch", priority=0),
    )
    stages = tuple(
        StageSpec(
            name=router.replace("_", "-"),
            spec=FleetSpec(
                trace=trace,
                platforms=(FleetPlatformSpec(replicas=3),),
                router=router,
                classes=classes,
                faults=faults,
                retry=retry,
                seed=0,
                slo_targets=(0.2, 0.5, 1.0),
            ),
        )
        for router in ("round_robin", "least_loaded")
    )
    return StudySpec(
        name="chaos-capacity",
        description=(
            "Crash-and-recover chaos run: three replicas through a "
            "straggler window, a rolling triple crash with a total "
            "outage, and a brownout, under two routing policies"
        ),
        stages=stages,
    )


def _platform_tuning() -> StudySpec:
    """examples/platform_tuning.py as data: grid search, then serve the winner."""
    space = SpaceSpec(
        axes=(
            AxisSpec(axis="choice", name="chips", choices=(1, 2, 4, 8)),
            AxisSpec(
                axis="float",
                name="link_gbps",
                low=0.25,
                high=1.0,
                levels=(0.25, 0.5, 1.0),
            ),
            AxisSpec(axis="choice", name="l2_kib", choices=(1024, 2048, 4096)),
            AxisSpec(axis="choice", name="strategy", choices=("paper",)),
        )
    )
    return StudySpec(
        name="platform-tuning",
        description=(
            "Exhaustive latency/hardware-cost trade-off over a 36-design "
            "space, then a serving run on the fastest feasible design"
        ),
        stages=(
            StageSpec(
                name="tune",
                spec=TuneSpec(
                    space=space,
                    searcher="grid",
                    budget=36,
                    objectives=("latency", "hw_cost"),
                ),
            ),
            StageSpec(
                name="serve-best",
                spec=ServingSpec(
                    trace=TraceSpec(rate_rps=2.0, duration_s=60.0),
                    platform_from="tune",
                    seed=0,
                ),
            ),
        ),
    )


def _paper_pipeline() -> StudySpec:
    """The full pipeline: sweep -> compare -> tune (pinned) -> serve (tuned)."""
    workload = WorkloadSpec(mode="autoregressive", seq_len=128)
    space = SpaceSpec(
        axes=(
            AxisSpec(axis="choice", name="chips", choices=(1, 2, 4, 8)),
            AxisSpec(
                axis="float",
                name="link_gbps",
                low=0.25,
                high=2.0,
                levels=(0.25, 0.5, 1.0, 2.0),
            ),
            AxisSpec(axis="choice", name="l2_kib", choices=(1024, 2048)),
            AxisSpec(axis="choice", name="strategy", choices=("paper",)),
        )
    )
    return StudySpec(
        name="paper-pipeline",
        description=(
            "Sweep chip counts, ablate strategies, tune the platform at "
            "the fastest chip count, then serve traffic on the tuned "
            "design — one replayable pipeline"
        ),
        stages=(
            StageSpec(
                name="sweep",
                spec=SweepSpec(workload=workload, chips=(1, 2, 4, 8)),
            ),
            StageSpec(
                name="compare",
                spec=CompareSpec(
                    workload=workload, platform=PlatformSpec(chips=8)
                ),
            ),
            StageSpec(
                name="tune",
                spec=TuneSpec(
                    workload=workload,
                    space=space,
                    searcher="random",
                    budget=12,
                    seed=0,
                    objectives=("latency", "hw_cost"),
                    chips_from="sweep",
                ),
            ),
            StageSpec(
                name="serve",
                spec=ServingSpec(
                    trace=TraceSpec(rate_rps=2.0, duration_s=30.0),
                    platform_from="tune",
                    seed=0,
                ),
            ),
        ),
    )


def _dse_scale() -> StudySpec:
    """Production-scale surrogate search over a ~14k-point design space."""
    space = SpaceSpec(
        axes=(
            AxisSpec(axis="choice", name="chips", choices=(1, 2, 4, 8, 16)),
            AxisSpec(
                axis="float",
                name="link_gbps",
                low=0.125,
                high=2.0,
                levels=(0.125, 0.25, 0.5, 1.0, 2.0),
            ),
            AxisSpec(
                axis="choice",
                name="l2_kib",
                choices=(1024, 2048, 4096, 8192),
            ),
            AxisSpec(
                axis="float",
                name="freq_mhz",
                low=200.0,
                high=500.0,
                levels=(200.0, 300.0, 400.0, 500.0),
            ),
            AxisSpec(
                axis="float",
                name="link_pj_per_byte",
                low=50.0,
                high=200.0,
                levels=(50.0, 100.0, 200.0),
            ),
            AxisSpec(axis="choice", name="group_size", choices=(2, 4)),
            AxisSpec(axis="choice", name="kv_heads", choices=(2, 4, 8)),
            AxisSpec(
                axis="choice",
                name="strategy",
                choices=("paper", "tensor_parallel"),
            ),
        )
    )
    return StudySpec(
        name="dse-scale",
        description=(
            "Surrogate-guided search over a 14,400-point platform x "
            "partition x architecture space with periodic checkpoints; "
            "parallel and interrupted-then-resumed runs are byte-"
            "identical to a serial uninterrupted one"
        ),
        stages=(
            StageSpec(
                name="search",
                spec=TuneSpec(
                    space=space,
                    searcher="surrogate",
                    budget=32,
                    seed=0,
                    objectives=("latency", "energy", "hw_cost"),
                    checkpoint_every=8,
                ),
            ),
        ),
    )


def _model_zoo() -> StudySpec:
    """Partition strategies across the generated architecture zoo."""
    platform = PlatformSpec(chips=4)
    strategies = ("paper", "single_chip", "tensor_parallel")
    stages = [
        StageSpec(
            name=name,
            spec=CompareSpec(
                workload=WorkloadSpec(
                    model=ModelSpec(name=name),
                    mode="autoregressive",
                    seq_len=seq_len,
                ),
                strategies=strategies,
                platform=platform,
            ),
        )
        for name, seq_len in (
            ("gqa-moe-tiny", 128),
            ("moe-8x", 128),
            ("mqa-270m", 128),
            ("longctx-4k", 4096),
            ("encdec-small", 128),
        )
    ]
    stages.append(
        StageSpec(
            name="tune",
            spec=TuneSpec(
                space=SpaceSpec(
                    axes=(
                        AxisSpec(axis="choice", name="chips", choices=(2, 4)),
                        AxisSpec(
                            axis="choice",
                            name="model",
                            choices=("gqa-moe-tiny", "moe-8x", "mqa-270m"),
                        ),
                        AxisSpec(
                            axis="choice", name="strategy", choices=("paper",)
                        ),
                    )
                ),
                searcher="grid",
                budget=6,
                objectives=("latency", "energy"),
            ),
        )
    )
    stages.append(
        StageSpec(
            name="fleet",
            spec=FleetSpec(
                model=ModelSpec(name="gqa-moe-tiny"),
                trace=TraceSpec(rate_rps=2.0, duration_s=30.0),
                platforms=(FleetPlatformSpec(chips=4, replicas=2),),
                seed=0,
                slo_targets=(1.0,),
            ),
        )
    )
    return StudySpec(
        name="model-zoo",
        description=(
            "Partition-strategy ablation across five generated zoo "
            "architectures (GQA+MoE, MoE, MQA, sliding-window, enc/dec), "
            "an architecture-axis tune, and a fleet run on the GQA+MoE "
            "decoder"
        ),
        stages=tuple(stages),
    )


register_study(
    "quickstart",
    "1-chip vs 8-chip block evaluation plus the Table I ablation",
    _quickstart,
)
register_study(
    "fig4",
    "The paper's Fig. 4 chip-count sweeps (three workloads)",
    _fig4,
)
register_study(
    "fig6",
    "The paper's Fig. 6 scalability sweeps (64-head TinyLlama, 1-64 chips)",
    _fig6,
)
register_study(
    "table1",
    "The paper's Table I strategy ablation on 8 chips",
    _table1,
)
register_study(
    "serving-capacity",
    "Capacity vs SLO: load x scheduling-policy serving matrix",
    _serving_capacity,
)
register_study(
    "fleet-capacity",
    "Minimum fleet size per routing policy under a diurnal load",
    _fleet_capacity,
)
register_study(
    "chaos-capacity",
    "Router comparison under a crash-and-recover fault schedule",
    _chaos_capacity,
)
register_study(
    "platform-tuning",
    "Latency/cost design-space grid plus serving the best design",
    _platform_tuning,
)
register_study(
    "paper-pipeline",
    "Sweep + compare + tune + serve as one replayable pipeline",
    _paper_pipeline,
)
register_study(
    "dse-scale",
    "10k+-point surrogate-guided platform search with checkpoint/resume",
    _dse_scale,
)
register_study(
    "model-zoo",
    "Strategy ablation + tune + fleet across the generated model zoo",
    _model_zoo,
)
