"""Typed, frozen, serialisable experiment specs.

Every verb of the library — ``Session.run/sweep/compare/serve/tune`` —
has a spec dataclass here that captures one invocation *as data*:

* :class:`ModelSpec`, :class:`WorkloadSpec`, :class:`PlatformSpec` name
  registry entries (models, platform presets) plus their parameters;
* :class:`EvalSpec`, :class:`SweepSpec`, :class:`CompareSpec`,
  :class:`ServingSpec`, :class:`FleetSpec`, :class:`TuneSpec` are the
  six *runnable* specs —
  each knows how to resolve its names through the live registries and
  execute itself on a :class:`~repro.api.Session`
  (see :mod:`repro.spec.runner`);
* :class:`StudySpec` composes any number of named runnable stages into a
  pipeline, where later stages may reference earlier ones
  (``platform_from`` a tune stage, ``chips_from`` a sweep stage).

All specs round-trip losslessly through ``to_dict()`` / ``from_dict()``
and JSON (:meth:`~repro.spec.base.SpecBase.to_json`, :func:`loads`,
:func:`load_spec`), carry a schema version, and validate with precise
document paths — see :mod:`repro.spec.base` for the machinery and
``docs/SPECS.md`` for the schema reference.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple, Type, Union

from ..core.placement import PrefetchAccounting
from ..errors import ReproError, SpecError
from ..graph.transformer import InferenceMode, TransformerConfig
from ..graph.workload import Workload
from ..hw.platform import MultiChipPlatform
from .base import Fields, SpecBase, spec_error

__all__ = [
    "AutoscalerSpec",
    "AxisSpec",
    "CompareSpec",
    "DEFAULT_SEQ_LEN",
    "EvalSpec",
    "FaultEventSpec",
    "FaultSpec",
    "FleetPlatformSpec",
    "FleetSpec",
    "ModelSpec",
    "PlatformSpec",
    "RUNNABLE_KINDS",
    "RetryPolicySpec",
    "RunnableSpec",
    "SLOClassSpec",
    "ScenarioSpec",
    "SearchStateSpec",
    "ServingSpec",
    "SpaceSpec",
    "StageSpec",
    "StudySpec",
    "SweepSpec",
    "TraceSpec",
    "TuneSpec",
    "WorkloadSpec",
    "load_spec",
    "loads",
    "spec_from_dict",
]

#: Default sequence lengths per inference mode (the paper's setup); shared
#: with the CLI so ``--emit-spec`` and the flags agree by construction.
DEFAULT_SEQ_LEN = {
    InferenceMode.AUTOREGRESSIVE: 128,
    InferenceMode.PROMPT: 16,
    InferenceMode.ENCODER: 268,
}

#: Registered spec classes by kind tag (filled by ``_register``).
_KINDS: Dict[str, Type[SpecBase]] = {}


def _register(cls):
    _KINDS[cls.kind] = cls
    return cls


def _wrap(path: str, error: ReproError) -> SpecError:
    """Attach a document path to a registry/validation error."""
    return spec_error(path, str(error))


# ----------------------------------------------------------------------
# Leaf specs: model, workload, platform
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class ModelSpec(SpecBase):
    """A model configuration: a registry name *or* an inline architecture.

    The two forms are mutually exclusive: either ``name`` selects a
    registered model, or ``arch`` embeds a full declarative
    :class:`~repro.arch.ArchSpec` in the document.
    """

    kind = "model"

    name: str = "tinyllama-42m"
    arch: Optional[SpecBase] = None

    def __post_init__(self) -> None:
        if self.arch is not None and self.name != "tinyllama-42m":
            raise spec_error(
                "$.model", "give either a registry name or an inline arch, not both"
            )

    def validate(self, path: str = "$") -> None:
        if self.arch is not None:
            validate = getattr(self.arch, "validate", None)
            if self.arch.kind != "arch" or validate is None:
                raise spec_error(f"{path}.arch", "expected an 'arch' spec")
            validate(f"{path}.arch")
            return
        try:
            self.build()
        except ReproError as error:
            raise _wrap(f"{path}.name", error) from None

    def build(self) -> TransformerConfig:
        """Resolve the name through the model registry, or lower the arch."""
        if self.arch is not None:
            from ..arch import build_model

            return build_model(self.arch)  # type: ignore[arg-type]
        from ..models.registry import get_model

        return get_model(self.name)

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "ModelSpec":
        if isinstance(data, str):  # shorthand: a bare registry name
            return cls(name=data)
        reader = Fields(data, path, cls.kind)
        arch: Optional[SpecBase] = None
        if reader.has("arch"):
            if reader.has("name"):
                raise spec_error(
                    path, "give either a registry name or an inline arch, not both"
                )
            from ..arch import ArchSpec

            arch = ArchSpec.from_dict(reader.take("arch"), reader.child_path("arch"))
        spec = cls(name=reader.str_("name", "tinyllama-42m"), arch=arch)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class WorkloadSpec(SpecBase):
    """A model plus inference mode and sequence length."""

    kind = "workload"

    model: ModelSpec = ModelSpec()
    mode: str = "autoregressive"
    seq_len: Optional[int] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in {m.value for m in InferenceMode}:
            raise SpecError(
                f"unknown inference mode {self.mode!r}; choose from "
                + ", ".join(m.value for m in InferenceMode)
            )
        if self.seq_len is not None and self.seq_len <= 0:
            raise SpecError(
                f"seq_len must be positive, got {self.seq_len}"
            )

    def validate(self, path: str = "$") -> None:
        self.model.validate(f"{path}.model")
        try:
            self.build()
        except ReproError as error:
            raise _wrap(path, error) from None

    def build(self) -> Workload:
        """Build the concrete workload (paper default seq_len per mode)."""
        mode = InferenceMode(self.mode)
        seq_len = (
            self.seq_len if self.seq_len is not None else DEFAULT_SEQ_LEN[mode]
        )
        return Workload(
            config=self.model.build(), mode=mode, seq_len=seq_len, name=self.label
        )

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "WorkloadSpec":
        reader = Fields(data, path, cls.kind)
        model = reader.take("model", None)
        try:
            spec = cls(
                model=(
                    ModelSpec.from_dict(model, reader.child_path("model"))
                    if model is not None
                    else ModelSpec()
                ),
                mode=reader.str_("mode", "autoregressive"),
                seq_len=reader.opt_int("seq_len"),
                label=reader.opt_str("label"),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class PlatformSpec(SpecBase):
    """A registered hardware preset, optionally pinned to a chip count."""

    kind = "platform"

    preset: str = "siracusa-mipi"
    chips: Optional[int] = None

    def __post_init__(self) -> None:
        if self.chips is not None and self.chips <= 0:
            raise SpecError(f"chips must be positive, got {self.chips}")

    def validate(self, path: str = "$") -> None:
        from ..hw.presets import get_platform_preset

        try:
            get_platform_preset(self.preset)
        except ReproError as error:
            raise _wrap(f"{path}.preset", error) from None

    def build(self, chips: Optional[int] = None) -> MultiChipPlatform:
        """Materialise the preset (the preset's default chips if unpinned)."""
        from ..hw.presets import get_platform_preset

        count = chips if chips is not None else self.chips
        return get_platform_preset(self.preset).build(count)

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "PlatformSpec":
        if isinstance(data, str):  # shorthand: a bare preset name
            return cls(preset=data)
        reader = Fields(data, path, cls.kind)
        try:
            spec = cls(
                preset=reader.str_("preset", "siracusa-mipi"),
                chips=reader.opt_int("chips"),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


def _rescope(error: SpecError, path: str) -> SpecError:
    """Prefix a post-init SpecError with the document path, once."""
    message = str(error)
    if message.startswith(f"{path}.") or message.startswith(f"{path}:"):
        return error
    return spec_error(path, message)


def _prefetch_value(value: str) -> str:
    choices = {policy.value for policy in PrefetchAccounting}
    if value not in choices:
        raise SpecError(
            f"unknown prefetch accounting {value!r}; choose from "
            + ", ".join(sorted(choices))
        )
    return value


def _check_strategy(name: str, path: str) -> None:
    from ..api.registry import get_strategy

    try:
        get_strategy(name)
    except ReproError as error:
        raise _wrap(path, error) from None


# ----------------------------------------------------------------------
# Runnable specs
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class EvalSpec(SpecBase):
    """One ``Session.run`` invocation as data.

    ``platform_from`` names an earlier *tune* stage of the enclosing
    study; the evaluation then runs on that stage's best feasible design
    (platform *and* strategy) instead of :attr:`platform`/:attr:`strategy`.
    """

    kind = "evaluate"

    workload: WorkloadSpec = WorkloadSpec()
    strategy: str = "paper"
    platform: PlatformSpec = PlatformSpec()
    platform_from: Optional[str] = None
    prefetch: str = "hidden"

    def __post_init__(self) -> None:
        _prefetch_value(self.prefetch)

    def validate(self, path: str = "$") -> None:
        self.workload.validate(f"{path}.workload")
        self.platform.validate(f"{path}.platform")
        _check_strategy(self.strategy, f"{path}.strategy")

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "EvalSpec":
        reader = Fields(data, path, cls.kind)
        try:
            spec = cls(
                workload=_sub_workload(reader),
                strategy=reader.str_("strategy", "paper"),
                platform=_sub_platform(reader),
                platform_from=reader.opt_str("platform_from"),
                prefetch=reader.str_("prefetch", "hidden"),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class SweepSpec(SpecBase):
    """One ``Session.sweep`` invocation as data (chip-count sweep)."""

    kind = "sweep"

    workload: WorkloadSpec = WorkloadSpec()
    chips: Tuple[int, ...] = (1, 2, 4, 8)
    strategy: str = "paper"
    platform: PlatformSpec = PlatformSpec()
    parallel: Optional[int] = None
    prefetch: str = "hidden"

    def __post_init__(self) -> None:
        object.__setattr__(self, "chips", tuple(self.chips))
        if not self.chips:
            raise SpecError("chips must name at least one chip count")
        for count in self.chips:
            if count <= 0:
                raise SpecError(f"invalid chip count {count}")
        if self.platform.chips is not None:
            raise SpecError(
                "a sweep's platform must not pin chips; the swept counts "
                "come from the spec's own 'chips' field"
            )
        if self.parallel is not None and self.parallel <= 0:
            raise SpecError(f"parallel must be positive, got {self.parallel}")
        _prefetch_value(self.prefetch)

    def validate(self, path: str = "$") -> None:
        self.workload.validate(f"{path}.workload")
        self.platform.validate(f"{path}.platform")
        _check_strategy(self.strategy, f"{path}.strategy")

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "SweepSpec":
        reader = Fields(data, path, cls.kind)
        try:
            spec = cls(
                workload=_sub_workload(reader),
                chips=reader.int_tuple("chips", (1, 2, 4, 8)),
                strategy=reader.str_("strategy", "paper"),
                platform=_sub_platform(reader),
                parallel=reader.opt_int("parallel"),
                prefetch=reader.str_("prefetch", "hidden"),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class CompareSpec(SpecBase):
    """One ``Session.compare`` invocation as data (strategy ablation)."""

    kind = "compare"

    workload: WorkloadSpec = WorkloadSpec()
    strategies: Tuple[str, ...] = (
        "single_chip",
        "weight_replicated",
        "pipeline_parallel",
        "tensor_parallel",
    )
    platform: PlatformSpec = PlatformSpec()
    platform_from: Optional[str] = None
    prefetch: str = "hidden"

    def __post_init__(self) -> None:
        object.__setattr__(self, "strategies", tuple(self.strategies))
        if not self.strategies:
            raise SpecError("strategies must name at least one strategy")
        _prefetch_value(self.prefetch)

    def validate(self, path: str = "$") -> None:
        self.workload.validate(f"{path}.workload")
        self.platform.validate(f"{path}.platform")
        for index, name in enumerate(self.strategies):
            _check_strategy(name, f"{path}.strategies[{index}]")

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "CompareSpec":
        reader = Fields(data, path, cls.kind)
        try:
            spec = cls(
                workload=_sub_workload(reader),
                strategies=reader.str_tuple(
                    "strategies",
                    (
                        "single_chip",
                        "weight_replicated",
                        "pipeline_parallel",
                        "tensor_parallel",
                    ),
                ),
                platform=_sub_platform(reader),
                platform_from=reader.opt_str("platform_from"),
                prefetch=reader.str_("prefetch", "hidden"),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class TraceSpec(SpecBase):
    """A declarative traffic trace (the serving generators' parameters)."""

    kind = "trace"

    source: str = "poisson"
    rate_rps: float = 2.0
    duration_s: float = 300.0
    burst_rate_rps: Optional[float] = None
    mean_base_s: float = 20.0
    mean_burst_s: float = 5.0
    clients: int = 8
    requests_per_client: int = 16
    mean_think_s: float = 1.0
    prompt_mean: float = 64.0
    output_mean: float = 32.0
    sigma: float = 0.5
    prompt_min: int = 1
    prompt_max: int = 256
    output_min: int = 1
    output_max: int = 128
    priority_levels: int = 1
    path: Optional[str] = None
    amplitude: float = 0.6
    period_s: float = 86_400.0
    phase_s: float = 0.0
    spike_starts_s: Tuple[float, ...] = ()
    spike_duration_s: float = 600.0
    spike_rate_rps: Optional[float] = None

    _SOURCES = ("poisson", "bursty", "closed", "replay", "diurnal")

    def __post_init__(self) -> None:
        object.__setattr__(self, "spike_starts_s", tuple(self.spike_starts_s))
        if self.source not in self._SOURCES:
            raise SpecError(
                f"unknown trace source {self.source!r}; choose from "
                + ", ".join(self._SOURCES)
            )
        if self.source == "replay" and not self.path:
            raise SpecError("a replay trace needs a 'path' to the recorded JSON")
        if self.source != "replay" and self.path is not None:
            raise SpecError("'path' only applies to the replay source")
        if self.source != "diurnal" and self.spike_starts_s:
            raise SpecError("'spike_starts_s' only applies to the diurnal source")

    def validate(self, path: str = "$") -> None:
        if self.source == "replay":
            return  # the file is read at build time
        try:
            self._lengths()
            self.build()
        except ReproError as error:
            raise _wrap(path, error) from None

    def _lengths(self):
        from ..serving.traces import LengthModel

        return LengthModel(
            prompt_mean=self.prompt_mean,
            output_mean=self.output_mean,
            sigma=self.sigma,
            prompt_min=self.prompt_min,
            prompt_max=self.prompt_max,
            output_min=self.output_min,
            output_max=self.output_max,
        )

    def build(self):
        """Build the concrete :class:`~repro.serving.traces.TrafficTrace`."""
        from ..serving.traces import (
            BurstyTrace,
            ClosedLoopTrace,
            DiurnalTrace,
            PoissonTrace,
            load_trace,
        )

        if self.source == "replay":
            assert self.path is not None
            return load_trace(self.path)
        lengths = self._lengths()
        if self.source == "diurnal":
            spike_rate = (
                self.spike_rate_rps
                if self.spike_rate_rps is not None
                else 2.0 * self.rate_rps
            )
            return DiurnalTrace(
                rate_rps=self.rate_rps,
                duration_s=self.duration_s,
                amplitude=self.amplitude,
                period_s=self.period_s,
                phase_s=self.phase_s,
                spikes=tuple(
                    (start, self.spike_duration_s, spike_rate)
                    for start in self.spike_starts_s
                ),
                lengths=lengths,
                priority_levels=self.priority_levels,
            )
        if self.source == "bursty":
            burst = (
                self.burst_rate_rps
                if self.burst_rate_rps is not None
                else 4.0 * self.rate_rps
            )
            return BurstyTrace(
                base_rate_rps=self.rate_rps,
                burst_rate_rps=burst,
                duration_s=self.duration_s,
                mean_base_s=self.mean_base_s,
                mean_burst_s=self.mean_burst_s,
                lengths=lengths,
                priority_levels=self.priority_levels,
            )
        if self.source == "closed":
            return ClosedLoopTrace(
                clients=self.clients,
                requests_per_client=self.requests_per_client,
                mean_think_s=self.mean_think_s,
                lengths=lengths,
                priority_levels=self.priority_levels,
            )
        return PoissonTrace(
            rate_rps=self.rate_rps,
            duration_s=self.duration_s,
            lengths=lengths,
            priority_levels=self.priority_levels,
        )

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "TraceSpec":
        reader = Fields(data, path, cls.kind)
        try:
            spec = cls(
                source=reader.str_("source", "poisson"),
                rate_rps=reader.float_("rate_rps", 2.0),
                duration_s=reader.float_("duration_s", 300.0),
                burst_rate_rps=reader.opt_float("burst_rate_rps"),
                mean_base_s=reader.float_("mean_base_s", 20.0),
                mean_burst_s=reader.float_("mean_burst_s", 5.0),
                clients=reader.int_("clients", 8),
                requests_per_client=reader.int_("requests_per_client", 16),
                mean_think_s=reader.float_("mean_think_s", 1.0),
                prompt_mean=reader.float_("prompt_mean", 64.0),
                output_mean=reader.float_("output_mean", 32.0),
                sigma=reader.float_("sigma", 0.5),
                prompt_min=reader.int_("prompt_min", 1),
                prompt_max=reader.int_("prompt_max", 256),
                output_min=reader.int_("output_min", 1),
                output_max=reader.int_("output_max", 128),
                priority_levels=reader.int_("priority_levels", 1),
                path=reader.opt_str("path"),
                amplitude=reader.float_("amplitude", 0.6),
                period_s=reader.float_("period_s", 86_400.0),
                phase_s=reader.float_("phase_s", 0.0),
                spike_starts_s=reader.float_tuple("spike_starts_s", ()),
                spike_duration_s=reader.float_("spike_duration_s", 600.0),
                spike_rate_rps=reader.opt_float("spike_rate_rps"),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class ServingSpec(SpecBase):
    """One ``Session.serve`` invocation as data.

    ``platform_from`` names an earlier tune stage; the simulation then
    runs on that stage's best feasible design (platform and strategy).
    """

    kind = "serve"

    model: ModelSpec = ModelSpec()
    trace: TraceSpec = TraceSpec()
    policy: str = "fifo"
    strategy: str = "paper"
    platform: PlatformSpec = PlatformSpec()
    platform_from: Optional[str] = None
    seed: int = 0
    max_context: int = 1024
    slo_targets: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.slo_targets is not None:
            object.__setattr__(self, "slo_targets", tuple(self.slo_targets))
        if self.max_context <= 0:
            raise SpecError(
                f"max_context must be positive, got {self.max_context}"
            )

    def validate(self, path: str = "$") -> None:
        from ..serving.policies import get_policy

        self.model.validate(f"{path}.model")
        self.trace.validate(f"{path}.trace")
        self.platform.validate(f"{path}.platform")
        _check_strategy(self.strategy, f"{path}.strategy")
        try:
            get_policy(self.policy)
        except ReproError as error:
            raise _wrap(f"{path}.policy", error) from None

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "ServingSpec":
        reader = Fields(data, path, cls.kind)
        model = reader.take("model", None)
        trace = reader.take("trace", None)
        try:
            spec = cls(
                model=(
                    ModelSpec.from_dict(model, reader.child_path("model"))
                    if model is not None
                    else ModelSpec()
                ),
                trace=(
                    TraceSpec.from_dict(trace, reader.child_path("trace"))
                    if trace is not None
                    else TraceSpec()
                ),
                policy=reader.str_("policy", "fifo"),
                strategy=reader.str_("strategy", "paper"),
                platform=_sub_platform(reader),
                platform_from=reader.opt_str("platform_from"),
                seed=reader.int_("seed", 0),
                max_context=reader.int_("max_context", 1024),
                slo_targets=reader.float_tuple("slo_targets", None),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


# ----------------------------------------------------------------------
# Fleet specs
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class FleetPlatformSpec(SpecBase):
    """One heterogeneous platform entry of a fleet."""

    kind = "fleet_platform"

    preset: str = "siracusa-mipi"
    chips: Optional[int] = None
    replicas: int = 1
    role: str = "any"

    def __post_init__(self) -> None:
        if self.chips is not None and self.chips <= 0:
            raise SpecError(f"chips must be positive, got {self.chips}")
        if self.replicas < 1:
            raise SpecError(
                f"replicas must be at least 1, got {self.replicas}"
            )
        if self.role not in ("any", "prefill", "decode"):
            raise SpecError(
                f"unknown replica role {self.role!r}; choose from "
                "any, prefill, decode"
            )

    def validate(self, path: str = "$") -> None:
        from ..hw.presets import get_platform_preset

        try:
            get_platform_preset(self.preset)
        except ReproError as error:
            raise _wrap(f"{path}.preset", error) from None

    def build(self):
        """Build the concrete :class:`~repro.fleet.FleetPlatform`."""
        from ..fleet import FleetPlatform

        return FleetPlatform(
            preset=self.preset,
            chips=self.chips,
            replicas=self.replicas,
            role=self.role,
        )

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "FleetPlatformSpec":
        if isinstance(data, str):  # shorthand: preset[:chips][xN][@role]
            from ..fleet import FleetPlatform

            try:
                parsed = FleetPlatform.parse(data)
            except ReproError as error:
                raise _wrap(path, error) from None
            return cls(
                preset=parsed.preset,
                chips=parsed.chips,
                replicas=parsed.replicas,
                role=parsed.role,
            )
        reader = Fields(data, path, cls.kind)
        try:
            spec = cls(
                preset=reader.str_("preset", "siracusa-mipi"),
                chips=reader.opt_int("chips"),
                replicas=reader.int_("replicas", 1),
                role=reader.str_("role", "any"),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class SLOClassSpec(SpecBase):
    """One multi-tenant SLO class of a fleet's admission policy."""

    kind = "slo_class"

    name: str = "default"
    rate_rps: Optional[float] = None
    burst: int = 1
    priority: int = 0
    ttft_slo_s: Optional[float] = None
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        try:
            self.build()
        except ReproError as error:
            raise SpecError(str(error)) from None

    def build(self):
        """Build the concrete :class:`~repro.fleet.SLOClass`."""
        from ..fleet import SLOClass

        return SLOClass(
            name=self.name,
            rate_rps=self.rate_rps,
            burst=self.burst,
            priority=self.priority,
            ttft_slo_s=self.ttft_slo_s,
            timeout_s=self.timeout_s,
        )

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "SLOClassSpec":
        reader = Fields(data, path, cls.kind)
        try:
            spec = cls(
                name=reader.str_("name", "default"),
                rate_rps=reader.opt_float("rate_rps"),
                burst=reader.int_("burst", 1),
                priority=reader.int_("priority", 0),
                ttft_slo_s=reader.opt_float("ttft_slo_s"),
                timeout_s=reader.opt_float("timeout_s"),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class AutoscalerSpec(SpecBase):
    """The fleet autoscaler's knobs (see :class:`repro.fleet.AutoscalerConfig`)."""

    kind = "autoscaler"

    preset: str = "siracusa-mipi"
    chips: Optional[int] = None
    max_extra: int = 4
    check_interval_s: float = 60.0
    scale_up_depth: float = 4.0
    scale_down_depth: float = 0.5
    ttft_slo_s: Optional[float] = None
    min_attainment: float = 0.95

    def __post_init__(self) -> None:
        try:
            self.build()
        except ReproError as error:
            raise SpecError(str(error)) from None

    def validate(self, path: str = "$") -> None:
        from ..hw.presets import get_platform_preset

        try:
            get_platform_preset(self.preset)
        except ReproError as error:
            raise _wrap(f"{path}.preset", error) from None

    def build(self):
        """Build the concrete :class:`~repro.fleet.AutoscalerConfig`."""
        from ..fleet import AutoscalerConfig

        return AutoscalerConfig(
            preset=self.preset,
            chips=self.chips,
            max_extra=self.max_extra,
            check_interval_s=self.check_interval_s,
            scale_up_depth=self.scale_up_depth,
            scale_down_depth=self.scale_down_depth,
            ttft_slo_s=self.ttft_slo_s,
            min_attainment=self.min_attainment,
        )

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "AutoscalerSpec":
        reader = Fields(data, path, cls.kind)
        try:
            spec = cls(
                preset=reader.str_("preset", "siracusa-mipi"),
                chips=reader.opt_int("chips"),
                max_extra=reader.int_("max_extra", 4),
                check_interval_s=reader.float_("check_interval_s", 60.0),
                scale_up_depth=reader.float_("scale_up_depth", 4.0),
                scale_down_depth=reader.float_("scale_down_depth", 0.5),
                ttft_slo_s=reader.opt_float("ttft_slo_s"),
                min_attainment=reader.float_("min_attainment", 0.95),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class FaultEventSpec(SpecBase):
    """One scheduled fault of a fleet's fault model.

    Accepts the CLI shorthand as a bare string in documents:
    ``crash:REPLICA@START[+DURATION]``,
    ``slow:REPLICA@START+DURATIONxFACTOR``, or
    ``brownout@START+DURATIONxFACTOR``.
    """

    kind = "fault_event"

    fault: str = "crash"
    replica: Optional[int] = None
    start_s: float = 0.0
    duration_s: Optional[float] = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        try:
            self.build()
        except ReproError as error:
            raise SpecError(str(error)) from None

    def build(self):
        """Build the concrete :class:`~repro.fleet.FaultEvent`."""
        from ..fleet import FaultEvent

        return FaultEvent(
            kind=self.fault,
            replica=self.replica,
            start_s=self.start_s,
            duration_s=self.duration_s,
            factor=self.factor,
        )

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "FaultEventSpec":
        if isinstance(data, str):  # shorthand: kind[:replica]@start[+dur[xf]]
            from ..fleet import FaultEvent

            try:
                parsed = FaultEvent.parse(data)
            except ReproError as error:
                raise _wrap(path, error) from None
            return cls(
                fault=parsed.kind,
                replica=parsed.replica,
                start_s=parsed.start_s,
                duration_s=parsed.duration_s,
                factor=parsed.factor,
            )
        reader = Fields(data, path, cls.kind)
        try:
            spec = cls(
                fault=reader.str_("fault", "crash"),
                replica=reader.opt_int("replica"),
                start_s=reader.float_("start_s", 0.0),
                duration_s=reader.opt_float("duration_s"),
                factor=reader.float_("factor", 1.0),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class FaultSpec(SpecBase):
    """A fleet's fault schedule plus graceful-degradation knobs.

    See :class:`~repro.fleet.FaultModel` for the semantics: explicit
    ``events`` merge with an optional seeded random crash layer
    (``crash_mtbf_s``/``crash_mttr_s`` over ``horizon_s``), and
    ``shed_below``/``shed_keep`` configure load shedding while healthy
    capacity is below the floor.
    """

    kind = "faults"

    events: Tuple[FaultEventSpec, ...] = ()
    crash_mtbf_s: Optional[float] = None
    crash_mttr_s: float = 30.0
    horizon_s: Optional[float] = None
    seed: int = 0
    shed_below: Optional[float] = None
    shed_keep: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        try:
            self.build()
        except ReproError as error:
            raise SpecError(str(error)) from None

    def build(self):
        """Build the concrete :class:`~repro.fleet.FaultModel`."""
        from ..fleet import FaultModel

        return FaultModel(
            events=tuple(event.build() for event in self.events),
            crash_mtbf_s=self.crash_mtbf_s,
            crash_mttr_s=self.crash_mttr_s,
            horizon_s=self.horizon_s,
            seed=self.seed,
            shed_below=self.shed_below,
            shed_keep=self.shed_keep,
        )

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "FaultSpec":
        reader = Fields(data, path, cls.kind)
        raw_events = reader.take("events", None)
        events_path = reader.child_path("events")
        if raw_events is None:
            events: Tuple[FaultEventSpec, ...] = ()
        elif isinstance(raw_events, (list, tuple)):
            events = tuple(
                FaultEventSpec.from_dict(item, f"{events_path}[{index}]")
                for index, item in enumerate(raw_events)
            )
        else:
            raise spec_error(
                events_path,
                f"expected a list of fault events, got {raw_events!r}",
            )
        try:
            spec = cls(
                events=events,
                crash_mtbf_s=reader.opt_float("crash_mtbf_s"),
                crash_mttr_s=reader.float_("crash_mttr_s", 30.0),
                horizon_s=reader.opt_float("horizon_s"),
                seed=reader.int_("seed", 0),
                shed_below=reader.opt_float("shed_below"),
                shed_keep=reader.int_("shed_keep", 1),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class RetryPolicySpec(SpecBase):
    """Failover policy of requests stranded by a crash.

    Accepts the CLI shorthand as a bare string in documents:
    ``[TIMEOUT][:RETRIES[:BACKOFF[:HEDGE]]]`` (see
    :meth:`repro.fleet.RetryPolicy.parse`).
    """

    kind = "retry"

    max_retries: int = 2
    backoff_s: float = 0.0
    backoff_multiplier: float = 2.0
    timeout_s: Optional[float] = None
    hedge_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        try:
            self.build()
        except ReproError as error:
            raise SpecError(str(error)) from None

    def build(self):
        """Build the concrete :class:`~repro.fleet.RetryPolicy`."""
        from ..fleet import RetryPolicy

        return RetryPolicy(
            max_retries=self.max_retries,
            backoff_s=self.backoff_s,
            backoff_multiplier=self.backoff_multiplier,
            timeout_s=self.timeout_s,
            hedge_after_s=self.hedge_after_s,
        )

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "RetryPolicySpec":
        if isinstance(data, str):  # shorthand: [timeout][:retries[:backoff[:hedge]]]
            from ..fleet import RetryPolicy

            try:
                parsed = RetryPolicy.parse(data)
            except ReproError as error:
                raise _wrap(path, error) from None
            return cls(
                max_retries=parsed.max_retries,
                backoff_s=parsed.backoff_s,
                backoff_multiplier=parsed.backoff_multiplier,
                timeout_s=parsed.timeout_s,
                hedge_after_s=parsed.hedge_after_s,
            )
        reader = Fields(data, path, cls.kind)
        try:
            spec = cls(
                max_retries=reader.int_("max_retries", 2),
                backoff_s=reader.float_("backoff_s", 0.0),
                backoff_multiplier=reader.float_("backoff_multiplier", 2.0),
                timeout_s=reader.opt_float("timeout_s"),
                hedge_after_s=reader.opt_float("hedge_after_s"),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class FleetSpec(SpecBase):
    """One ``Session.serve_fleet`` invocation as data.

    ``platform_from`` names an earlier tune stage of the enclosing study;
    every replica of the fleet then runs that stage's best feasible
    design (platform and strategy), and the per-entry presets only
    contribute replica counts and roles.
    """

    kind = "fleet"

    model: ModelSpec = ModelSpec()
    trace: TraceSpec = TraceSpec()
    platforms: Tuple[FleetPlatformSpec, ...] = (FleetPlatformSpec(),)
    router: str = "round_robin"
    policy: str = "fifo"
    strategy: str = "paper"
    classes: Tuple[SLOClassSpec, ...] = ()
    autoscaler: Optional[AutoscalerSpec] = None
    faults: Optional[FaultSpec] = None
    retry: Optional[RetryPolicySpec] = None
    platform_from: Optional[str] = None
    seed: int = 0
    max_context: int = 1024
    slo_targets: Optional[Tuple[float, ...]] = None
    record_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "platforms", tuple(self.platforms))
        object.__setattr__(self, "classes", tuple(self.classes))
        if self.slo_targets is not None:
            object.__setattr__(self, "slo_targets", tuple(self.slo_targets))
        if not self.platforms:
            raise SpecError("a fleet needs at least one platform entry")
        if self.trace.source == "closed":
            raise SpecError(
                "a fleet needs an open-loop trace (poisson, bursty, diurnal, "
                "replay); closed-loop arrivals depend on completions"
            )
        if self.max_context <= 0:
            raise SpecError(
                f"max_context must be positive, got {self.max_context}"
            )
        if self.record_threshold is not None and self.record_threshold < 1:
            raise SpecError(
                f"record_threshold must be at least 1, got "
                f"{self.record_threshold}"
            )
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise SpecError(
                "SLO class names must be unique, got " + ", ".join(names)
            )
        if self.faults is not None:
            static = sum(platform.replicas for platform in self.platforms)
            try:
                self.faults.build().validate_replicas(static)
            except ReproError as error:
                raise SpecError(str(error)) from None

    def validate(self, path: str = "$") -> None:
        from ..fleet import get_router
        from ..serving.policies import get_policy

        self.model.validate(f"{path}.model")
        self.trace.validate(f"{path}.trace")
        for index, platform in enumerate(self.platforms):
            platform.validate(f"{path}.platforms[{index}]")
        if self.autoscaler is not None:
            self.autoscaler.validate(f"{path}.autoscaler")
        _check_strategy(self.strategy, f"{path}.strategy")
        try:
            get_router(self.router)
        except ReproError as error:
            raise _wrap(f"{path}.router", error) from None
        try:
            get_policy(self.policy)
        except ReproError as error:
            raise _wrap(f"{path}.policy", error) from None

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "FleetSpec":
        reader = Fields(data, path, cls.kind)
        model = reader.take("model", None)
        trace = reader.take("trace", None)
        raw_platforms = reader.take("platforms", None)
        raw_classes = reader.take("classes", None)
        raw_autoscaler = reader.take("autoscaler", None)
        raw_faults = reader.take("faults", None)
        raw_retry = reader.take("retry", None)
        platforms_path = reader.child_path("platforms")
        if raw_platforms is None:
            platforms: Tuple[FleetPlatformSpec, ...] = (FleetPlatformSpec(),)
        elif isinstance(raw_platforms, (list, tuple)):
            platforms = tuple(
                FleetPlatformSpec.from_dict(item, f"{platforms_path}[{index}]")
                for index, item in enumerate(raw_platforms)
            )
        else:
            raise spec_error(
                platforms_path,
                f"expected a list of fleet platforms, got {raw_platforms!r}",
            )
        classes_path = reader.child_path("classes")
        if raw_classes is None:
            classes: Tuple[SLOClassSpec, ...] = ()
        elif isinstance(raw_classes, (list, tuple)):
            classes = tuple(
                SLOClassSpec.from_dict(item, f"{classes_path}[{index}]")
                for index, item in enumerate(raw_classes)
            )
        else:
            raise spec_error(
                classes_path,
                f"expected a list of SLO classes, got {raw_classes!r}",
            )
        try:
            spec = cls(
                model=(
                    ModelSpec.from_dict(model, reader.child_path("model"))
                    if model is not None
                    else ModelSpec()
                ),
                trace=(
                    TraceSpec.from_dict(trace, reader.child_path("trace"))
                    if trace is not None
                    else TraceSpec()
                ),
                platforms=platforms,
                router=reader.str_("router", "round_robin"),
                policy=reader.str_("policy", "fifo"),
                strategy=reader.str_("strategy", "paper"),
                classes=classes,
                autoscaler=(
                    AutoscalerSpec.from_dict(
                        raw_autoscaler, reader.child_path("autoscaler")
                    )
                    if raw_autoscaler is not None
                    else None
                ),
                faults=(
                    FaultSpec.from_dict(
                        raw_faults, reader.child_path("faults")
                    )
                    if raw_faults is not None
                    else None
                ),
                retry=(
                    RetryPolicySpec.from_dict(
                        raw_retry, reader.child_path("retry")
                    )
                    if raw_retry is not None
                    else None
                ),
                platform_from=reader.opt_str("platform_from"),
                seed=reader.int_("seed", 0),
                max_context=reader.int_("max_context", 1024),
                slo_targets=reader.float_tuple("slo_targets", None),
                record_threshold=reader.opt_int("record_threshold"),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


# ----------------------------------------------------------------------
# DSE specs
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class AxisSpec(SpecBase):
    """One search-space axis: categorical choice, int grid, or float range."""

    kind = "axis"

    axis: str = "choice"
    name: str = ""
    choices: Optional[Tuple[Union[bool, int, float, str], ...]] = None
    low: Optional[float] = None
    high: Optional[float] = None
    step: int = 1
    levels: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("an axis needs a non-empty name")
        if self.axis == "choice":
            if self.choices is None:
                raise SpecError(
                    f"choice axis {self.name!r} needs a 'choices' list"
                )
            object.__setattr__(self, "choices", tuple(self.choices))
            if (
                self.low is not None
                or self.high is not None
                or self.levels is not None
            ):
                raise SpecError(
                    f"choice axis {self.name!r} takes only 'choices'"
                )
        elif self.axis == "int":
            if self.low is None or self.high is None:
                raise SpecError(f"int axis {self.name!r} needs 'low' and 'high'")
            object.__setattr__(self, "low", int(self.low))
            object.__setattr__(self, "high", int(self.high))
            if self.choices is not None or self.levels is not None:
                raise SpecError(
                    f"int axis {self.name!r} takes 'low'/'high'/'step' only"
                )
        elif self.axis == "float":
            if self.low is None or self.high is None:
                raise SpecError(
                    f"float axis {self.name!r} needs 'low' and 'high'"
                )
            object.__setattr__(self, "low", float(self.low))
            object.__setattr__(self, "high", float(self.high))
            if self.levels is not None:
                object.__setattr__(
                    self, "levels", tuple(float(level) for level in self.levels)
                )
            if self.choices is not None:
                raise SpecError(
                    f"float axis {self.name!r} takes 'low'/'high'/'levels' only"
                )
        else:
            raise SpecError(
                f"unknown axis type {self.axis!r}; choose choice, int, or float"
            )

    def validate(self, path: str = "$") -> None:
        try:
            self.build()
        except ReproError as error:
            raise _wrap(path, error) from None

    def build(self):
        """Build the concrete :mod:`repro.dse.space` axis."""
        from ..dse.space import ChoiceAxis, FloatAxis, IntAxis

        if self.axis == "choice":
            assert self.choices is not None
            return ChoiceAxis(self.name, self.choices)
        if self.axis == "int":
            return IntAxis(
                self.name, int(self.low), int(self.high), step=self.step  # type: ignore[arg-type]
            )
        assert self.low is not None and self.high is not None
        return FloatAxis(self.name, self.low, self.high, levels=self.levels)

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "AxisSpec":
        reader = Fields(data, path, cls.kind)
        axis = reader.str_("axis", "choice")
        try:
            spec = cls(
                axis=axis,
                name=reader.str_("name", ""),
                choices=reader.value_tuple("choices", None),
                low=(
                    reader.opt_int("low")
                    if axis == "int"
                    else reader.opt_float("low")
                ),
                high=(
                    reader.opt_int("high")
                    if axis == "int"
                    else reader.opt_float("high")
                ),
                step=reader.int_("step", 1),
                levels=reader.float_tuple("levels", None),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class SpaceSpec(SpecBase):
    """An ordered set of axes — the serialisable form of a search space."""

    kind = "space"

    axes: Tuple[AxisSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        if not self.axes:
            raise SpecError("a space needs at least one axis")

    def validate(self, path: str = "$") -> None:
        try:
            self.build()
        except ReproError as error:
            raise _wrap(path, error) from None

    def build(self):
        """Build the concrete :class:`~repro.dse.space.SearchSpace`."""
        from ..dse.space import SearchSpace

        return SearchSpace(axes=tuple(axis.build() for axis in self.axes))

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "SpaceSpec":
        reader = Fields(data, path, cls.kind)
        raw_axes = reader.seq("axes")
        axes = tuple(
            AxisSpec.from_dict(item, f"{reader.child_path('axes')}[{index}]")
            for index, item in enumerate(raw_axes)
        )
        try:
            spec = cls(axes=axes)
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class ScenarioSpec(SpecBase):
    """The fixed serving scenario behind serving-level tune objectives."""

    kind = "serving_scenario"

    rate_rps: float = 2.0
    duration_s: float = 20.0
    policy: str = "fifo"
    seed: int = 0
    ttft_slo_s: float = 1.0
    max_context: int = 1024

    def validate(self, path: str = "$") -> None:
        from ..serving.policies import get_policy

        try:
            get_policy(self.policy)
        except ReproError as error:
            raise _wrap(f"{path}.policy", error) from None
        try:
            self.build()
        except ReproError as error:
            raise _wrap(path, error) from None

    def build(self):
        """Build the concrete :class:`~repro.dse.engine.ServingScenario`."""
        from ..dse.engine import ServingScenario

        return ServingScenario(
            rate_rps=self.rate_rps,
            duration_s=self.duration_s,
            policy=self.policy,
            seed=self.seed,
            ttft_slo_s=self.ttft_slo_s,
            max_context=self.max_context,
        )

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "ScenarioSpec":
        reader = Fields(data, path, cls.kind)
        try:
            spec = cls(
                rate_rps=reader.float_("rate_rps", 2.0),
                duration_s=reader.float_("duration_s", 20.0),
                policy=reader.str_("policy", "fifo"),
                seed=reader.int_("seed", 0),
                ttft_slo_s=reader.float_("ttft_slo_s", 1.0),
                max_context=reader.int_("max_context", 1024),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class TuneSpec(SpecBase):
    """One ``Session.tune`` invocation as data.

    ``chips_from`` names an earlier *sweep* stage of the enclosing study;
    the search space's ``chips`` axis is then pinned to the fastest chip
    count that sweep measured.
    """

    kind = "tune"

    workload: WorkloadSpec = WorkloadSpec()
    space: Optional[SpaceSpec] = None
    searcher: str = "random"
    budget: int = 24
    seed: int = 0
    objectives: Tuple[str, ...] = ("latency", "energy")
    constraints: Tuple[str, ...] = ()
    serving: Optional[ScenarioSpec] = None
    chips_from: Optional[str] = None
    prefetch: str = "hidden"
    parallel: Optional[int] = None
    checkpoint_every: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "objectives", tuple(self.objectives))
        object.__setattr__(self, "constraints", tuple(self.constraints))
        if self.budget <= 0:
            raise SpecError(f"budget must be positive, got {self.budget}")
        if not self.objectives:
            raise SpecError("tune needs at least one objective")
        if self.parallel is not None and self.parallel < 1:
            raise SpecError(
                f"parallel worker count must be >= 1, got {self.parallel}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise SpecError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        _prefetch_value(self.prefetch)

    def validate(self, path: str = "$") -> None:
        from ..dse.objectives import get_objective
        from ..dse.pareto import parse_constraint
        from ..dse.searchers import get_searcher

        self.workload.validate(f"{path}.workload")
        if self.space is not None:
            self.space.validate(f"{path}.space")
        if self.serving is not None:
            self.serving.validate(f"{path}.serving")
        try:
            get_searcher(self.searcher)
        except ReproError as error:
            raise _wrap(f"{path}.searcher", error) from None
        for index, name in enumerate(self.objectives):
            try:
                get_objective(name)
            except ReproError as error:
                raise _wrap(f"{path}.objectives[{index}]", error) from None
        for index, expr in enumerate(self.constraints):
            try:
                constraint = parse_constraint(expr)
                get_objective(constraint.objective)
            except ReproError as error:
                raise _wrap(f"{path}.constraints[{index}]", error) from None

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "TuneSpec":
        reader = Fields(data, path, cls.kind)
        space = reader.take("space", None)
        serving = reader.take("serving", None)
        try:
            spec = cls(
                workload=_sub_workload(reader),
                space=(
                    SpaceSpec.from_dict(space, reader.child_path("space"))
                    if space is not None
                    else None
                ),
                searcher=reader.str_("searcher", "random"),
                budget=reader.int_("budget", 24),
                seed=reader.int_("seed", 0),
                objectives=reader.str_tuple("objectives", ("latency", "energy")),
                constraints=reader.str_tuple("constraints", ()),
                serving=(
                    ScenarioSpec.from_dict(serving, reader.child_path("serving"))
                    if serving is not None
                    else None
                ),
                chips_from=reader.opt_str("chips_from"),
                prefetch=reader.str_("prefetch", "hidden"),
                parallel=reader.opt_int("parallel"),
                checkpoint_every=reader.opt_int("checkpoint_every"),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class SearchStateSpec(SpecBase):
    """A tuning run's checkpoint document (``repro tune --checkpoint``).

    The serialised form of :class:`repro.dse.orchestrator.SearchState`:
    the search's identity fields (used as a resume fingerprint), the
    budget spent, the searcher RNG state, every evaluated candidate in
    evaluation order, and the incumbent front as indices into the
    candidate list.  All fields are required, so a checkpoint document
    always carries the whole state.  This spec is *not* runnable — it is
    consumed by ``repro tune --resume`` and Study-stage resume.
    """

    kind = "search_state"

    searcher: str
    seed: int
    budget: int
    workload: str
    axes: Tuple[str, ...]
    space_size: Optional[int]
    objectives: Tuple[str, ...]
    constraints: Tuple[str, ...]
    evaluations_requested: int
    rng_state: Any
    candidates: Tuple[Mapping[str, Any], ...]
    front: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "objectives", tuple(self.objectives))
        object.__setattr__(self, "constraints", tuple(self.constraints))
        object.__setattr__(self, "candidates", tuple(self.candidates))
        object.__setattr__(self, "front", tuple(self.front))
        if self.evaluations_requested < 0:
            raise SpecError(
                "evaluations_requested must be >= 0, got "
                f"{self.evaluations_requested}"
            )
        for index in self.front:
            if not 0 <= index < len(self.candidates):
                raise SpecError(
                    f"front index {index} outside the candidate list "
                    f"(length {len(self.candidates)})"
                )

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "SearchStateSpec":
        reader = Fields(data, path, cls.kind)
        raw_candidates = reader.seq("candidates")
        for index, item in enumerate(raw_candidates):
            if not isinstance(item, Mapping) or "point" not in item:
                raise spec_error(
                    f"{reader.child_path('candidates')}[{index}]",
                    "expected a serialised candidate mapping with a 'point'",
                )
        try:
            spec = cls(
                searcher=reader.str_("searcher"),
                seed=reader.int_("seed"),
                budget=reader.int_("budget"),
                workload=reader.str_("workload"),
                axes=reader.str_tuple("axes"),
                space_size=reader.opt_int("space_size"),
                objectives=reader.str_tuple("objectives"),
                constraints=reader.str_tuple("constraints"),
                evaluations_requested=reader.int_("evaluations_requested"),
                rng_state=reader.take("rng_state"),
                candidates=tuple(raw_candidates),
                front=reader.int_tuple("front"),
            )
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


#: The six spec kinds a study stage (or ``Session`` method) can execute.
RunnableSpec = Union[
    EvalSpec, SweepSpec, CompareSpec, ServingSpec, FleetSpec, TuneSpec
]

#: Kind tag -> runnable spec class.
RUNNABLE_KINDS: Dict[str, Type[SpecBase]] = {
    EvalSpec.kind: EvalSpec,
    SweepSpec.kind: SweepSpec,
    CompareSpec.kind: CompareSpec,
    ServingSpec.kind: ServingSpec,
    FleetSpec.kind: FleetSpec,
    TuneSpec.kind: TuneSpec,
}

#: Which stage kind each reference field must point at.
_REFERENCES = (
    ("platform_from", "tune"),
    ("chips_from", "sweep"),
)

_STAGE_NAME = re.compile(r"^[a-z0-9][a-z0-9_\-]*$")


# ----------------------------------------------------------------------
# Studies
# ----------------------------------------------------------------------
@_register
@dataclass(frozen=True)
class StageSpec(SpecBase):
    """One named stage of a study: a runnable spec plus its artifact name.

    Both fields are required (no defaults), so the serialised form always
    carries them — a stage without a spec is meaningless.
    """

    kind = "stage"

    name: str
    spec: RunnableSpec

    def __post_init__(self) -> None:
        if not _STAGE_NAME.match(self.name):
            raise SpecError(
                f"invalid stage name {self.name!r}; use lowercase letters, "
                "digits, '-' and '_' (the name becomes the artifact filename)"
            )
        if self.name == "study":
            raise SpecError(
                "stage name 'study' is reserved: its artifact would collide "
                "with the study.json manifest"
            )
        if type(self.spec) not in RUNNABLE_KINDS.values():
            raise SpecError(
                f"stage {self.name!r} holds a non-runnable spec "
                f"{type(self.spec).__name__}; runnable kinds: "
                + ", ".join(sorted(RUNNABLE_KINDS))
            )

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "StageSpec":
        reader = Fields(data, path, cls.kind)
        name = reader.str_("name")
        raw = reader.take("spec")
        spec_path = reader.child_path("spec")
        if not isinstance(raw, Mapping):
            raise spec_error(spec_path, f"expected a spec mapping, got {raw!r}")
        declared = raw.get("kind")
        if declared not in RUNNABLE_KINDS:
            raise spec_error(
                f"{spec_path}.kind",
                f"stage specs must be one of "
                f"{', '.join(sorted(RUNNABLE_KINDS))}; got {declared!r}",
            )
        inner = RUNNABLE_KINDS[declared].from_dict(raw, spec_path)  # type: ignore[attr-defined]
        try:
            spec = cls(name=name, spec=inner)  # type: ignore[arg-type]
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


@_register
@dataclass(frozen=True)
class StudySpec(SpecBase):
    """A named pipeline of runnable stages — a whole experiment as data.

    Stages execute in order through one shared session; later stages may
    reference earlier ones by name (``platform_from`` a tune stage,
    ``chips_from`` a sweep stage).  :meth:`validate` checks every
    registry name and reference without running anything — the contract
    behind ``repro study validate``.
    """

    kind = "study"

    name: str = ""
    description: str = ""
    stages: Tuple[StageSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        if not _STAGE_NAME.match(self.name):
            raise SpecError(
                f"invalid study name {self.name!r}; use lowercase letters, "
                "digits, '-' and '_'"
            )
        if not self.stages:
            raise SpecError("a study needs at least one stage")
        seen = set()
        for stage in self.stages:
            if stage.name in seen:
                raise SpecError(f"duplicate stage name {stage.name!r}")
            seen.add(stage.name)

    @property
    def stage_names(self) -> Tuple[str, ...]:
        """Stage names, in execution order."""
        return tuple(stage.name for stage in self.stages)

    def stage(self, name: str) -> StageSpec:
        """Look one stage up by name."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise SpecError(
            f"study {self.name!r} has no stage {name!r}; stages: "
            + ", ".join(self.stage_names)
        )

    def validate(self, path: str = "$") -> None:
        """Resolve every name and reference without executing anything."""
        completed: Dict[str, str] = {}
        for index, stage in enumerate(self.stages):
            stage_path = f"{path}.stages[{index}]"
            stage.spec.validate(f"{stage_path}.spec")  # type: ignore[union-attr]
            for ref_field, wanted_kind in _REFERENCES:
                target = getattr(stage.spec, ref_field, None)
                if target is None:
                    continue
                ref_path = f"{stage_path}.spec.{ref_field}"
                if target not in completed:
                    raise spec_error(
                        ref_path,
                        f"references stage {target!r}, which is not an "
                        "earlier stage of this study",
                    )
                if completed[target] != wanted_kind:
                    raise spec_error(
                        ref_path,
                        f"references stage {target!r} of kind "
                        f"{completed[target]!r}; {ref_field} needs a "
                        f"{wanted_kind} stage",
                    )
            completed[stage.name] = stage.spec.kind
        return None

    @classmethod
    def from_dict(cls, data: Any, path: str = "$") -> "StudySpec":
        reader = Fields(data, path, cls.kind)
        name = reader.str_("name", "")
        description = reader.str_("description", "")
        raw_stages = reader.seq("stages")
        stages = tuple(
            StageSpec.from_dict(item, f"{reader.child_path('stages')}[{index}]")
            for index, item in enumerate(raw_stages)
        )
        try:
            spec = cls(name=name, description=description, stages=stages)
        except SpecError as error:
            raise _rescope(error, path)
        reader.finish()
        return spec


# ----------------------------------------------------------------------
# Shared decode helpers / top-level entry points
# ----------------------------------------------------------------------
def _sub_workload(reader: Fields) -> WorkloadSpec:
    value = reader.take("workload", None)
    if value is None:
        return WorkloadSpec()
    return WorkloadSpec.from_dict(value, reader.child_path("workload"))


def _sub_platform(reader: Fields) -> PlatformSpec:
    value = reader.take("platform", None)
    if value is None:
        return PlatformSpec()
    return PlatformSpec.from_dict(value, reader.child_path("platform"))


def spec_from_dict(data: Any, path: str = "$") -> SpecBase:
    """Decode any spec mapping by its ``kind`` tag."""
    if not isinstance(data, Mapping):
        raise spec_error(path, f"expected a spec mapping, got {type(data).__name__}")
    kind = data.get("kind")
    if kind is None:
        raise spec_error(path, "missing the 'kind' tag")
    cls = _KINDS.get(kind)
    if cls is None:
        # Architecture specs live in repro.arch (which registers its kinds
        # on import); load it lazily so documents decode without callers
        # importing the package first.
        from .. import arch  # noqa: F401

        cls = _KINDS.get(kind)
    if cls is None:
        raise spec_error(
            f"{path}.kind",
            f"unknown spec kind {kind!r}; known kinds: "
            + ", ".join(sorted(_KINDS)),
        )
    return cls.from_dict(data, path)  # type: ignore[attr-defined]


def loads(text: str, path: str = "$") -> SpecBase:
    """Parse a JSON document into the spec it describes."""
    import json as _json

    try:
        data = _json.loads(text)
    except ValueError as error:
        raise spec_error(path, f"invalid JSON: {error}") from None
    return spec_from_dict(data, path)


def load_spec(path: Union[str, "object"]) -> SpecBase:
    """Read one spec document from a JSON file."""
    from pathlib import Path

    file_path = Path(str(path))
    try:
        text = file_path.read_text(encoding="utf-8")
    except OSError as error:
        raise SpecError(f"cannot read spec file {file_path}: {error}") from None
    return loads(text, path=str(file_path))
