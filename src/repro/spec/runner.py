"""Execution of runnable specs on a :class:`~repro.api.Session`.

:func:`execute` is the single dispatch point behind both the spec-accepting
``Session.run/sweep/compare/serve/serve_fleet/tune`` overloads and the
:class:`~repro.api.study.Study` pipeline runner.  It resolves a spec's
registry names into live objects, honours stage references (a serve stage
running on a tuned platform, a tune stage pinning its chip axis to a
sweep's fastest count), and returns exactly the object the equivalent
imperative call would have returned — same types, same values, same
memoisation keys — so declarative and imperative drives of the library
are byte-identical.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Mapping, Optional, Tuple

from ..api.session import Session
from ..core.placement import PrefetchAccounting
from ..errors import AnalysisError, SpecError
from ..hw.platform import MultiChipPlatform
from .specs import (
    CompareSpec,
    EvalSpec,
    FleetSpec,
    RunnableSpec,
    ServingSpec,
    SpaceSpec,
    StudySpec,
    SweepSpec,
    TuneSpec,
)

__all__ = ["execute"]


@contextmanager
def _session_platform_factory(session: Session, factory):
    """Temporarily make ``factory`` the session's chip-count resolver.

    Lets a sweep spec's platform preset ride the native ``Session.sweep``
    path — including its process-pool prefill — whatever the session was
    constructed with.  Safe for the caches: results are keyed by the
    content hash of the concrete platform, never by the factory.
    """
    if session.platform is None and session.platform_factory is factory:
        yield
        return
    previous = (session.platform, session.platform_factory)
    session.platform = None
    session.platform_factory = factory
    try:
        yield
    finally:
        session.platform, session.platform_factory = previous


@contextmanager
def _session_prefetch(session: Session, prefetch: str):
    """Temporarily apply a spec's prefetch-accounting policy to a session.

    Results are content-hashed with the options in effect, so flipping
    the policy back afterwards cannot corrupt the session's caches.
    """
    policy = PrefetchAccounting(prefetch)
    if session.prefetch_accounting is policy:
        yield
        return
    previous = session.prefetch_accounting
    session.prefetch_accounting = policy
    try:
        yield
    finally:
        session.prefetch_accounting = previous


def _stage_result(
    stages: Optional[Mapping[str, Any]],
    reference: str,
    wanted_kind: str,
    field: str,
) -> Any:
    """Look up a referenced earlier stage's outcome."""
    outcome = (stages or {}).get(reference)
    if outcome is None:
        raise SpecError(
            f"{field}={reference!r} references an unknown (or not yet "
            "executed) stage; references must name an earlier stage of "
            "the same study"
        )
    if outcome.kind != wanted_kind:
        raise SpecError(
            f"{field}={reference!r} references a {outcome.kind} stage; "
            f"{field} needs a {wanted_kind} stage"
        )
    return outcome.result


def _resolve_platform(
    spec,
    stages: Optional[Mapping[str, Any]],
) -> Tuple[MultiChipPlatform, str]:
    """The (platform, strategy) a spec evaluates on.

    With ``platform_from`` set, both come from the referenced tune
    stage's best feasible candidate (its materialised design); otherwise
    the spec's own preset and strategy name are used.
    """
    strategy = getattr(spec, "strategy", "paper")
    if getattr(spec, "platform_from", None) is None:
        return spec.platform.build(), strategy
    tune_result = _stage_result(
        stages, spec.platform_from, "tune", "platform_from"
    )
    best = tune_result.best()  # best feasible by the run's first objective
    from ..dse.space import materialise

    design = materialise(dict(best.point))
    return design.platform, design.strategy


def execute(
    session: Session,
    spec: RunnableSpec,
    *,
    stages: Optional[Mapping[str, Any]] = None,
    parallel: Optional[int] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume: Optional[str] = None,
):
    """Run one spec through ``session`` and return its native result.

    ``stages`` maps earlier stage names to their outcomes (objects with
    ``kind`` and ``result`` attributes) when executing inside a study;
    standalone execution passes none, and any reference then fails with
    a precise error.

    ``parallel``, ``checkpoint``, ``checkpoint_every``, and ``resume``
    are orchestrator overrides for tune specs (CLI flags and Study
    auto-resume); ``parallel``/``checkpoint_every`` fall back to the
    spec's own fields when not given.  Passing any of them with a
    non-tune spec is an error.
    """
    overrides = (parallel, checkpoint, checkpoint_every, resume)
    if any(value is not None for value in overrides) and not isinstance(
        spec, TuneSpec
    ):
        raise AnalysisError(
            "parallel/checkpoint/resume apply to tune specs only, not "
            f"{type(spec).__name__}"
        )
    if isinstance(spec, EvalSpec):
        return _execute_eval(session, spec, stages)
    if isinstance(spec, SweepSpec):
        return _execute_sweep(session, spec)
    if isinstance(spec, CompareSpec):
        return _execute_compare(session, spec, stages)
    if isinstance(spec, ServingSpec):
        return _execute_serve(session, spec, stages)
    if isinstance(spec, FleetSpec):
        return _execute_fleet(session, spec, stages)
    if isinstance(spec, TuneSpec):
        return _execute_tune(
            session,
            spec,
            stages,
            parallel=parallel,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )
    if isinstance(spec, StudySpec):
        raise AnalysisError(
            "a study spec is a pipeline, not a single evaluation; run it "
            "with repro.api.Study (or `repro study run`)"
        )
    raise AnalysisError(
        f"cannot execute a {type(spec).__name__}; runnable specs are "
        "EvalSpec, SweepSpec, CompareSpec, ServingSpec, FleetSpec, and "
        "TuneSpec"
    )


def _execute_eval(session, spec: EvalSpec, stages):
    workload = spec.workload.build()
    platform, strategy = _resolve_platform(spec, stages)
    with _session_prefetch(session, spec.prefetch):
        return session.run(workload, strategy, platform=platform)


def _execute_sweep(session, spec: SweepSpec):
    from ..api.registry import get_strategy
    from ..hw.presets import get_platform_preset

    workload = spec.workload.build()
    canonical = get_strategy(spec.strategy).name
    preset = get_platform_preset(spec.platform.preset)
    with _session_prefetch(session, spec.prefetch), _session_platform_factory(
        session, preset.factory
    ):
        # The native sweep path honours `parallel` (process-pool prefill)
        # for any preset, since the preset factory is the resolver now.
        return session.sweep(
            workload, spec.chips, strategy=canonical, parallel=spec.parallel
        )


def _execute_compare(session, spec: CompareSpec, stages):
    workload = spec.workload.build()
    if spec.platform_from is not None:
        platform, _ = _resolve_platform(spec, stages)
    else:
        platform = spec.platform.build()
    with _session_prefetch(session, spec.prefetch):
        return session.compare(
            workload, platform=platform, strategies=spec.strategies
        )


def _execute_serve(session, spec: ServingSpec, stages):
    config = spec.model.build()
    trace = spec.trace.build()
    platform, strategy = _resolve_platform(spec, stages)
    return session.serve(
        config,
        trace,
        policy=spec.policy,
        strategy=strategy,
        platform=platform,
        seed=spec.seed,
        max_context=spec.max_context,
        slo_targets=spec.slo_targets,
    )


def _execute_fleet(session, spec: FleetSpec, stages):
    config = spec.model.build()
    trace = spec.trace.build()
    entries = tuple(entry.build() for entry in spec.platforms)
    classes = tuple(slo_class.build() for slo_class in spec.classes)
    autoscaler = (
        spec.autoscaler.build() if spec.autoscaler is not None else None
    )
    faults = spec.faults.build() if spec.faults is not None else None
    retry = spec.retry.build() if spec.retry is not None else None
    if spec.platform_from is not None:
        platform, strategy = _resolve_platform(spec, stages)
    else:
        platform, strategy = None, spec.strategy
    return session.serve_fleet(
        config,
        trace,
        platforms=entries,
        router=spec.router,
        policy=spec.policy,
        strategy=strategy,
        classes=classes,
        autoscaler=autoscaler,
        platform=platform,
        seed=spec.seed,
        max_context=spec.max_context,
        slo_targets=spec.slo_targets,
        record_threshold=spec.record_threshold,
        faults=faults,
        retry=retry,
    )


def _pin_chips(space_spec: Optional[SpaceSpec], chips: int):
    """The tune space with its ``chips`` axis pinned to one count."""
    from ..dse.space import ChoiceAxis, SearchSpace, default_space

    space = space_spec.build() if space_spec is not None else default_space()
    pinned = ChoiceAxis("chips", (chips,))
    axes = tuple(
        pinned if axis.name == "chips" else axis for axis in space.axes
    )
    if all(axis.name != "chips" for axis in space.axes):
        axes = axes + (pinned,)
    return SearchSpace(axes=axes)


def _execute_tune(
    session,
    spec: TuneSpec,
    stages,
    *,
    parallel: Optional[int] = None,
    checkpoint: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume: Optional[str] = None,
):
    workload = spec.workload.build()
    if spec.chips_from is not None:
        sweep = _stage_result(stages, spec.chips_from, "sweep", "chips_from")
        fastest = min(sweep.results, key=lambda result: result.block_cycles)
        space = _pin_chips(spec.space, fastest.num_chips)
    else:
        space = spec.space.build() if spec.space is not None else None
    scenario = spec.serving.build() if spec.serving is not None else None
    with _session_prefetch(session, spec.prefetch):
        return session.tune(
            workload,
            space,
            searcher=spec.searcher,
            budget=spec.budget,
            seed=spec.seed,
            objectives=spec.objectives,
            constraints=spec.constraints,
            serving=scenario,
            parallel=parallel if parallel is not None else spec.parallel,
            checkpoint=checkpoint,
            checkpoint_every=(
                checkpoint_every
                if checkpoint_every is not None
                else spec.checkpoint_every
            ),
            resume=resume,
        )
