"""Declarative spec layer: every experiment as data.

This package turns each of the library's verbs into a typed, frozen,
JSON-serialisable spec — :class:`EvalSpec`, :class:`SweepSpec`,
:class:`CompareSpec`, :class:`ServingSpec`, :class:`FleetSpec`,
:class:`TuneSpec` — plus the
leaf specs they compose (:class:`ModelSpec`, :class:`WorkloadSpec`,
:class:`PlatformSpec`, :class:`TraceSpec`, :class:`SpaceSpec`, ...), and
:class:`StudySpec`, a named pipeline of stages with cross-stage
references.  A spec can be saved, diffed, shared, validated
(:meth:`~repro.spec.specs.StudySpec.validate`, with precise document
paths), and replayed bit-for-bit:

* pass a spec straight to :class:`repro.api.Session`
  (``session.run(EvalSpec(...))``),
* run a whole pipeline with :class:`repro.api.Study` or
  ``repro study run <spec.json>``,
* capture any CLI invocation as a spec with ``--emit-spec``.

See ``docs/SPECS.md`` for the schema reference and
:mod:`repro.spec.studies` for the shipped example studies.
"""

from .base import SPEC_SCHEMA_VERSION, SpecBase
from .specs import (
    AutoscalerSpec,
    AxisSpec,
    CompareSpec,
    DEFAULT_SEQ_LEN,
    EvalSpec,
    FaultEventSpec,
    FaultSpec,
    FleetPlatformSpec,
    FleetSpec,
    ModelSpec,
    PlatformSpec,
    RUNNABLE_KINDS,
    RetryPolicySpec,
    RunnableSpec,
    SLOClassSpec,
    ScenarioSpec,
    SearchStateSpec,
    ServingSpec,
    SpaceSpec,
    StageSpec,
    StudySpec,
    SweepSpec,
    TraceSpec,
    TuneSpec,
    WorkloadSpec,
    load_spec,
    loads,
    spec_from_dict,
)
from .studies import get_study, list_studies, register_study, study_description

__all__ = [
    "AutoscalerSpec",
    "AxisSpec",
    "CompareSpec",
    "DEFAULT_SEQ_LEN",
    "EvalSpec",
    "FaultEventSpec",
    "FaultSpec",
    "FleetPlatformSpec",
    "FleetSpec",
    "ModelSpec",
    "PlatformSpec",
    "RUNNABLE_KINDS",
    "RetryPolicySpec",
    "RunnableSpec",
    "SLOClassSpec",
    "SPEC_SCHEMA_VERSION",
    "ScenarioSpec",
    "SearchStateSpec",
    "ServingSpec",
    "SpaceSpec",
    "SpecBase",
    "StageSpec",
    "StudySpec",
    "SweepSpec",
    "TraceSpec",
    "TuneSpec",
    "WorkloadSpec",
    "get_study",
    "list_studies",
    "load_spec",
    "loads",
    "register_study",
    "spec_from_dict",
    "study_description",
]
