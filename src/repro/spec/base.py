"""Spec-layer foundation: schema version, serialisation, typed decoding.

Every spec in :mod:`repro.spec` is a frozen dataclass deriving from
:class:`SpecBase`.  The base class provides the generic half of the
serialisation contract:

* :meth:`SpecBase.to_dict` — a canonical, JSON-ready mapping: the spec's
  ``kind`` tag plus every field whose value differs from the field's
  default (so documents stay small and diffs stay meaningful);
* :meth:`SpecBase.to_json` — the canonical document text: sorted keys,
  two-space indent, a ``schema`` version tag, and a trailing newline —
  byte-deterministic for equal specs.

Decoding is hand-written per spec class (the types are the contract), but
all of it goes through the :class:`Fields` reader below, which tracks the
JSON path of every access so a validation failure reports *where* the
document is wrong (``stages[2].spec.workload.seq_len: expected a positive
integer``), and rejects unknown fields so typos cannot silently become
defaults.
"""

from __future__ import annotations

import json
from dataclasses import MISSING, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import SpecError

__all__ = [
    "Fields",
    "SPEC_SCHEMA_VERSION",
    "SpecBase",
    "check_schema",
    "spec_error",
]

#: Version of the spec document schema.  Bump on any incompatible change
#: to a spec's fields; :func:`check_schema` rejects documents written by a
#: different version with a precise error instead of misparsing them.
SPEC_SCHEMA_VERSION = 1


def spec_error(path: str, message: str) -> SpecError:
    """A :class:`SpecError` whose message leads with the JSON path."""
    return SpecError(f"{path}: {message}")


def check_schema(data: Mapping[str, Any], path: str) -> None:
    """Validate an (optional) ``schema`` tag against this library's version."""
    version = data.get("schema")
    if version is None:
        return
    if version != SPEC_SCHEMA_VERSION:
        raise spec_error(
            f"{path}.schema",
            f"unsupported spec schema version {version!r}; this library "
            f"reads version {SPEC_SCHEMA_VERSION}",
        )


def _encode(value: Any) -> Any:
    """Recursively encode a field value into JSON-ready primitives."""
    if isinstance(value, SpecBase):
        return value.to_dict()
    if isinstance(value, tuple):
        return [_encode(item) for item in value]
    return value


class SpecBase:
    """Shared serialisation behaviour of every spec dataclass.

    Subclasses set a ``kind`` class attribute (the dispatch tag of the
    serialised form) and implement ``from_dict(data, path)``; the generic
    encoder here derives :meth:`to_dict` from the dataclass fields.
    """

    kind: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """Canonical mapping form: the kind tag plus non-default fields."""
        data: Dict[str, Any] = {"kind": self.kind}
        for field in fields(self):  # type: ignore[arg-type]
            value = getattr(self, field.name)
            if field.default is not MISSING and value == field.default:
                continue
            if (
                field.default_factory is not MISSING  # type: ignore[misc]
                and value == field.default_factory()  # type: ignore[misc]
            ):
                continue
            data[field.name] = _encode(value)
        return data

    def to_json(self) -> str:
        """Canonical document text (schema tag, sorted keys, trailing newline)."""
        document = {"schema": SPEC_SCHEMA_VERSION, **self.to_dict()}
        return json.dumps(document, indent=2, sort_keys=True) + "\n"


class Fields:
    """Typed, path-tracking reader over one spec mapping.

    Every accessor removes the field it read; :meth:`finish` then rejects
    whatever remains, so an unknown (or misspelled) field is an error with
    the exact document path rather than a silently applied default.
    """

    #: Sentinel distinguishing "no default" from "default None".
    REQUIRED = object()

    def __init__(self, data: Any, path: str, kind: str) -> None:
        if not isinstance(data, Mapping):
            raise spec_error(
                path, f"expected a {kind!r} mapping, got {type(data).__name__}"
            )
        check_schema(data, path)
        declared = data.get("kind")
        if declared is not None and declared != kind:
            raise spec_error(
                f"{path}.kind", f"expected kind {kind!r}, got {declared!r}"
            )
        self._data = {
            key: value
            for key, value in data.items()
            if key not in ("kind", "schema")
        }
        self.path = path
        self.kind = kind

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def child_path(self, key: str) -> str:
        return f"{self.path}.{key}"

    def take(self, key: str, default: Any = REQUIRED) -> Any:
        if key in self._data:
            return self._data.pop(key)
        if default is Fields.REQUIRED:
            raise spec_error(
                self.path, f"missing required field {key!r} of a {self.kind} spec"
            )
        return default

    def has(self, key: str) -> bool:
        return key in self._data

    def finish(self) -> None:
        """Reject any fields no accessor consumed."""
        if self._data:
            unknown = ", ".join(sorted(self._data))
            raise spec_error(
                self.path,
                f"unknown field(s) {unknown} for a {self.kind} spec",
            )

    # ------------------------------------------------------------------
    # Typed accessors
    # ------------------------------------------------------------------
    def str_(self, key: str, default: Any = REQUIRED) -> Any:
        value = self.take(key, default)
        if value is not default and not isinstance(value, str):
            raise spec_error(
                self.child_path(key), f"expected a string, got {value!r}"
            )
        return value

    def opt_str(self, key: str, default: Optional[str] = None) -> Optional[str]:
        value = self.take(key, default)
        if value is not None and not isinstance(value, str):
            raise spec_error(
                self.child_path(key), f"expected a string or null, got {value!r}"
            )
        return value

    def bool_(self, key: str, default: Any = REQUIRED) -> Any:
        value = self.take(key, default)
        if value is not default and not isinstance(value, bool):
            raise spec_error(
                self.child_path(key), f"expected a boolean, got {value!r}"
            )
        return value

    def int_(self, key: str, default: Any = REQUIRED) -> Any:
        value = self.take(key, default)
        if value is default:
            return value
        return self._as_int(self.child_path(key), value)

    def opt_int(self, key: str, default: Optional[int] = None) -> Optional[int]:
        value = self.take(key, default)
        if value is None:
            return None
        return self._as_int(self.child_path(key), value)

    def float_(self, key: str, default: Any = REQUIRED) -> Any:
        value = self.take(key, default)
        if value is default:
            return value
        return self._as_float(self.child_path(key), value)

    def opt_float(
        self, key: str, default: Optional[float] = None
    ) -> Optional[float]:
        value = self.take(key, default)
        if value is None:
            return None
        return self._as_float(self.child_path(key), value)

    def int_tuple(self, key: str, default: Any = REQUIRED) -> Any:
        values = self._seq(key, default)
        if not isinstance(values, (list, tuple)):
            return values
        return tuple(
            self._as_int(f"{self.child_path(key)}[{index}]", value)
            for index, value in enumerate(values)
        )

    def float_tuple(self, key: str, default: Any = REQUIRED) -> Any:
        values = self._seq(key, default)
        if not isinstance(values, (list, tuple)):
            return values
        return tuple(
            self._as_float(f"{self.child_path(key)}[{index}]", value)
            for index, value in enumerate(values)
        )

    def str_tuple(self, key: str, default: Any = REQUIRED) -> Any:
        values = self._seq(key, default)
        if not isinstance(values, (list, tuple)):
            return values
        for index, value in enumerate(values):
            if not isinstance(value, str):
                raise spec_error(
                    f"{self.child_path(key)}[{index}]",
                    f"expected a string, got {value!r}",
                )
        return tuple(values)

    def value_tuple(self, key: str, default: Any = REQUIRED) -> Any:
        """A tuple of JSON scalars (bool/int/float/str), type preserved."""
        values = self._seq(key, default)
        if not isinstance(values, (list, tuple)):
            return values
        for index, value in enumerate(values):
            if not isinstance(value, (bool, int, float, str)):
                raise spec_error(
                    f"{self.child_path(key)}[{index}]",
                    f"expected a scalar value, got {value!r}",
                )
        return tuple(values)

    def seq(self, key: str, default: Any = REQUIRED) -> Any:
        """A raw sequence (items decoded by the caller)."""
        return self._seq(key, default)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _seq(self, key: str, default: Any) -> Any:
        value = self.take(key, default)
        if value is default or value is None:
            return value
        if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
            raise spec_error(
                self.child_path(key), f"expected a list, got {value!r}"
            )
        return list(value)

    @staticmethod
    def _as_int(path: str, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            if isinstance(value, float) and value.is_integer():
                return int(value)
            raise spec_error(path, f"expected an integer, got {value!r}")
        return value

    @staticmethod
    def _as_float(path: str, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise spec_error(path, f"expected a number, got {value!r}")
        return float(value)
