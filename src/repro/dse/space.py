"""Declarative search spaces over platforms and partition strategies.

A *search space* is a tuple of typed parameter axes — categorical choices,
stepped integer ranges, and (optionally discretised) float ranges — that a
design-space search draws candidate points from.  A *point* is a plain
``{axis name: value}`` mapping; :func:`materialise` turns a point into the
concrete :class:`~repro.hw.platform.MultiChipPlatform` plus partitioning
strategy that :class:`~repro.api.Session` evaluates, validating every
value on the way.

Sampling is fully deterministic: every draw goes through an explicit
:class:`random.Random` instance, so equal seeds reproduce equal candidate
sequences (a property the test suite asserts).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from ..api.registry import get_strategy
from ..errors import ArchitectureError, ConfigurationError
from ..graph.workload import Workload
from ..hw.interconnect import ChipToChipLink
from ..hw.platform import MultiChipPlatform
from ..hw.presets import (
    SIRACUSA_L2_RUNTIME_RESERVE_BYTES,
    mipi_link,
    siracusa_chip,
)
from ..units import gigabytes_per_second, kib

__all__ = [
    "Axis",
    "ChoiceAxis",
    "DesignPoint",
    "FloatAxis",
    "IntAxis",
    "MODEL_AXES",
    "PLATFORM_AXES",
    "Point",
    "SearchSpace",
    "Value",
    "default_space",
    "materialise",
    "point_key",
]

#: A single axis value: categorical label or numeric level.
Value = Union[bool, int, float, str]

#: A candidate configuration: axis name -> value.
Point = Dict[str, Value]


# ----------------------------------------------------------------------
# Axes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChoiceAxis:
    """A categorical axis: the value is one of an explicit tuple of choices."""

    name: str
    choices: Tuple[Value, ...]

    def __post_init__(self) -> None:
        _check_axis_name(self.name)
        object.__setattr__(self, "choices", tuple(self.choices))
        if not self.choices:
            raise ConfigurationError(f"axis {self.name!r} needs at least one choice")
        if len(set(self.choices)) != len(self.choices):
            raise ConfigurationError(f"axis {self.name!r} has duplicate choices")

    @property
    def size(self) -> int:
        """Number of distinct values."""
        return len(self.choices)

    def contains(self, value: Value) -> bool:
        """Whether ``value`` is one of the declared choices."""
        return any(value == choice for choice in self.choices)

    def values(self) -> Tuple[Value, ...]:
        """All values, in declaration order."""
        return self.choices

    def sample(self, rng: random.Random) -> Value:
        """Draw one choice uniformly."""
        return self.choices[rng.randrange(len(self.choices))]


@dataclass(frozen=True)
class IntAxis:
    """A stepped integer range ``low, low+step, ... <= high`` (inclusive)."""

    name: str
    low: int
    high: int
    step: int = 1

    def __post_init__(self) -> None:
        _check_axis_name(self.name)
        if self.step <= 0:
            raise ConfigurationError(f"axis {self.name!r} needs a positive step")
        if self.high < self.low:
            raise ConfigurationError(
                f"axis {self.name!r} has an empty range [{self.low}, {self.high}]"
            )

    @property
    def size(self) -> int:
        """Number of distinct values."""
        return (self.high - self.low) // self.step + 1

    def contains(self, value: Value) -> bool:
        """Whether ``value`` is an on-grid integer within the bounds."""
        if isinstance(value, bool) or not isinstance(value, int):
            return False
        return self.low <= value <= self.high and (value - self.low) % self.step == 0

    def values(self) -> Tuple[int, ...]:
        """All values, ascending."""
        return tuple(range(self.low, self.high + 1, self.step))

    def sample(self, rng: random.Random) -> int:
        """Draw one grid value uniformly."""
        return self.low + self.step * rng.randrange(self.size)


@dataclass(frozen=True)
class FloatAxis:
    """A bounded float range, optionally discretised into named levels.

    With ``levels`` the axis samples and enumerates only those levels (all
    of which must lie inside the bounds); without, sampling is uniform over
    ``[low, high]`` and the axis cannot be grid-enumerated.
    """

    name: str
    low: float
    high: float
    levels: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        _check_axis_name(self.name)
        if self.high < self.low:
            raise ConfigurationError(
                f"axis {self.name!r} has an empty range [{self.low}, {self.high}]"
            )
        if self.levels is not None:
            object.__setattr__(self, "levels", tuple(self.levels))
            if not self.levels:
                raise ConfigurationError(
                    f"axis {self.name!r} needs at least one level"
                )
            if len(set(self.levels)) != len(self.levels):
                raise ConfigurationError(f"axis {self.name!r} has duplicate levels")
            for level in self.levels:
                if not self.low <= level <= self.high:
                    raise ConfigurationError(
                        f"axis {self.name!r} level {level} outside "
                        f"[{self.low}, {self.high}]"
                    )

    @property
    def size(self) -> Optional[int]:
        """Number of distinct values, or ``None`` when continuous."""
        return len(self.levels) if self.levels is not None else None

    def contains(self, value: Value) -> bool:
        """Whether ``value`` is a declared level (discretised) or in bounds.

        Mirrors :meth:`IntAxis.contains`: a discretised axis only contains
        the values its sampler and grid can actually produce.
        """
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        if self.levels is not None:
            return any(value == level for level in self.levels)
        return self.low <= value <= self.high

    def values(self) -> Tuple[float, ...]:
        """The discretised levels; a continuous axis cannot be enumerated."""
        if self.levels is None:
            raise ConfigurationError(
                f"axis {self.name!r} is continuous; give it explicit levels "
                "to enumerate it (grid search needs a finite space)"
            )
        return self.levels

    def sample(self, rng: random.Random) -> float:
        """Draw one level (discretised) or a uniform value (continuous)."""
        if self.levels is not None:
            return self.levels[rng.randrange(len(self.levels))]
        return rng.uniform(self.low, self.high)


Axis = Union[ChoiceAxis, IntAxis, FloatAxis]


def _check_axis_name(name: str) -> None:
    if not name or not isinstance(name, str):
        raise ConfigurationError("an axis needs a non-empty string name")


# ----------------------------------------------------------------------
# The space
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SearchSpace:
    """An ordered tuple of uniquely-named axes.

    The axis order is the canonical point order: sampling, enumeration,
    and the exported JSON all present values axis by axis in this order,
    which (together with seeded :class:`random.Random` draws) is what
    makes the whole DSE layer byte-deterministic.
    """

    axes: Tuple[Axis, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        if not self.axes:
            raise ConfigurationError("a search space needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate axis names in {names}")

    @property
    def names(self) -> Tuple[str, ...]:
        """Axis names, in canonical order."""
        return tuple(axis.name for axis in self.axes)

    def axis(self, name: str) -> Axis:
        """Look one axis up by name."""
        for axis in self.axes:
            if axis.name == name:
                return axis
        raise ConfigurationError(
            f"no axis {name!r} in this space; axes: {', '.join(self.names)}"
        )

    @property
    def size(self) -> Optional[int]:
        """Number of distinct points, or ``None`` if any axis is continuous."""
        total = 1
        for axis in self.axes:
            if axis.size is None:
                return None
            total *= axis.size
        return total

    def contains(self, point: Mapping[str, Value]) -> bool:
        """Whether ``point`` names exactly these axes with in-bounds values."""
        if set(point) != set(self.names):
            return False
        return all(axis.contains(point[axis.name]) for axis in self.axes)

    def sample(self, rng: random.Random) -> Point:
        """Draw one point, one axis at a time in canonical order."""
        return {axis.name: axis.sample(rng) for axis in self.axes}

    def sample_many(self, count: int, seed: int = 0) -> List[Point]:
        """Draw ``count`` points from a fresh seeded generator."""
        rng = random.Random(seed)
        return [self.sample(rng) for _ in range(count)]

    def grid(self) -> Iterator[Point]:
        """Enumerate every point (itertools.product over the axis values).

        Raises:
            ConfigurationError: If any axis is continuous (unenumerable).
        """
        values = [axis.values() for axis in self.axes]
        for combination in itertools.product(*values):
            yield dict(zip(self.names, combination))

    def mutate(self, point: Mapping[str, Value], rng: random.Random) -> Point:
        """Return a neighbour of ``point``: one axis resampled.

        The resample retries a few times to change the value; a
        single-choice axis leaves the point unchanged.
        """
        mutated = dict(point)
        axis = self.axes[rng.randrange(len(self.axes))]
        value = point[axis.name]
        for _ in range(8):
            value = axis.sample(rng)
            if value != point[axis.name]:
                break
        mutated[axis.name] = value
        return mutated


def point_key(point: Mapping[str, Value]) -> Tuple[Tuple[str, Value], ...]:
    """Canonical hashable identity of a point (name-sorted items)."""
    return tuple(sorted(point.items()))


# ----------------------------------------------------------------------
# Materialisation
# ----------------------------------------------------------------------
#: Axis names understood by :func:`materialise`, platform side.
PLATFORM_AXES = (
    "chips",
    "cores",
    "freq_mhz",
    "l2_kib",
    "link_gbps",
    "link_pj_per_byte",
    "group_size",
)

#: Axis names understood by :func:`materialise`, model side: the model
#: registry name plus architecture overrides applied to its configuration
#: (``kv_heads`` for GQA/MQA grouping, MoE ``num_experts``/``moe_top_k``,
#: and a sliding ``attention_window`` where ``0`` means "no window").
#: These axes require a base workload — see :func:`materialise`.
MODEL_AXES = (
    "model",
    "kv_heads",
    "num_experts",
    "moe_top_k",
    "attention_window",
)

#: Every axis name :func:`materialise` understands.
KNOWN_AXES = PLATFORM_AXES + MODEL_AXES + ("strategy",)


@dataclass(frozen=True)
class DesignPoint:
    """A materialised point: what a session evaluates for that point.

    Attributes:
        point: The originating point, in canonical name-sorted item form.
        platform: The concrete multi-chip platform.
        strategy: Canonical registry name of the partitioning strategy.
        workload: The (possibly architecture-overridden) workload, when the
            point carries model axes and a base workload was supplied;
            ``None`` means "evaluate the caller's own workload".
    """

    point: Tuple[Tuple[str, Value], ...]
    platform: MultiChipPlatform
    strategy: str
    workload: Optional[Workload] = None


def _require_int(name: str, value: Value) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        if isinstance(value, float) and value.is_integer():
            return int(value)
        raise ConfigurationError(f"axis {name!r} needs an integer, got {value!r}")
    return value


def _require_number(name: str, value: Value) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"axis {name!r} needs a number, got {value!r}")
    return float(value)


def _materialise_workload(
    point: Mapping[str, Value], workload: Optional[Workload]
) -> Optional[Workload]:
    """Apply the point's model axes to a base workload.

    An unknown ``model`` registry name fails fast with a
    :class:`ConfigurationError` (the whole search would be meaningless);
    an architecturally invalid override combination (say ``moe_top_k``
    above ``num_experts``) raises :class:`ArchitectureError`, which
    searchers treat as an *infeasible point* and move on.
    """
    present = [name for name in MODEL_AXES if name in point]
    if not present:
        return None
    if workload is None:
        raise ConfigurationError(
            f"design axes {present} describe the model; materialise needs "
            "a base workload to apply them to"
        )
    config = workload.config
    if "model" in point:
        model = point["model"]
        if not isinstance(model, str):
            raise ConfigurationError(
                f"axis 'model' needs a registry name, got {model!r}"
            )
        from ..models.registry import get_model

        config = get_model(model)
    overrides: Dict[str, Optional[int]] = {}
    suffix: List[str] = []
    if "kv_heads" in point:
        overrides["kv_heads"] = _require_int("kv_heads", point["kv_heads"])
        suffix.append(f"kv{overrides['kv_heads']}")
    if "num_experts" in point:
        overrides["num_experts"] = _require_int("num_experts", point["num_experts"])
        suffix.append(f"e{overrides['num_experts']}")
        if "moe_top_k" not in point:
            # Keep the override combination self-consistent: a dense model
            # pulled to an expert axis keeps top-1 routing by default.
            overrides["moe_top_k"] = min(
                config.moe_top_k, overrides["num_experts"]
            )
    if "moe_top_k" in point:
        overrides["moe_top_k"] = _require_int("moe_top_k", point["moe_top_k"])
        suffix.append(f"k{overrides['moe_top_k']}")
    if "attention_window" in point:
        window = _require_int("attention_window", point["attention_window"])
        overrides["attention_window"] = window if window > 0 else None
        suffix.append(f"w{window}")
    if overrides:
        name = f"{config.name}+{'-'.join(suffix)}"
        try:
            config = replace(config, name=name, **overrides)
        except ConfigurationError as error:
            raise ArchitectureError(str(error)) from None
    if config is workload.config:
        return workload
    return replace(workload, config=config, name=None)


def materialise(
    point: Mapping[str, Value],
    *,
    default_strategy: str = "paper",
    workload: Optional[Workload] = None,
) -> DesignPoint:
    """Validate a point and build what it describes.

    Axes absent from the point keep the paper's Siracusa + MIPI values;
    unknown axis names are rejected so a typo cannot silently evaluate the
    default platform.  The strategy name is resolved through the strategy
    registry (so aliases canonicalise and unknown names fail here, not
    mid-search).  Model axes (:data:`MODEL_AXES`) are applied to the
    optional base ``workload``; the result lands in
    :attr:`DesignPoint.workload`.
    """
    unknown = sorted(set(point) - set(KNOWN_AXES))
    if unknown:
        raise ConfigurationError(
            f"unknown design axes {unknown}; materialise understands "
            f"{', '.join(KNOWN_AXES)}"
        )
    design_workload = _materialise_workload(point, workload)

    chips = _require_int("chips", point.get("chips", 8))
    if chips <= 0:
        raise ConfigurationError(f"axis 'chips' must be positive, got {chips}")
    group_size = _require_int("group_size", point.get("group_size", 4))

    chip = siracusa_chip()
    if "cores" in point:
        cores = _require_int("cores", point["cores"])
        chip = replace(chip, cluster=replace(chip.cluster, num_cores=cores))
    if "freq_mhz" in point:
        freq_hz = _require_number("freq_mhz", point["freq_mhz"]) * 1e6
        chip = replace(chip, cluster=replace(chip.cluster, frequency_hz=freq_hz))
    if "l2_kib" in point:
        l2_bytes = kib(_require_int("l2_kib", point["l2_kib"]))
        memory = replace(chip.memory, l2=replace(chip.memory.l2, size_bytes=l2_bytes))
        # Keep the calibrated runtime reserve, clamped so any L2 size
        # leaves at least half the scratchpad for model data.
        reserve = min(SIRACUSA_L2_RUNTIME_RESERVE_BYTES, l2_bytes // 2)
        chip = replace(chip, memory=memory, l2_runtime_reserve_bytes=reserve)

    base_link = mipi_link()
    link_gbps = point.get("link_gbps")
    link_pj = point.get("link_pj_per_byte")
    if link_gbps is not None or link_pj is not None:
        bandwidth = (
            gigabytes_per_second(_require_number("link_gbps", link_gbps))
            if link_gbps is not None
            else base_link.bandwidth_bytes_per_s
        )
        energy = (
            _require_number("link_pj_per_byte", link_pj)
            if link_pj is not None
            else base_link.energy_pj_per_byte
        )
        link = ChipToChipLink(
            name=base_link.name,
            bandwidth_bytes_per_s=bandwidth,
            energy_pj_per_byte=energy,
            latency_cycles=base_link.latency_cycles,
        )
    else:
        link = base_link

    platform = MultiChipPlatform(
        chip=chip, num_chips=chips, link=link, group_size=group_size
    )
    strategy = point.get("strategy", default_strategy)
    if not isinstance(strategy, str):
        raise ConfigurationError(
            f"axis 'strategy' needs a registry name, got {strategy!r}"
        )
    canonical = get_strategy(strategy).name
    return DesignPoint(
        point=point_key(point),
        platform=platform,
        strategy=canonical,
        workload=design_workload,
    )


def default_space() -> SearchSpace:
    """The standard platform/partition space around the paper's deployment.

    Chip count, chip-to-chip bandwidth, L2 capacity, and cluster frequency
    vary around the Siracusa + MIPI operating point; the strategy axis
    pins the paper's scheme (pass a custom space to search over baselines
    too).
    """
    return SearchSpace(
        axes=(
            ChoiceAxis("chips", (1, 2, 4, 8)),
            FloatAxis("link_gbps", 0.125, 2.0, levels=(0.125, 0.25, 0.5, 1.0, 2.0)),
            ChoiceAxis("l2_kib", (1024, 2048, 4096)),
            FloatAxis("freq_mhz", 300.0, 500.0, levels=(300.0, 500.0)),
            ChoiceAxis("strategy", ("paper",)),
        )
    )
