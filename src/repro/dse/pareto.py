"""Dominance checks, Pareto-front extraction, and constraint filtering.

All functions work in *minimisation space*: a maximised objective's value
is negated before comparison, so "dominates" always means "no worse on
every objective and strictly better on at least one".  Candidates are
duck-typed — anything with a ``feasible`` flag and a ``value(name)``
accessor (the engine's :class:`~repro.dse.engine.Candidate`) works.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Sequence, Tuple, TypeVar

from ..errors import AnalysisError, ConfigurationError
from .objectives import Objective, Sense

__all__ = [
    "Constraint",
    "dominates",
    "filter_constraints",
    "objective_vector",
    "parse_constraint",
    "pareto_front",
]

CandidateT = TypeVar("CandidateT")


def objective_vector(
    candidate, objectives: Sequence[Objective]
) -> Tuple[float, ...]:
    """The candidate's objective values, sign-folded into minimisation space."""
    return tuple(
        candidate.value(objective.name)
        * (1.0 if objective.sense is Sense.MIN else -1.0)
        for objective in objectives
    )


def dominates(a, b, objectives: Sequence[Objective]) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` on the given objectives.

    Requires both candidates to be feasible; dominance over an infeasible
    candidate is undefined (infeasible points never enter a front).
    """
    if not objectives:
        raise AnalysisError("dominance needs at least one objective")
    if not (a.feasible and b.feasible):
        raise AnalysisError("dominance is only defined between feasible candidates")
    vec_a = objective_vector(a, objectives)
    vec_b = objective_vector(b, objectives)
    return all(x <= y for x, y in zip(vec_a, vec_b)) and any(
        x < y for x, y in zip(vec_a, vec_b)
    )


def pareto_front(
    candidates: Sequence[CandidateT], objectives: Sequence[Objective]
) -> List[CandidateT]:
    """The non-dominated feasible candidates, in input order.

    Candidates with identical objective vectors are all kept (neither
    dominates the other); infeasible candidates are skipped.
    """
    if not objectives:
        raise AnalysisError("a Pareto front needs at least one objective")
    feasible = [c for c in candidates if c.feasible]
    front: List[CandidateT] = []
    for candidate in feasible:
        if not any(
            dominates(other, candidate, objectives)
            for other in feasible
            if other is not candidate
        ):
            front.append(candidate)
    return front


# ----------------------------------------------------------------------
# Constraints
# ----------------------------------------------------------------------
_CONSTRAINT_RE = re.compile(
    r"^\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*(<=|>=)\s*([-+0-9.eE]+)\s*$"
)


@dataclass(frozen=True)
class Constraint:
    """A bound on one objective: ``objective <= bound`` or ``>= bound``."""

    objective: str
    op: str
    bound: float

    def __post_init__(self) -> None:
        if self.op not in ("<=", ">="):
            raise ConfigurationError(
                f"constraint operator must be <= or >=, got {self.op!r}"
            )

    def satisfied_by(self, candidate) -> bool:
        """Whether a feasible candidate meets the bound."""
        if not candidate.feasible:
            return False
        value = candidate.value(self.objective)
        return value <= self.bound if self.op == "<=" else value >= self.bound

    def render(self) -> str:
        """The constraint in its parseable ``name<=bound`` text form."""
        return f"{self.objective}{self.op}{self.bound:g}"


def parse_constraint(text: str) -> Constraint:
    """Parse ``"latency<=0.01"`` / ``"slo>=0.95"`` into a :class:`Constraint`."""
    match = _CONSTRAINT_RE.match(text)
    if not match:
        raise ConfigurationError(
            f"cannot parse constraint {text!r}; expected "
            "<objective><=|>=><number>, e.g. 'latency<=0.01'"
        )
    name, op, bound = match.groups()
    try:
        value = float(bound)
    except ValueError:
        raise ConfigurationError(
            f"constraint {text!r} has a non-numeric bound {bound!r}"
        ) from None
    return Constraint(objective=name, op=op, bound=value)


def filter_constraints(
    candidates: Sequence[CandidateT], constraints: Sequence[Constraint]
) -> List[CandidateT]:
    """The feasible candidates satisfying every constraint, in input order."""
    return [
        candidate
        for candidate in candidates
        if candidate.feasible
        and all(constraint.satisfied_by(candidate) for constraint in constraints)
    ]
