"""Pluggable search algorithms and their registry.

A *searcher* decides which points of a :class:`~repro.dse.space.
SearchSpace` get evaluated within a budget.  Searchers register by name
with :func:`register_searcher` — mirroring the strategy/policy/objective
registries — so a new search idea becomes available to
:meth:`repro.api.Session.tune` and the ``repro tune`` CLI by writing one
class::

    from repro.dse import register_searcher

    @register_searcher
    class HalvingSearcher:
        name = "halving"
        label = "Successive halving"

        def search(self, space, evaluate, objectives, *, budget, rng):
            ...

The ``evaluate`` callable maps a point to a measured
:class:`~repro.dse.engine.Candidate` and is memoised per unique point
(and, through the session's persistent cache, across processes — see
:mod:`repro.api.cache`), so revisiting a configuration costs nothing;
``budget`` caps the number of ``evaluate`` calls (repeats included).  All randomness must come from the
passed :class:`random.Random`, which is what makes every shipped searcher
bit-reproducible for equal seeds.

Four searchers ship: exhaustive ``grid``, uniform ``random``,
simulated-annealing ``anneal`` (Metropolis acceptance over a normalised
scalarisation of the objectives), and a small ``evolution`` strategy
(mutation + uniform crossover with non-dominated survivor selection).
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Protocol, Sequence, Tuple, runtime_checkable

from ..errors import ConfigurationError, UnknownSearcherError
from .objectives import Objective
from .pareto import objective_vector
from .space import Point, SearchSpace

__all__ = [
    "AnnealingSearcher",
    "EvolutionarySearcher",
    "GridSearcher",
    "RandomSearcher",
    "SearchAlgorithm",
    "get_searcher",
    "list_searchers",
    "register_searcher",
    "unregister_searcher",
]

#: Signature of the (memoised) point evaluator a searcher drives.
Evaluate = Callable[[Point], "object"]


@runtime_checkable
class SearchAlgorithm(Protocol):
    """What the registry requires of a search algorithm.

    Attributes:
        name: Registry key (lowercase snake_case by convention).
        label: Human-readable description shown by the CLI.
    """

    name: str
    label: str

    def search(
        self,
        space: SearchSpace,
        evaluate: Evaluate,
        objectives: Sequence[Objective],
        *,
        budget: int,
        rng: random.Random,
    ) -> Sequence[object]:
        """Drive up to ``budget`` evaluations; return the visited candidates."""
        ...


_SEARCHERS: Dict[str, SearchAlgorithm] = {}
_ALIASES: Dict[str, str] = {}


def register_searcher(searcher):
    """Class decorator (or direct call) registering a search algorithm.

    Accepts either a searcher *class* (instantiated with no arguments) or
    a ready-made instance; registered under its ``name`` plus any names in
    an optional ``aliases`` attribute.  Returns the argument unchanged so
    it can be used as a decorator.

    Raises:
        ConfigurationError: If the name is missing, already taken, or the
            object does not implement :class:`SearchAlgorithm`.
    """
    instance = searcher() if isinstance(searcher, type) else searcher
    name = getattr(instance, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            "a searcher must define a non-empty string `name` attribute"
        )
    if not isinstance(instance, SearchAlgorithm):
        raise ConfigurationError(
            f"searcher {name!r} does not implement the SearchAlgorithm "
            "protocol (name, label, search)"
        )
    for key in (name, *getattr(instance, "aliases", ())):
        if key in _SEARCHERS or key in _ALIASES:
            raise ConfigurationError(f"searcher name {key!r} already registered")
    _SEARCHERS[name] = instance
    for alias in getattr(instance, "aliases", ()):
        _ALIASES[alias] = name
    return searcher


def unregister_searcher(name: str) -> None:
    """Remove a searcher (and its aliases) from the registry."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _SEARCHERS:
        raise UnknownSearcherError(_unknown_message(name))
    instance = _SEARCHERS.pop(canonical)
    for alias in getattr(instance, "aliases", ()):
        _ALIASES.pop(alias, None)


def get_searcher(name: str) -> SearchAlgorithm:
    """Look up a registered searcher by name or alias.

    Raises:
        UnknownSearcherError: If no searcher is registered under ``name``;
            the message lists the available names.
    """
    canonical = _ALIASES.get(name, name)
    try:
        return _SEARCHERS[canonical]
    except KeyError:
        raise UnknownSearcherError(_unknown_message(name)) from None


def list_searchers() -> List[str]:
    """Sorted canonical names of all registered searchers."""
    return sorted(_SEARCHERS)


def _unknown_message(name: str) -> str:
    known = ", ".join(list_searchers()) or "<none>"
    return f"unknown searcher {name!r}; registered: {known}"


# ----------------------------------------------------------------------
# Scalarisation (annealing)
# ----------------------------------------------------------------------
class _RunningScalariser:
    """Normalised weighted sum over the objective values seen so far.

    Values are folded into minimisation space, then each objective is
    min-max normalised against the running bounds; infeasible candidates
    scalarise to ``+inf`` so any feasible neighbour beats them.
    """

    def __init__(self, objectives: Sequence[Objective]) -> None:
        self.objectives = tuple(objectives)
        self._bounds: Dict[str, Tuple[float, float]] = {}

    def observe(self, candidate) -> None:
        if not candidate.feasible:
            return
        for objective, value in zip(
            self.objectives, objective_vector(candidate, self.objectives)
        ):
            low, high = self._bounds.get(objective.name, (value, value))
            self._bounds[objective.name] = (min(low, value), max(high, value))

    def scalar(self, candidate) -> float:
        if not candidate.feasible:
            return math.inf
        total = 0.0
        for objective, value in zip(
            self.objectives, objective_vector(candidate, self.objectives)
        ):
            low, high = self._bounds.get(objective.name, (value, value))
            if high > low:
                total += (value - low) / (high - low)
        return total / len(self.objectives)


# ----------------------------------------------------------------------
# Shipped searchers
# ----------------------------------------------------------------------
@register_searcher
class GridSearcher:
    """Exhaustive enumeration of a finite space, truncated at the budget."""

    name = "grid"
    aliases = ("exhaustive",)
    label = "Exhaustive grid enumeration (finite spaces)"

    def search(self, space, evaluate, objectives, *, budget, rng):
        if space.size is None:
            raise ConfigurationError(
                "grid search needs a finite space; give every float axis "
                "explicit levels (or use the random/anneal searchers)"
            )
        visited = []
        for count, point in enumerate(space.grid()):
            if count >= budget:
                break
            visited.append(evaluate(point))
        return visited


@register_searcher
class RandomSearcher:
    """Uniform random sampling; duplicates hit the evaluator's cache."""

    name = "random"
    label = "Uniform random sampling"

    def search(self, space, evaluate, objectives, *, budget, rng):
        return [evaluate(space.sample(rng)) for _ in range(budget)]


@register_searcher
class AnnealingSearcher:
    """Simulated annealing on a normalised scalarisation of the objectives.

    A geometric temperature schedule cools from 1.0 to 0.01 across the
    budget; moves are single-axis mutations, accepted when they improve
    the scalarised objective or with Metropolis probability otherwise.
    """

    name = "anneal"
    aliases = ("annealing", "simulated_annealing")
    label = "Simulated annealing (scalarised objectives)"

    initial_temperature = 1.0
    final_temperature = 0.01

    def search(self, space, evaluate, objectives, *, budget, rng):
        scalariser = _RunningScalariser(objectives)
        current = evaluate(space.sample(rng))
        scalariser.observe(current)
        visited = [current]
        if budget <= 1:
            return visited
        cooling = (self.final_temperature / self.initial_temperature) ** (
            1.0 / (budget - 1)
        )
        temperature = self.initial_temperature
        for _ in range(budget - 1):
            candidate = evaluate(space.mutate(current.point_dict, rng))
            scalariser.observe(candidate)
            visited.append(candidate)
            delta = scalariser.scalar(candidate) - scalariser.scalar(current)
            if delta <= 0 or (
                math.isfinite(delta)
                and rng.random() < math.exp(-delta / temperature)
            ):
                current = candidate
            temperature *= cooling
        return visited


@register_searcher
class EvolutionarySearcher:
    """A small (mu + lambda) evolution strategy with Pareto selection.

    Parents are drawn uniformly from the surviving population; offspring
    come from uniform crossover (probability 0.5) or single-axis
    mutation.  Survivor selection keeps the ``population_size`` candidates
    with the fewest dominators (ties broken by age), so the population
    drifts toward the Pareto front without collapsing to one scalar.
    """

    name = "evolution"
    aliases = ("evolutionary", "ga")
    label = "Evolutionary search (mutation + crossover, Pareto selection)"

    population_size = 4
    crossover_probability = 0.5

    def search(self, space, evaluate, objectives, *, budget, rng):
        mu = min(self.population_size, budget)
        visited = [evaluate(space.sample(rng)) for _ in range(mu)]
        population = list(visited)
        evaluations = mu
        while evaluations < budget:
            parent = population[rng.randrange(len(population))]
            if (
                len(population) > 1
                and rng.random() < self.crossover_probability
            ):
                other = population[rng.randrange(len(population))]
                child_point = self._crossover(
                    space, parent.point_dict, other.point_dict, rng
                )
            else:
                child_point = space.mutate(parent.point_dict, rng)
            child = evaluate(child_point)
            visited.append(child)
            population.append(child)
            evaluations += 1
            population = self._select(population, objectives, mu)
        return visited

    @staticmethod
    def _crossover(
        space: SearchSpace, a: Point, b: Point, rng: random.Random
    ) -> Point:
        return {
            axis.name: (a if rng.random() < 0.5 else b)[axis.name]
            for axis in space.axes
        }

    @staticmethod
    def _select(population, objectives, mu):
        feasible = [c for c in population if c.feasible]

        def rank(entry):
            index, candidate = entry
            if not candidate.feasible:
                return (math.inf, index)
            vector = objective_vector(candidate, objectives)
            dominators = sum(
                1
                for other in feasible
                if other is not candidate
                and all(
                    x <= y
                    for x, y in zip(objective_vector(other, objectives), vector)
                )
                and any(
                    x < y
                    for x, y in zip(objective_vector(other, objectives), vector)
                )
            )
            return (dominators, index)

        ordered = sorted(enumerate(population), key=rank)
        return [candidate for _, candidate in ordered[:mu]]
