"""Pluggable search algorithms and their registry.

A *searcher* decides which points of a :class:`~repro.dse.space.
SearchSpace` get evaluated within a budget.  Searchers register by name
with :func:`register_searcher` — mirroring the strategy/policy/objective
registries — so a new search idea becomes available to
:meth:`repro.api.Session.tune` and the ``repro tune`` CLI by writing one
class::

    from repro.dse import register_searcher

    @register_searcher
    class CoordinateSearcher:
        name = "coordinate"
        label = "Axis-by-axis coordinate descent"

        def search(self, space, evaluate, objectives, *, budget, rng):
            ...

The ``evaluate`` callable maps a point to a measured
:class:`~repro.dse.engine.Candidate` and is memoised per unique point
(and, through the session's persistent cache, across processes — see
:mod:`repro.api.cache`), so revisiting a configuration costs nothing;
``budget`` caps the number of ``evaluate`` calls (repeats included).  All randomness must come from the
passed :class:`random.Random`, which is what makes every shipped searcher
bit-reproducible for equal seeds.

Six searchers ship: exhaustive ``grid``, uniform ``random``,
simulated-annealing ``anneal`` (Metropolis acceptance over a normalised
scalarisation of the objectives), a small ``evolution`` strategy
(mutation + uniform crossover with non-dominated survivor selection),
and two multi-fidelity searchers built for the orchestrator
(:mod:`repro.dse.orchestrator`): ``halving`` (successive halving whose
rung pools are triaged by a free analytic proxy before any budget is
spent) and ``surrogate`` (a numpy-only ridge-regression surrogate that
ranks cheap predictions to propose evaluation batches).

Two optional hooks let the orchestrator parallelise a searcher without
changing its visited sequence: a ``plan(space, budget=..., rng=...)``
method returning the exact points ``search`` will request when the
schedule is result-independent (grid, random), and — for searchers that
work in batches — calling ``evaluate.prefill(points)`` before
evaluating a batch when the callable provides it.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Protocol, Sequence, Tuple, runtime_checkable

from ..errors import ConfigurationError, UnknownSearcherError
from .objectives import Objective
from .pareto import objective_vector
from .space import Point, SearchSpace, point_key

__all__ = [
    "AnnealingSearcher",
    "EvolutionarySearcher",
    "GridSearcher",
    "HalvingSearcher",
    "RandomSearcher",
    "SearchAlgorithm",
    "SurrogateSearcher",
    "get_searcher",
    "list_searchers",
    "register_searcher",
    "unregister_searcher",
]

#: Signature of the (memoised) point evaluator a searcher drives.
Evaluate = Callable[[Point], "object"]


@runtime_checkable
class SearchAlgorithm(Protocol):
    """What the registry requires of a search algorithm.

    Attributes:
        name: Registry key (lowercase snake_case by convention).
        label: Human-readable description shown by the CLI.
    """

    name: str
    label: str

    def search(
        self,
        space: SearchSpace,
        evaluate: Evaluate,
        objectives: Sequence[Objective],
        *,
        budget: int,
        rng: random.Random,
    ) -> Sequence[object]:
        """Drive up to ``budget`` evaluations; return the visited candidates."""
        ...


_SEARCHERS: Dict[str, SearchAlgorithm] = {}
_ALIASES: Dict[str, str] = {}


def register_searcher(searcher):
    """Class decorator (or direct call) registering a search algorithm.

    Accepts either a searcher *class* (instantiated with no arguments) or
    a ready-made instance; registered under its ``name`` plus any names in
    an optional ``aliases`` attribute.  Returns the argument unchanged so
    it can be used as a decorator.

    Raises:
        ConfigurationError: If the name is missing, already taken, or the
            object does not implement :class:`SearchAlgorithm`.
    """
    instance = searcher() if isinstance(searcher, type) else searcher
    name = getattr(instance, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            "a searcher must define a non-empty string `name` attribute"
        )
    if not isinstance(instance, SearchAlgorithm):
        raise ConfigurationError(
            f"searcher {name!r} does not implement the SearchAlgorithm "
            "protocol (name, label, search)"
        )
    for key in (name, *getattr(instance, "aliases", ())):
        if key in _SEARCHERS or key in _ALIASES:
            raise ConfigurationError(f"searcher name {key!r} already registered")
    _SEARCHERS[name] = instance
    for alias in getattr(instance, "aliases", ()):
        _ALIASES[alias] = name
    return searcher


def unregister_searcher(name: str) -> None:
    """Remove a searcher (and its aliases) from the registry."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _SEARCHERS:
        raise UnknownSearcherError(_unknown_message(name))
    instance = _SEARCHERS.pop(canonical)
    for alias in getattr(instance, "aliases", ()):
        _ALIASES.pop(alias, None)


def get_searcher(name: str) -> SearchAlgorithm:
    """Look up a registered searcher by name or alias.

    Raises:
        UnknownSearcherError: If no searcher is registered under ``name``;
            the message lists the available names.
    """
    canonical = _ALIASES.get(name, name)
    try:
        return _SEARCHERS[canonical]
    except KeyError:
        raise UnknownSearcherError(_unknown_message(name)) from None


def list_searchers() -> List[str]:
    """Sorted canonical names of all registered searchers."""
    return sorted(_SEARCHERS)


def _unknown_message(name: str) -> str:
    known = ", ".join(list_searchers()) or "<none>"
    return f"unknown searcher {name!r}; registered: {known}"


# ----------------------------------------------------------------------
# Scalarisation (annealing)
# ----------------------------------------------------------------------
class _RunningScalariser:
    """Normalised weighted sum over the objective values seen so far.

    Values are folded into minimisation space, then each objective is
    min-max normalised against the running bounds; infeasible candidates
    scalarise to ``+inf`` so any feasible neighbour beats them.
    """

    def __init__(self, objectives: Sequence[Objective]) -> None:
        self.objectives = tuple(objectives)
        self._bounds: Dict[str, Tuple[float, float]] = {}

    def observe(self, candidate) -> None:
        if not candidate.feasible:
            return
        for objective, value in zip(
            self.objectives, objective_vector(candidate, self.objectives)
        ):
            low, high = self._bounds.get(objective.name, (value, value))
            self._bounds[objective.name] = (min(low, value), max(high, value))

    def scalar(self, candidate) -> float:
        if not candidate.feasible:
            return math.inf
        total = 0.0
        for objective, value in zip(
            self.objectives, objective_vector(candidate, self.objectives)
        ):
            low, high = self._bounds.get(objective.name, (value, value))
            if high > low:
                total += (value - low) / (high - low)
        return total / len(self.objectives)


# ----------------------------------------------------------------------
# Shipped searchers
# ----------------------------------------------------------------------
@register_searcher
class GridSearcher:
    """Exhaustive enumeration of a finite space, truncated at the budget."""

    name = "grid"
    aliases = ("exhaustive",)
    label = "Exhaustive grid enumeration (finite spaces)"

    def plan(self, space, *, budget, rng):
        """The exact points :meth:`search` will visit (for prefill)."""
        if space.size is None:
            raise ConfigurationError(
                "grid search needs a finite space; give every float axis "
                "explicit levels (or use the random/anneal searchers)"
            )
        return [
            point for _, point in zip(range(budget), space.grid())
        ]

    def search(self, space, evaluate, objectives, *, budget, rng):
        return [evaluate(point) for point in self.plan(space, budget=budget, rng=rng)]


@register_searcher
class RandomSearcher:
    """Uniform random sampling; duplicates hit the evaluator's cache."""

    name = "random"
    label = "Uniform random sampling"

    def plan(self, space, *, budget, rng):
        """The exact points :meth:`search` will visit (for prefill).

        ``search`` draws nothing but its samples, so a same-seeded
        generator reproduces its whole schedule.
        """
        return [space.sample(rng) for _ in range(budget)]

    def search(self, space, evaluate, objectives, *, budget, rng):
        return [evaluate(space.sample(rng)) for _ in range(budget)]


@register_searcher
class AnnealingSearcher:
    """Simulated annealing on a normalised scalarisation of the objectives.

    A geometric temperature schedule cools from 1.0 to 0.01 across the
    budget; moves are single-axis mutations, accepted when they improve
    the scalarised objective or with Metropolis probability otherwise.
    """

    name = "anneal"
    aliases = ("annealing", "simulated_annealing")
    label = "Simulated annealing (scalarised objectives)"

    initial_temperature = 1.0
    final_temperature = 0.01

    def search(self, space, evaluate, objectives, *, budget, rng):
        scalariser = _RunningScalariser(objectives)
        current = evaluate(space.sample(rng))
        scalariser.observe(current)
        visited = [current]
        if budget <= 1:
            return visited
        cooling = (self.final_temperature / self.initial_temperature) ** (
            1.0 / (budget - 1)
        )
        temperature = self.initial_temperature
        for _ in range(budget - 1):
            candidate = evaluate(space.mutate(current.point_dict, rng))
            scalariser.observe(candidate)
            visited.append(candidate)
            delta = scalariser.scalar(candidate) - scalariser.scalar(current)
            if delta <= 0 or (
                math.isfinite(delta)
                and rng.random() < math.exp(-delta / temperature)
            ):
                current = candidate
            temperature *= cooling
        return visited


@register_searcher
class EvolutionarySearcher:
    """A small (mu + lambda) evolution strategy with Pareto selection.

    Parents are drawn uniformly from the surviving population; offspring
    come from uniform crossover (probability 0.5) or single-axis
    mutation.  Survivor selection keeps the ``population_size`` candidates
    with the fewest dominators (ties broken by age), so the population
    drifts toward the Pareto front without collapsing to one scalar.
    """

    name = "evolution"
    aliases = ("evolutionary", "ga")
    label = "Evolutionary search (mutation + crossover, Pareto selection)"

    population_size = 4
    crossover_probability = 0.5

    def search(self, space, evaluate, objectives, *, budget, rng):
        mu = min(self.population_size, budget)
        visited = [evaluate(space.sample(rng)) for _ in range(mu)]
        population = list(visited)
        evaluations = mu
        while evaluations < budget:
            parent = population[rng.randrange(len(population))]
            if (
                len(population) > 1
                and rng.random() < self.crossover_probability
            ):
                other = population[rng.randrange(len(population))]
                child_point = self._crossover(
                    space, parent.point_dict, other.point_dict, rng
                )
            else:
                child_point = space.mutate(parent.point_dict, rng)
            child = evaluate(child_point)
            visited.append(child)
            population.append(child)
            evaluations += 1
            population = self._select(population, objectives, mu)
        return visited

    @staticmethod
    def _crossover(
        space: SearchSpace, a: Point, b: Point, rng: random.Random
    ) -> Point:
        return {
            axis.name: (a if rng.random() < 0.5 else b)[axis.name]
            for axis in space.axes
        }

    @staticmethod
    def _select(population, objectives, mu):
        feasible = [c for c in population if c.feasible]

        def rank(entry):
            index, candidate = entry
            if not candidate.feasible:
                return (math.inf, index)
            vector = objective_vector(candidate, objectives)
            dominators = sum(
                1
                for other in feasible
                if other is not candidate
                and all(
                    x <= y
                    for x, y in zip(objective_vector(other, objectives), vector)
                )
                and any(
                    x < y
                    for x, y in zip(objective_vector(other, objectives), vector)
                )
            )
            return (dominators, index)

        ordered = sorted(enumerate(population), key=rank)
        return [candidate for _, candidate in ordered[:mu]]


# ----------------------------------------------------------------------
# Multi-fidelity searchers (orchestrator-aware)
# ----------------------------------------------------------------------
def _prefill_hook(evaluate):
    """The orchestrator's batch-prefill hook, if the callable offers one."""
    return getattr(evaluate, "prefill", None)


def _proxy_score(point: Point) -> float:
    """A free analytic cost proxy used only to *triage* candidate pools.

    A crude closed-form latency x energy estimate from the platform axes
    alone (compute throughput, chip-to-chip share, L2 pressure), scaled
    relative to the paper's Siracusa + MIPI operating point.  It costs no
    budget and is never reported — every measured value still comes from
    a real evaluation — so its only job is to make the halving rungs
    spend their budget on the more promising half of a sampled pool.
    """
    chips = float(point.get("chips", 8) or 8)
    cores = float(point.get("cores", 8) or 8)
    freq = float(point.get("freq_mhz", 400.0) or 400.0)
    link = float(point.get("link_gbps", 0.5) or 0.5)
    l2 = float(point.get("l2_kib", 2048) or 2048)
    link_pj = float(point.get("link_pj_per_byte", 100.0) or 100.0)
    compute = 1.0 / max(1e-9, chips * (cores / 8.0) * (freq / 400.0))
    comm = (
        0.0
        if chips <= 1
        else 0.3 * (chips - 1.0) / chips / max(1e-9, link / 0.5)
    )
    spill = 0.2 / max(1e-9, l2 / 2048.0)
    latency = compute + comm + spill
    energy = chips * (0.5 + 0.5 * freq / 400.0) + 0.3 * (
        link_pj / 100.0
    ) * min(chips - 1.0, 1.0)
    return latency * max(1e-9, energy)


@register_searcher
class HalvingSearcher:
    """Successive halving with free proxy triage and batched rungs.

    Each rung samples a candidate pool ``triage_factor`` times larger
    than the rung's evaluation batch (half fresh samples, half mutations
    of the previous rung's survivors), ranks it with the free analytic
    proxy (:func:`_proxy_score`), and pays real evaluations only for the
    best-ranked batch.  Rung sizes halve geometrically across the
    budget; survivors are the scalariser-best half of each measured
    batch.  Batches are announced through ``evaluate.prefill`` when the
    orchestrator provides it, so rungs parallelise across worker
    processes without changing the visited sequence.
    """

    name = "halving"
    aliases = ("successive_halving", "sha")
    label = "Successive halving (proxy-triaged rungs, batched)"

    triage_factor = 4

    def search(self, space, evaluate, objectives, *, budget, rng):
        prefill = _prefill_hook(evaluate)
        scalariser = _RunningScalariser(objectives)
        visited = []
        survivors: List[Point] = []
        remaining = budget
        while remaining > 0:
            rung = max(1, (remaining + 1) // 2) if remaining > 2 else remaining
            pool: List[Point] = []
            for index in range(rung * self.triage_factor):
                if survivors and index % 2 == 0:
                    base = survivors[rng.randrange(len(survivors))]
                    pool.append(space.mutate(base, rng))
                else:
                    pool.append(space.sample(rng))
            ranked = sorted(
                enumerate(pool), key=lambda entry: (_proxy_score(entry[1]), entry[0])
            )
            batch = [point for _, point in ranked[:rung]]
            if prefill is not None and len(batch) > 1:
                prefill(batch)
            measured = []
            for point in batch:
                candidate = evaluate(point)
                scalariser.observe(candidate)
                measured.append(candidate)
                visited.append(candidate)
            feasible = [c for c in measured if c.feasible]
            ordered = sorted(
                enumerate(feasible),
                key=lambda entry: (scalariser.scalar(entry[1]), entry[0]),
            )
            keep = max(1, rung // 2)
            survivors = [c.point_dict for _, c in ordered[:keep]]
            remaining -= rung
        return visited


class _PointEncoder:
    """Encode points as vectors in ``[0, 1]^d`` for the surrogate model.

    Numeric axes are min-max normalised against their declared bounds
    (or value set); non-numeric choice axes use the choice index.  The
    encoding is a fixed function of the space, so equal runs produce
    equal design matrices.
    """

    def __init__(self, space: SearchSpace) -> None:
        self.space = space

    def encode(self, point: Point) -> List[float]:
        vector = []
        for axis in self.space.axes:
            value = point[axis.name]
            choices = getattr(axis, "choices", None)
            if choices is not None and any(
                isinstance(choice, bool) or not isinstance(choice, (int, float))
                for choice in choices
            ):
                index = next(
                    i for i, choice in enumerate(choices) if choice == value
                )
                span = max(1, len(choices) - 1)
                vector.append(index / span)
                continue
            values = (
                choices
                if choices is not None
                else (
                    axis.levels
                    if getattr(axis, "levels", None) is not None
                    else (axis.low, axis.high)
                )
            )
            low = float(min(values))
            high = float(max(values))
            span = high - low
            vector.append((float(value) - low) / span if span > 0 else 0.5)
        return vector


@register_searcher
class SurrogateSearcher:
    """Surrogate-ranked batch search (numpy-only, BoFire-spirited).

    After a random seed batch, each round fits one ridge regression per
    objective on quadratic features of the evaluated feasible points,
    scores a freshly sampled candidate pool with the cheap predictions
    (per-objective min-max normalised, averaged), and proposes the
    best-ranked unevaluated points as the next evaluation batch — the
    propose-from-cheap-predictions loop of a production optimizer,
    without the quantile-forest machinery.  Needs :mod:`numpy` (a
    lazy import, so registration never does); batches are announced
    through ``evaluate.prefill`` when the orchestrator provides it.
    """

    name = "surrogate"
    aliases = ("model_guided",)
    label = "Surrogate-ranked batches (numpy ridge regression)"

    pool_size = 64
    ridge_lambda = 1e-3

    def search(self, space, evaluate, objectives, *, budget, rng):
        try:
            import numpy as np
        except ImportError:
            raise ConfigurationError(
                "the surrogate searcher needs numpy, which is not "
                "installed; choose another searcher (see `repro searchers`)"
            ) from None
        prefill = _prefill_hook(evaluate)
        encoder = _PointEncoder(space)
        visited = []
        evaluated_keys = set()

        def run_batch(points):
            if prefill is not None and len(points) > 1:
                prefill(points)
            for point in points:
                candidate = evaluate(point)
                evaluated_keys.add(candidate.point)
                visited.append(candidate)

        seed_count = min(budget, max(4, budget // 4))
        run_batch([space.sample(rng) for _ in range(seed_count)])
        remaining = budget - seed_count
        while remaining > 0:
            batch_size = min(remaining, max(2, budget // 6))
            proposals = self._propose(
                np,
                space,
                encoder,
                visited,
                evaluated_keys,
                objectives,
                batch_size,
                rng,
            )
            run_batch(proposals)
            remaining -= len(proposals)
        return visited

    # ------------------------------------------------------------------
    # Proposal machinery
    # ------------------------------------------------------------------
    def _propose(
        self,
        np,
        space,
        encoder,
        visited,
        evaluated_keys,
        objectives,
        batch_size,
        rng,
    ):
        unique = {}
        for candidate in visited:
            if candidate.feasible and candidate.point not in unique:
                unique[candidate.point] = candidate
        observed = list(unique.values())
        pool = [space.sample(rng) for _ in range(self.pool_size)]
        if len(observed) < 4:
            # Not enough signal to fit anything: stay random.
            return pool[:batch_size]
        features = np.array(
            [
                self._features(encoder.encode(c.point_dict))
                for c in observed
            ]
        )
        # Senses fold into minimisation space here, like every other
        # searcher's scalarisation.
        folded = [objective_vector(c, objectives) for c in observed]
        models = []
        for column in range(len(objectives)):
            targets = np.array([vector[column] for vector in folded])
            low, high = float(targets.min()), float(targets.max())
            if high > low:
                targets = (targets - low) / (high - low)
            else:
                targets = np.zeros_like(targets)
            models.append(self._fit(np, features, targets))
        pool_features = np.array(
            [self._features(encoder.encode(point)) for point in pool]
        )
        scores = np.zeros(len(pool))
        for theta in models:
            predicted = pool_features @ theta
            low, high = float(predicted.min()), float(predicted.max())
            if high > low:
                predicted = (predicted - low) / (high - low)
            else:
                predicted = np.zeros_like(predicted)
            scores += predicted
        ranked = sorted(range(len(pool)), key=lambda i: (float(scores[i]), i))
        proposals = []
        for index in ranked:
            if point_key(pool[index]) in evaluated_keys:
                continue
            proposals.append(pool[index])
            if len(proposals) == batch_size:
                break
        while len(proposals) < batch_size:
            # The whole pool is already evaluated: fall back to fresh
            # samples (repeats would only burn budget on cache hits).
            proposals.append(space.sample(rng))
        return proposals

    def _fit(self, np, features, targets):
        gram = features.T @ features + self.ridge_lambda * np.eye(
            features.shape[1]
        )
        try:
            return np.linalg.solve(gram, features.T @ targets)
        except np.linalg.LinAlgError:
            return np.linalg.lstsq(gram, features.T @ targets, rcond=None)[0]

    @staticmethod
    def _features(vector: List[float]) -> List[float]:
        quadratic = [
            vector[i] * vector[j]
            for i in range(len(vector))
            for j in range(i, len(vector))
        ]
        return [1.0, *vector, *quadratic]
